#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/assert.h"

namespace lm::sim {
namespace {

TEST(Simulator, StartsAtOrigin) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint::origin());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunsEventAtScheduledTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule_after(Duration::seconds(3), [&] { fired = sim.now(); });
  sim.run_for(Duration::seconds(10));
  EXPECT_EQ(fired.us(), 3'000'000);
  EXPECT_EQ(sim.now().us(), 10'000'000);  // clock advances to the target
}

TEST(Simulator, EqualTimestampsFireInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  const TimePoint t = sim.now() + Duration::seconds(1);
  sim.schedule_at(t, [&] { order.push_back(1); });
  sim.schedule_at(t, [&] { order.push_back(2); });
  sim.schedule_at(t, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, EventsFireInTimeOrderRegardlessOfScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_after(Duration::seconds(3), [&] { order.push_back(3); });
  sim.schedule_after(Duration::seconds(1), [&] { order.push_back(1); });
  sim.schedule_after(Duration::seconds(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const TimerId id = sim.schedule_after(Duration::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.is_pending(id));
  sim.cancel(id);
  EXPECT_FALSE(sim.is_pending(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelIsIdempotentAndSafeAfterFire) {
  Simulator sim;
  const TimerId id = sim.schedule_after(Duration::seconds(1), [] {});
  sim.run();
  sim.cancel(id);  // already fired: no-op
  sim.cancel(id);
  sim.cancel(999999);  // never existed
}

TEST(Simulator, HandlersMayScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) sim.schedule_after(Duration::seconds(1), chain);
  };
  sim.schedule_after(Duration::seconds(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now().us(), 5'000'000);
}

TEST(Simulator, HandlersMayCancelOtherEvents) {
  Simulator sim;
  bool victim_fired = false;
  const TimerId victim =
      sim.schedule_after(Duration::seconds(2), [&] { victim_fired = true; });
  sim.schedule_after(Duration::seconds(1), [&] { sim.cancel(victim); });
  sim.run();
  EXPECT_FALSE(victim_fired);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sim.schedule_after(Duration::seconds(5), [&] { ++fired; });
  const std::size_t processed = sim.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_EQ(processed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilBoundaryIsInclusive) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(Duration::seconds(2), [&] { fired = true; });
  sim.run_until(TimePoint::origin() + Duration::seconds(2));
  EXPECT_TRUE(fired);
}

TEST(Simulator, StopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_after(Duration::seconds(2), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, StepProcessesExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.schedule_after(Duration::seconds(1), [&] { ++fired; });
  sim.schedule_after(Duration::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator sim;
  sim.schedule_after(Duration::seconds(5), [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(TimePoint::origin(), [] {}), ContractViolation);
  EXPECT_THROW(sim.schedule_after(-Duration::seconds(1), [] {}), ContractViolation);
}

TEST(Simulator, RejectsNullCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule_after(Duration::seconds(1), nullptr), ContractViolation);
}

TEST(Simulator, PendingCountTracksQueue) {
  Simulator sim;
  const TimerId a = sim.schedule_after(Duration::seconds(1), [] {});
  sim.schedule_after(Duration::seconds(2), [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelReleasesCapturedResourcesImmediately) {
  // Regression: a cancelled event's closure used to stay alive inside the
  // priority queue until its timestamp was reached, pinning everything it
  // captured. cancel() must drop the closure on the spot.
  Simulator sim;
  auto payload = std::make_shared<int>(42);
  const TimerId id =
      sim.schedule_after(Duration::hours(24), [payload] { (void)*payload; });
  EXPECT_EQ(payload.use_count(), 2);
  sim.cancel(id);
  EXPECT_EQ(payload.use_count(), 1);  // released at cancel time, not at t+24h
}

TEST(Simulator, FiredEventReleasesItsClosure) {
  Simulator sim;
  auto payload = std::make_shared<int>(7);
  sim.schedule_after(Duration::seconds(1), [payload] { (void)*payload; });
  sim.run();
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(Simulator, StaleHandleOfReusedSlotIsNotPending) {
  // After an event fires or is cancelled, its storage slot is recycled for
  // the next event. The old TimerId must not alias the new occupant.
  Simulator sim;
  const TimerId a = sim.schedule_after(Duration::seconds(1), [] {});
  sim.cancel(a);
  const TimerId b = sim.schedule_after(Duration::seconds(2), [] {});
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.is_pending(a));
  EXPECT_TRUE(sim.is_pending(b));
  sim.cancel(a);  // stale cancel must not kill b
  EXPECT_TRUE(sim.is_pending(b));
  bool fired = false;
  sim.cancel(b);
  const TimerId c = sim.schedule_after(Duration::seconds(3), [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(sim.is_pending(c));
}

TEST(Simulator, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule_after(Duration::seconds(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, ClockNeverGoesBackward) {
  Simulator sim;
  TimePoint last = sim.now();
  for (int i = 0; i < 20; ++i) {
    sim.schedule_after(Duration::milliseconds(i * 7 % 13), [&] {
      EXPECT_GE(sim.now(), last);
      last = sim.now();
    });
  }
  sim.run();
}

}  // namespace
}  // namespace lm::sim
