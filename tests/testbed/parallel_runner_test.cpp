// Determinism under parallelism: sharding a sweep of self-contained
// scenario runs across 1, 2 or 8 threads must produce bit-identical per-run
// results — the foundation the parallel bench harnesses stand on.
#include "testbed/parallel_runner.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::testbed {
namespace {

struct RunResult {
  std::uint64_t attempted = 0;
  std::uint64_t delivered = 0;
  std::int64_t p50_latency_us = 0;
  std::int64_t convergence_us = -1;
  std::uint64_t channel_frames = 0;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 1.0;  // exercise the per-frame RNG draws too
  c.mesh.hello_interval = Duration::seconds(60);
  return c;
}

// One fully self-contained run: scenario, tracker and traffic all live and
// die inside this function, derived only from `seed`.
RunResult run_scenario(std::uint64_t seed) {
  MeshScenario s(small_config(seed));
  s.add_nodes(chain(3, 400.0));
  metrics::PacketTracker tracker;
  attach_tracker(s, tracker);
  s.start_all();

  RunResult r;
  const auto elapsed =
      s.run_until_converged(Duration::minutes(30), Duration::seconds(5));
  if (elapsed) r.convergence_us = elapsed->us();

  DatagramTraffic traffic(s, tracker, 0, 2,
                          {Duration::seconds(30), 16, true}, seed + 1);
  traffic.start();
  s.run_for(Duration::minutes(20));
  traffic.stop();
  s.run_for(Duration::seconds(30));

  r.attempted = tracker.attempted();
  r.delivered = tracker.delivered();
  r.p50_latency_us = static_cast<std::int64_t>(tracker.latency().median() * 1e6);
  r.channel_frames = s.channel().stats().frames_transmitted;
  return r;
}

std::vector<RunResult> sweep(std::size_t threads,
                             const std::vector<std::uint64_t>& seeds) {
  ParallelRunner runner(threads);
  return runner.map<RunResult>(
      seeds.size(), [&](std::size_t i) { return run_scenario(seeds[i]); });
}

TEST(ParallelRunner, ReportsThreadCount) {
  EXPECT_EQ(ParallelRunner(2).threads(), 2u);
  EXPECT_GE(ParallelRunner(0).threads(), 1u);  // default sizing
}

TEST(ParallelRunner, ResultsIdenticalAcross1And2And8Threads) {
  const std::vector<std::uint64_t> seeds{11, 22, 33, 44};
  const auto serial = sweep(1, seeds);
  ASSERT_EQ(serial.size(), seeds.size());
  // Sanity: the runs actually did something (converged, moved traffic).
  for (const auto& r : serial) {
    EXPECT_GE(r.convergence_us, 0);
    EXPECT_GT(r.attempted, 0u);
    EXPECT_GT(r.delivered, 0u);
  }
  EXPECT_EQ(sweep(2, seeds), serial);
  EXPECT_EQ(sweep(8, seeds), serial);
}

TEST(ParallelRunner, RepeatedSweepOnOneRunnerIsStable) {
  // A runner (and its pool) must be reusable: same seeds, same answers on
  // the second drain.
  const std::vector<std::uint64_t> seeds{7, 8};
  ParallelRunner runner(4);
  const auto first = runner.map<RunResult>(
      seeds.size(), [&](std::size_t i) { return run_scenario(seeds[i]); });
  const auto second = runner.map<RunResult>(
      seeds.size(), [&](std::size_t i) { return run_scenario(seeds[i]); });
  EXPECT_EQ(first, second);
}

TEST(ParallelRunner, PrebuiltJobClosuresRunInInputOrder) {
  ParallelRunner runner(3);
  std::vector<std::function<int()>> jobs;
  for (int i = 0; i < 12; ++i) jobs.push_back([i] { return i * 10; });
  const auto out = runner.run<int>(jobs);
  ASSERT_EQ(out.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * 10);
}

}  // namespace
}  // namespace lm::testbed
