#include "testbed/topology.h"

#include <gtest/gtest.h>

#include "support/assert.h"

namespace lm::testbed {
namespace {

TEST(Topology, ChainSpacing) {
  const auto p = chain(4, 250.0);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_DOUBLE_EQ(p[0].x, 0.0);
  EXPECT_DOUBLE_EQ(p[3].x, 750.0);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_DOUBLE_EQ(phy::distance_m(p[i - 1], p[i]), 250.0);
  }
}

TEST(Topology, GridLayout) {
  const auto p = grid(2, 3, 100.0);
  ASSERT_EQ(p.size(), 6u);
  EXPECT_DOUBLE_EQ(phy::distance_m(p[0], p[1]), 100.0);  // same row
  EXPECT_DOUBLE_EQ(phy::distance_m(p[0], p[3]), 100.0);  // same column
  EXPECT_DOUBLE_EQ(phy::distance_m(p[0], p[5]), std::sqrt(100.0 * 100 * 5));
}

TEST(Topology, StarHubAndLeaves) {
  const auto p = star(6, 500.0);
  ASSERT_EQ(p.size(), 7u);
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_NEAR(phy::distance_m(p[0], p[i]), 500.0, 1e-9);
  }
}

TEST(Topology, RandomFieldStaysInBounds) {
  Rng rng(3);
  const auto p = random_field(50, 1000.0, 400.0, rng);
  ASSERT_EQ(p.size(), 50u);
  for (const auto& pos : p) {
    EXPECT_GE(pos.x, 0.0);
    EXPECT_LT(pos.x, 1000.0);
    EXPECT_GE(pos.y, 0.0);
    EXPECT_LT(pos.y, 400.0);
  }
}

TEST(Topology, ConnectedRandomFieldIsConnected) {
  Rng rng(4);
  const double radius = 400.0;
  const auto p = connected_random_field(16, 1200.0, 1200.0, radius, rng);
  const auto linked = [&](std::size_t a, std::size_t b) {
    return phy::distance_m(p[a], p[b]) <= radius;
  };
  EXPECT_TRUE(is_connected(p.size(), linked));
}

TEST(Topology, ConnectedRandomFieldThrowsWhenInfeasible) {
  Rng rng(5);
  // 30 m link radius in a 100 km field: essentially never connected.
  EXPECT_THROW(connected_random_field(10, 100'000.0, 100'000.0, 30.0, rng, 5),
               ContractViolation);
}

TEST(Topology, HopMatrixOnAChain) {
  const auto linked = [](std::size_t a, std::size_t b) {
    return (a > b ? a - b : b - a) == 1;
  };
  const auto hops = hop_matrix(4, linked);
  EXPECT_EQ(hops[0][0], 0);
  EXPECT_EQ(hops[0][1], 1);
  EXPECT_EQ(hops[0][3], 3);
  EXPECT_EQ(hops[3][0], 3);
}

TEST(Topology, HopMatrixDisconnected) {
  const auto linked = [](std::size_t a, std::size_t b) {
    return (a < 2) == (b < 2) && a != b;  // two islands {0,1} and {2,3}
  };
  const auto hops = hop_matrix(4, linked);
  EXPECT_EQ(hops[0][1], 1);
  EXPECT_EQ(hops[0][2], -1);
  EXPECT_FALSE(is_connected(4, linked));
}

TEST(Topology, HopMatrixRespectsDirectedLinks) {
  const auto linked = [](std::size_t a, std::size_t b) {
    return b == a + 1;  // one-way chain
  };
  const auto hops = hop_matrix(3, linked);
  EXPECT_EQ(hops[0][2], 2);
  EXPECT_EQ(hops[2][0], -1);
}

TEST(Topology, EmptyAndSingleton) {
  EXPECT_TRUE(is_connected(0, [](std::size_t, std::size_t) { return false; }));
  EXPECT_TRUE(is_connected(1, [](std::size_t, std::size_t) { return false; }));
}

}  // namespace
}  // namespace lm::testbed
