// Soak test: a realistic deployment simulated for a full day — shadowed
// field, periodic sensor traffic, occasional node churn, duty-cycle
// enforcement — finishing with global consistency checks across every
// counter the system keeps. One test, many invariants; this is the "leave
// it running overnight" confidence check, compressed to seconds.
#include <gtest/gtest.h>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/chaos.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::testbed {
namespace {

TEST(Soak, TwentyFourHourFieldDeployment) {
  ScenarioConfig c;
  c.seed = 424242;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 2.0;
  c.propagation.fading_sigma_db = 1.5;
  c.mesh.hello_interval = Duration::seconds(60);
  c.mesh.require_link_quality = true;  // field has marginal links
  c.mesh.min_snr_margin_db = 5.0;

  MeshScenario s(c);
  Rng layout(c.seed);
  const std::size_t sink = s.add_node({0, 0}, net::roles::kSink);
  for (const auto& p : connected_random_field(15, 1600, 1600, 480, layout)) {
    s.add_node(p);
  }
  metrics::PacketTracker tracker;
  attach_tracker(s, tracker);
  s.start_all();
  s.run_for(Duration::minutes(20));

  // Every sensor reports to the sink every ~5 minutes.
  std::vector<std::unique_ptr<DatagramTraffic>> flows;
  for (std::size_t i = 1; i < s.size(); ++i) {
    flows.push_back(std::make_unique<DatagramTraffic>(
        s, tracker, i, sink,
        TrafficConfig{Duration::minutes(5), 16, true}, 7000 + i));
    flows.back()->start();
  }
  // Background churn, sparing the sink.
  ChaosConfig chaos;
  chaos.mean_time_between_failures = Duration::hours(2);
  chaos.min_outage = Duration::minutes(5);
  chaos.max_outage = Duration::minutes(30);
  chaos.protected_nodes = {sink};
  ChaosMonkey monkey(s, chaos, 31337);
  monkey.start();

  s.run_for(Duration::hours(24));
  monkey.stop();
  for (auto& f : flows) f->stop();
  s.run_for(Duration::minutes(10));

  // --- Global invariants ----------------------------------------------------
  const auto total = s.total_stats();
  const auto& cs = s.channel().stats();

  // Channel accounting identity: every reception opportunity has exactly
  // one fate, and with 16 radios each frame creates exactly 15 of them.
  // Beacons never stop, so a frame can still be on the air when the clock
  // halts — its opportunities are undecided and must be excluded.
  const std::uint64_t fates = cs.receptions_delivered + cs.dropped_not_listening +
                              cs.dropped_blocked_link +
                              cs.dropped_below_sensitivity + cs.dropped_snr +
                              cs.dropped_collision +
                              cs.dropped_modulation_mismatch;
  const std::uint64_t completed = cs.frames_transmitted - s.channel().in_flight_count();
  EXPECT_GT(cs.frames_transmitted, 1000u);
  EXPECT_EQ(fates, completed * (s.size() - 1));
  EXPECT_GT(cs.receptions_delivered, 0u);

  // Per-node sanity.
  for (std::size_t i = 0; i < s.size(); ++i) {
    const auto& st = s.node(i).stats();
    // Duty cycle was honored at every node at all times (limiter admits
    // only within budget).
    EXPECT_LE(s.node(i).duty_cycle().utilization(s.now()), 0.01 + 1e-9) << i;
    // Nothing pathological accumulated.
    EXPECT_EQ(st.malformed_frames, 0u) << i;
    EXPECT_LT(st.forced_transmissions, 50u) << i;
    // Queues drained by the end.
    EXPECT_LE(s.node(i).queued_packets(), 2u) << i;
  }

  // The mesh did its job through churn: most readings arrived.
  EXPECT_GT(tracker.attempted(), 3500u);
  EXPECT_GT(tracker.pdr(), 0.55);
  EXPECT_EQ(tracker.duplicates(), 0u);  // plain datagrams never duplicate
  // Forwarding happened (multi-hop field), and the sink heard everyone who
  // is currently alive.
  EXPECT_GT(total.packets_forwarded, 500u);
  std::size_t reachable = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (s.node(i).running() &&
        s.node(sink).routing_table().has_route(s.address_of(i))) {
      ++reachable;
    }
  }
  EXPECT_GE(reachable, 12u);
}

}  // namespace
}  // namespace lm::testbed
