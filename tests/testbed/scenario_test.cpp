#include "testbed/scenario.h"

#include <gtest/gtest.h>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::testbed {
namespace {

constexpr double kSpacing = 400.0;

ScenarioConfig cfg(std::uint64_t seed = 1) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

TEST(MeshScenario, AddressAssignmentAndLookup) {
  MeshScenario s(cfg());
  s.add_nodes(chain(3, kSpacing));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.address_of(0), 0x0001);
  EXPECT_EQ(s.address_of(2), 0x0003);
  EXPECT_EQ(s.index_of(0x0002), 1u);
  EXPECT_FALSE(s.index_of(0x0009).has_value());
  EXPECT_FALSE(s.index_of(net::kBroadcast).has_value());
  EXPECT_EQ(s.node(1).address(), 0x0002);
}

TEST(MeshScenario, ExpectedHopsMatchesChainGeometry) {
  MeshScenario s(cfg());
  s.add_nodes(chain(4, kSpacing));
  s.start_all();  // the oracle only counts running nodes
  const auto hops = s.expected_hops();
  EXPECT_EQ(hops[0][1], 1);
  EXPECT_EQ(hops[0][2], 2);
  EXPECT_EQ(hops[0][3], 3);
  EXPECT_EQ(hops[3][0], 3);
  EXPECT_EQ(hops[0][0], 0);
}

TEST(MeshScenario, ExpectedHopsIgnoresStoppedNodes) {
  MeshScenario s(cfg());
  s.add_nodes(chain(3, kSpacing));
  s.start_all();
  s.fail_node(1);
  const auto hops = s.expected_hops();
  EXPECT_EQ(hops[0][2], -1);  // relay gone: unreachable
  EXPECT_EQ(hops[0][1], -1);  // stopped endpoint
}

TEST(MeshScenario, ConvergedIsFalseBeforeAnyBeacons) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, kSpacing));
  s.start_all();
  EXPECT_FALSE(s.converged());
}

TEST(MeshScenario, RunUntilConvergedReportsElapsedTime) {
  MeshScenario s(cfg());
  s.add_nodes(chain(3, kSpacing));
  s.start_all();
  const auto elapsed = s.run_until_converged(Duration::minutes(5));
  ASSERT_TRUE(elapsed.has_value());
  EXPECT_GT(*elapsed, Duration::zero());
  EXPECT_LT(*elapsed, Duration::minutes(5));
  EXPECT_TRUE(s.converged());
}

TEST(MeshScenario, PartitionedIslandsConvergeSeparately) {
  MeshScenario s(cfg());
  s.add_nodes(chain(3, kSpacing));
  // Isolate node index 2 (radio id 3) from both others: the oracle sees two
  // islands, each of which must converge internally.
  s.channel().block_link(2, 3);
  s.channel().block_link(1, 3);
  s.start_all();
  const auto elapsed = s.run_until_converged(Duration::minutes(2));
  ASSERT_TRUE(elapsed.has_value());
  EXPECT_FALSE(s.node(0).routing_table().has_route(s.address_of(2)));
  EXPECT_TRUE(s.node(0).routing_table().has_route(s.address_of(1)));
}

TEST(MeshScenario, DumpListsAllTables) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));
  const std::string dump = s.dump_routing_tables();
  EXPECT_NE(dump.find("0x0001"), std::string::npos);
  EXPECT_NE(dump.find("0x0002"), std::string::npos);
}

TEST(MeshScenario, TrafficHarnessEndToEnd) {
  MeshScenario s(cfg(33));
  s.add_nodes(chain(3, kSpacing));
  metrics::PacketTracker tracker;
  attach_tracker(s, tracker);
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  DatagramTraffic traffic(s, tracker, 0, 2, {Duration::seconds(15), 16, true}, 5);
  traffic.start();
  s.run_for(Duration::minutes(30));
  traffic.stop();

  EXPECT_GT(tracker.attempted(), 60u);
  EXPECT_GT(tracker.pdr(), 0.95);  // clean links, light load
  EXPECT_GT(tracker.latency().mean(), 0.0);
  EXPECT_DOUBLE_EQ(tracker.hops().median(), 2.0);
}

TEST(MeshScenario, PeriodicTrafficIsDeterministicallySpaced) {
  MeshScenario s(cfg(44));
  s.add_nodes(chain(2, kSpacing));
  metrics::PacketTracker tracker;
  attach_tracker(s, tracker);
  s.start_all();
  s.run_for(Duration::seconds(25));
  DatagramTraffic traffic(s, tracker, 0, 1,
                          {Duration::seconds(10), 16, /*poisson=*/false}, 5);
  traffic.start();
  s.run_for(Duration::minutes(10));
  traffic.stop();
  // Exactly one send per 10 s period.
  EXPECT_EQ(tracker.attempted(), 60u);
}

TEST(MeshScenario, ApplyRegionConfiguresRadioAndDuty) {
  ScenarioConfig c;
  c.radio.tx_power_dbm = 20.0;  // over the EU868 g1 ceiling
  apply_region(c, phy::eu868());
  EXPECT_DOUBLE_EQ(c.radio.frequency_hz, 868.1e6);
  EXPECT_DOUBLE_EQ(c.radio.tx_power_dbm, 14.0);  // clamped
  EXPECT_DOUBLE_EQ(c.mesh.duty_cycle_limit, 0.01);

  EXPECT_TRUE(c.mesh.max_dwell_time.is_zero());  // EU868 has no dwell rule

  ScenarioConfig us;
  us.radio.tx_power_dbm = 20.0;
  apply_region(us, phy::us915());
  EXPECT_DOUBLE_EQ(us.radio.frequency_hz, 902.3e6);
  EXPECT_DOUBLE_EQ(us.radio.tx_power_dbm, 20.0);  // under the 30 dBm ceiling
  EXPECT_DOUBLE_EQ(us.mesh.duty_cycle_limit, 1.0);  // dwell-ruled instead
  EXPECT_EQ(us.mesh.max_dwell_time, Duration::milliseconds(400));
}

TEST(MeshScenario, TotalStatsAggregates) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::minutes(1));
  const auto total = s.total_stats();
  EXPECT_EQ(total.beacons_sent,
            s.node(0).stats().beacons_sent + s.node(1).stats().beacons_sent);
  EXPECT_GT(total.beacons_sent, 0u);
  EXPECT_GT(total.control_bytes_sent, 0u);
}

}  // namespace
}  // namespace lm::testbed
