// ChaosMonkey behaviour plus the long-haul stability property it exists
// for: a mesh under random node churn keeps recovering.
#include "testbed/chaos.h"

#include <gtest/gtest.h>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::testbed {
namespace {

ScenarioConfig cfg(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  // Fast-reacting mesh so churn is survivable within test time.
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.route_timeout_intervals = 4;
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

TEST(ChaosMonkey, InjectsAndRecovers) {
  MeshScenario s(cfg(1));
  // 3x3 grid: enough redundancy to keep something alive.
  s.add_nodes(grid(3, 3, 400.0));
  s.start_all();
  ChaosConfig chaos;
  chaos.mean_time_between_failures = Duration::minutes(5);
  chaos.min_outage = Duration::minutes(2);
  chaos.max_outage = Duration::minutes(10);
  ChaosMonkey monkey(s, chaos, 99);
  monkey.start();
  s.run_for(Duration::hours(2));
  monkey.stop();
  EXPECT_GT(monkey.failures_injected(), 5u);
  EXPECT_GT(monkey.recoveries(), 0u);
  // Eventually everyone recovers (outages are bounded).
  s.run_for(Duration::minutes(15));
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_TRUE(s.node(i).running()) << "node " << i;
  }
}

TEST(ChaosMonkey, RespectsProtectionAndFloor) {
  MeshScenario s(cfg(2));
  s.add_nodes(chain(3, 400.0));
  s.start_all();
  ChaosConfig chaos;
  chaos.mean_time_between_failures = Duration::minutes(1);
  chaos.min_outage = Duration::hours(5);  // once down, stays down
  chaos.max_outage = Duration::hours(6);
  chaos.min_alive = 2;
  chaos.protected_nodes = {0};
  ChaosMonkey monkey(s, chaos, 7);
  monkey.start();
  s.run_for(Duration::hours(2));
  EXPECT_TRUE(s.node(0).running());  // protected
  std::size_t alive = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.node(i).running()) ++alive;
  }
  EXPECT_GE(alive, 2u);  // floor respected
  EXPECT_EQ(monkey.failures_injected(), 1u);  // floor blocked the rest
}

TEST(ChaosMonkey, MeshRecoversAfterChurnStops) {
  // The stability property: whatever the monkey did, once it stops and
  // outages run out, the full mesh re-converges and routes again.
  MeshScenario s(cfg(3));
  s.add_nodes(grid(3, 3, 400.0));
  metrics::PacketTracker tracker;
  attach_tracker(s, tracker);
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10), Duration::seconds(5),
                                    0.9, false)
                  .has_value());

  ChaosConfig chaos;
  chaos.mean_time_between_failures = Duration::minutes(4);
  chaos.min_outage = Duration::minutes(1);
  chaos.max_outage = Duration::minutes(8);
  chaos.protected_nodes = {0, 8};  // keep the measured endpoints
  ChaosMonkey monkey(s, chaos, 11);
  monkey.start();

  DatagramTraffic traffic(s, tracker, 0, 8, {Duration::seconds(30), 16, true}, 5);
  traffic.start();
  s.run_for(Duration::hours(3));
  monkey.stop();
  traffic.stop();
  s.run_for(Duration::minutes(20));  // outages drain, routes refresh
  const double pdr_during = tracker.pdr();

  // Post-chaos: full function restored.
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(15), Duration::seconds(5),
                                    0.9, false)
                  .has_value());
  metrics::PacketTracker after;
  attach_tracker(s, after);
  DatagramTraffic traffic2(s, after, 0, 8, {Duration::seconds(30), 16, true}, 6);
  traffic2.start();
  s.run_for(Duration::minutes(30));
  traffic2.stop();

  EXPECT_GT(monkey.failures_injected(), 10u);
  EXPECT_GT(pdr_during, 0.3);  // degraded but alive through the churn
  // Fully functional again. The grid's 565 m diagonal links hover at ~98.5 %
  // per-frame quality, so a 2-hop corner-to-corner flow tops out around
  // 95-97 %, not 100 %.
  EXPECT_GT(after.pdr(), 0.88);
}

}  // namespace
}  // namespace lm::testbed
