// Tests for the testbed tooling: sniffer, waypoint mobility, address
// derivation.
#include <gtest/gtest.h>

#include <set>

#include "net/address_util.h"
#include "support/assert.h"
#include "phy/path_loss.h"
#include "testbed/mobility.h"
#include "testbed/scenario.h"
#include "testbed/sniffer.h"
#include "testbed/topology.h"

namespace lm::testbed {
namespace {

constexpr double kSpacing = 400.0;

ScenarioConfig cfg(std::uint64_t seed = 1) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

TEST(Sniffer, CapturesBeaconsWithDecode) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, kSpacing));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  s.start_all();
  s.run_for(Duration::seconds(25));

  EXPECT_GE(sniffer.captures().size(), 4u);  // ≥ 2 beacons per node
  EXPECT_GE(sniffer.count_of(net::PacketType::Routing), 4u);
  EXPECT_EQ(sniffer.undecodable(), 0u);
  for (const CapturedFrame& c : sniffer.captures()) {
    EXPECT_TRUE(c.packet.has_value());
    EXPECT_GT(c.meta.rssi_dbm, -120.0);
  }
}

TEST(Sniffer, SeesUnicastTrafficItIsNotPartOf) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, kSpacing));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  s.start_all();
  s.run_for(Duration::seconds(25));
  sniffer.clear();

  s.node(0).send_datagram(s.address_of(1), {1, 2, 3, 4});
  s.run_for(Duration::seconds(5));
  EXPECT_EQ(sniffer.count_of(net::PacketType::Data), 1u);
  // The mesh nodes never saw the sniffer: it only listens.
  EXPECT_EQ(sniffer.radio().stats().tx_frames, 0u);
}

TEST(Sniffer, FlagsNonMeshFrames) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  Sniffer sniffer(sim, channel, 99, {0, 0});
  radio::VirtualRadio rogue(sim, channel, 1, {100, 0}, {});
  rogue.transmit({0xDE, 0xAD});
  sim.run_for(Duration::seconds(1));
  ASSERT_EQ(sniffer.captures().size(), 1u);
  EXPECT_EQ(sniffer.undecodable(), 1u);
  EXPECT_FALSE(sniffer.captures()[0].packet.has_value());
}

TEST(Sniffer, DumpAndCallback) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, kSpacing));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  int live = 0;
  sniffer.set_callback([&](const CapturedFrame&) { ++live; });
  s.start_all();
  s.run_for(Duration::seconds(25));
  EXPECT_EQ(static_cast<std::size_t>(live), sniffer.captures().size());
  EXPECT_NE(sniffer.dump().find("ROUTING"), std::string::npos);
}

TEST(WaypointMover, ReachesWaypointsAtConstantSpeed) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio r(sim, channel, 1, {0, 0}, {});
  WaypointMover mover(sim, r, {{100, 0}, {100, 100}}, 10.0);
  mover.start();

  sim.run_for(Duration::seconds(5));
  EXPECT_NEAR(r.position().x, 50.0, 1e-9);
  EXPECT_NEAR(r.position().y, 0.0, 1e-9);

  sim.run_for(Duration::seconds(10));  // t=15: 150 m along the path
  EXPECT_NEAR(r.position().x, 100.0, 1e-9);
  EXPECT_NEAR(r.position().y, 50.0, 1e-9);
  EXPECT_FALSE(mover.done());

  sim.run_for(Duration::seconds(10));  // t=25: past the 200 m total
  EXPECT_NEAR(r.position().x, 100.0, 1e-9);
  EXPECT_NEAR(r.position().y, 100.0, 1e-9);
  EXPECT_TRUE(mover.done());
  EXPECT_NEAR(mover.distance_travelled_m(), 200.0, 1e-9);
}

TEST(WaypointMover, PassesMultipleWaypointsInOneTick) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio r(sim, channel, 1, {0, 0}, {});
  // 3 waypoints 1 m apart, speed 100 m/s, 1 s tick: all consumed at once.
  WaypointMover mover(sim, r, {{1, 0}, {2, 0}, {3, 0}}, 100.0);
  mover.start();
  sim.run_for(Duration::seconds(1));
  EXPECT_TRUE(mover.done());
  EXPECT_NEAR(r.position().x, 3.0, 1e-9);
}

TEST(WaypointMover, StopFreezesPosition) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio r(sim, channel, 1, {0, 0}, {});
  WaypointMover mover(sim, r, {{1000, 0}}, 10.0);
  mover.start();
  sim.run_for(Duration::seconds(3));
  mover.stop();
  const auto frozen = r.position();
  sim.run_for(Duration::seconds(10));
  EXPECT_EQ(r.position(), frozen);
}

TEST(WaypointMover, RejectsBadParameters) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio r(sim, channel, 1, {0, 0}, {});
  EXPECT_THROW(WaypointMover(sim, r, {{1, 0}}, 0.0), ContractViolation);
  EXPECT_THROW(WaypointMover(sim, r, {{1, 0}}, 1.0, Duration::zero()),
               ContractViolation);
}

TEST(AddressUtil, NeverProducesReservedAddresses) {
  for (std::uint64_t mac = 0; mac < 50'000; ++mac) {
    const net::Address a = net::address_from_mac(mac);
    ASSERT_TRUE(net::is_valid_node_address(a));
  }
}

TEST(AddressUtil, SpreadsVendorPrefixedMacs) {
  // Same vendor prefix, consecutive serials — addresses must still spread.
  std::set<net::Address> seen;
  for (std::uint64_t serial = 0; serial < 1000; ++serial) {
    seen.insert(net::address_from_mac(0xA4CF12000000ULL | serial));
  }
  // Birthday bound: ~992 distinct expected out of 1000 over 2^16.
  EXPECT_GT(seen.size(), 950u);
}

TEST(AddressUtil, Deterministic) {
  EXPECT_EQ(net::address_from_mac(0x1234567890ABULL),
            net::address_from_mac(0x1234567890ABULL));
}

}  // namespace
}  // namespace lm::testbed
