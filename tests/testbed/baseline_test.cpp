// Tests for the comparison substrates: controlled flooding and the
// LoRaWAN-style star network.
#include <gtest/gtest.h>

#include "baseline/flooding_node.h"
#include "baseline/star_network.h"
#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/flood_scenario.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::baseline {
namespace {

constexpr double kSpacing = 400.0;

testbed::FloodScenarioConfig flood_config(std::uint64_t seed = 1) {
  testbed::FloodScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.flood.duty_cycle_limit = 1.0;
  return c;
}

TEST(Flooding, DeliversAcrossMultiHopChain) {
  testbed::FloodScenario s(flood_config());
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();

  net::Address origin = net::kUnassigned;
  std::uint8_t hops = 0;
  int deliveries = 0;
  s.node(3).set_handler([&](net::Address o, const std::vector<std::uint8_t>&,
                            std::uint8_t h) {
    ++deliveries;
    origin = o;
    hops = h;
  });
  ASSERT_TRUE(s.node(0).send(s.address_of(3), {1, 2, 3, 4, 5, 6, 7, 8}));
  s.run_for(Duration::seconds(30));

  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(origin, s.address_of(0));
  EXPECT_EQ(hops, 3);
  // No routing state needed — but every intermediate node relayed.
  EXPECT_GE(s.node(1).stats().relayed, 1u);
  EXPECT_GE(s.node(2).stats().relayed, 1u);
}

TEST(Flooding, DuplicateSuppressionStopsEcho) {
  testbed::FloodScenario s(flood_config());
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  s.node(0).send(s.address_of(3), {1, 2, 3, 4, 5, 6, 7, 8});
  s.run_for(Duration::minutes(1));
  // Each relay forwards exactly once; node 1 then hears node 2's relay of
  // the same packet and suppresses it instead of re-flooding.
  EXPECT_EQ(s.node(1).stats().relayed, 1u);
  EXPECT_EQ(s.node(2).stats().relayed, 1u);
  EXPECT_GE(s.node(1).stats().duplicates_suppressed, 1u);
}

TEST(Flooding, TtlBoundsPropagation) {
  auto cfg = flood_config();
  cfg.flood.max_ttl = 2;
  testbed::FloodScenario s(cfg);
  s.add_nodes(testbed::chain(5, kSpacing));
  s.start_all();
  int deliveries = 0;
  s.node(4).set_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++deliveries;
      });
  s.node(0).send(s.address_of(4), {1, 2, 3, 4, 5, 6, 7, 8});  // needs 4 hops
  s.run_for(Duration::minutes(1));
  EXPECT_EQ(deliveries, 0);
  EXPECT_GE(s.node(1).stats().dropped_ttl + s.node(2).stats().dropped_ttl, 1u);
}

TEST(Flooding, BroadcastReachesEveryone) {
  testbed::FloodScenario s(flood_config());
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  int reached = 0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    s.node(i).set_handler(
        [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t) {
          ++reached;
        });
  }
  s.node(0).send(net::kBroadcast, {1, 2, 3, 4, 5, 6, 7, 8});
  s.run_for(Duration::minutes(1));
  EXPECT_EQ(reached, 3);
}

TEST(Flooding, UnicastStopsRelayingAtTarget) {
  testbed::FloodScenario s(flood_config());
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  // Unicast to node 1: nodes beyond it should not need to relay... node 1
  // consumes and stops; node 2 only hears node 1's *non*-relay (nothing).
  s.node(0).send(s.address_of(1), {1, 2, 3, 4, 5, 6, 7, 8});
  s.run_for(Duration::minutes(1));
  EXPECT_EQ(s.node(1).stats().delivered, 1u);
  EXPECT_EQ(s.node(1).stats().relayed, 0u);
  EXPECT_EQ(s.node(2).stats().delivered, 0u);
}

TEST(Flooding, SendValidation) {
  testbed::FloodScenario s(flood_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  EXPECT_FALSE(s.node(0).send(s.address_of(0), {1}));  // to self
  EXPECT_FALSE(s.node(0).send(net::kUnassigned, {1}));
  EXPECT_FALSE(
      s.node(0).send(s.address_of(1), std::vector<std::uint8_t>(kMaxFloodPayload + 1)));
  s.node(0).stop();
  EXPECT_FALSE(s.node(0).send(s.address_of(1), {1}));
}

TEST(Flooding, TrafficHarnessMeasuresPdr) {
  testbed::FloodScenario s(flood_config(11));
  s.add_nodes(testbed::chain(3, kSpacing));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  testbed::FloodTraffic traffic(s, tracker, 0, 2, {Duration::seconds(20), 16, true},
                                123);
  traffic.start();
  s.run_for(Duration::minutes(20));
  traffic.stop();
  EXPECT_GT(tracker.attempted(), 30u);
  EXPECT_GT(tracker.pdr(), 0.9);  // clean links: flooding delivers
}

// --- Star ---------------------------------------------------------------------

TEST(Star, GatewayReceivesInRangeUplinks) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio gw_radio(sim, channel, 1, {0, 0}, {});
  radio::VirtualRadio dev_radio(sim, channel, 2, {1000, 0}, {});

  std::vector<std::uint16_t> seqs;
  net::Address from = net::kUnassigned;
  GatewayNode gateway(gw_radio, [&](net::Address dev, std::uint16_t seq,
                                    const std::vector<std::uint8_t>& payload) {
    from = dev;
    seqs.push_back(seq);
    EXPECT_EQ(payload.size(), 10u);
  });
  gateway.start();
  EndDeviceNode device(sim, dev_radio, 0x0042, {}, 7);
  device.start();

  EXPECT_TRUE(device.send_uplink(std::vector<std::uint8_t>(10, 1)));
  EXPECT_TRUE(device.send_uplink(std::vector<std::uint8_t>(10, 2)));
  sim.run_for(Duration::minutes(1));

  EXPECT_EQ(gateway.uplinks_received(), 2u);
  EXPECT_EQ(from, 0x0042);
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{0, 1}));
  EXPECT_EQ(device.uplinks_sent(), 2u);
}

TEST(Star, OutOfRangeDeviceCannotDeliver) {
  sim::Simulator sim;
  radio::PropagationConfig prop;
  prop.path_loss = phy::make_log_distance(3.5, 40.0);
  radio::Channel channel(sim, prop, 1);
  radio::VirtualRadio gw_radio(sim, channel, 1, {0, 0}, {});
  radio::VirtualRadio dev_radio(sim, channel, 2, {2 * kSpacing, 0}, {});

  GatewayNode gateway(gw_radio, nullptr);
  gateway.start();
  EndDeviceNode device(sim, dev_radio, 0x0042, {}, 7);
  device.start();
  device.send_uplink(std::vector<std::uint8_t>(10, 1));
  sim.run_for(Duration::minutes(1));
  EXPECT_EQ(gateway.uplinks_received(), 0u);
  EXPECT_EQ(device.uplinks_sent(), 1u);  // it transmitted; nobody heard
}

TEST(Star, AlohaCollisionsLoseFrames) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio gw_radio(sim, channel, 1, {0, 0}, {});
  GatewayNode gateway(gw_radio, nullptr);
  gateway.start();

  // Two equidistant devices with zero dither transmit simultaneously.
  EndDeviceConfig no_dither;
  no_dither.tx_dither = Duration::microseconds(1);
  radio::VirtualRadio r2(sim, channel, 2, {1000, 0}, {});
  radio::VirtualRadio r3(sim, channel, 3, {-1000, 0}, {});
  EndDeviceNode d2(sim, r2, 0x0002, no_dither, 7);
  EndDeviceNode d3(sim, r3, 0x0003, no_dither, 7);
  d2.start();
  d3.start();
  d2.send_uplink(std::vector<std::uint8_t>(10, 1));
  d3.send_uplink(std::vector<std::uint8_t>(10, 1));
  sim.run_for(Duration::minutes(1));
  EXPECT_EQ(gateway.uplinks_received(), 0u);
  EXPECT_GE(channel.stats().dropped_collision, 1u);
}

TEST(Star, QueueLimitsRespected) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  radio::VirtualRadio r(sim, channel, 2, {1000, 0}, {});
  EndDeviceConfig cfg;
  cfg.max_queue = 2;
  EndDeviceNode d(sim, r, 0x0002, cfg, 7);
  d.start();
  for (int i = 0; i < 10; ++i) d.send_uplink(std::vector<std::uint8_t>(10, 1));
  EXPECT_GT(d.dropped_queue_full(), 0u);
  sim.run_for(Duration::minutes(1));
  EXPECT_LE(d.uplinks_sent(), 3u);  // 1 in flight + 2 queued
}

}  // namespace
}  // namespace lm::baseline
