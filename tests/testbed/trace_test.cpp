#include "testbed/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "phy/path_loss.h"
#include "testbed/topology.h"

namespace lm::testbed {
namespace {

ScenarioConfig cfg() {
  ScenarioConfig c;
  c.seed = 6;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

/// Validates one JSON line structurally without a JSON library: balanced
/// braces and quotes, newline-terminated, contains the expected keys.
void expect_jsonish_line(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(line[line.size() - 2], '}');
  int quotes = 0;
  for (char c : line) {
    if (c == '"') ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0) << line;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    if (end == std::string::npos) break;
    out.push_back(text.substr(start, end - start + 1));
    start = end + 1;
  }
  return out;
}

TEST(Trace, FramesSerializeWithProtocolFields) {
  MeshScenario s(cfg());
  s.add_nodes(chain(2, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  s.start_all();
  s.run_for(Duration::seconds(25));
  s.node(0).send_datagram(s.address_of(1), {1, 2, 3});
  s.run_for(Duration::seconds(5));

  const std::string jsonl = captures_to_json(sniffer);
  const auto lines = lines_of(jsonl);
  ASSERT_EQ(lines.size(), sniffer.captures().size());
  bool saw_routing = false, saw_data = false;
  for (const auto& line : lines) {
    expect_jsonish_line(line);
    EXPECT_NE(line.find(R"("kind":"frame")"), std::string::npos);
    EXPECT_NE(line.find(R"("rssi":)"), std::string::npos);
    if (line.find(R"("type":"ROUTING")") != std::string::npos) saw_routing = true;
    if (line.find(R"("type":"DATA")") != std::string::npos) {
      saw_data = true;
      // Routed packets carry the end-to-end fields.
      EXPECT_NE(line.find(R"("origin":"0x0001")"), std::string::npos);
      EXPECT_NE(line.find(R"("final":"0x0002")"), std::string::npos);
      EXPECT_NE(line.find(R"("ttl":)"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_routing);
  EXPECT_TRUE(saw_data);
}

TEST(Trace, UndecodableFramesAreMarked) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  Sniffer sniffer(sim, channel, 99, {0, 0});
  radio::VirtualRadio rogue(sim, channel, 1, {100, 0}, {});
  rogue.transmit({0xFF, 0xFF});
  sim.run_for(Duration::seconds(1));

  const std::string jsonl = captures_to_json(sniffer);
  EXPECT_NE(jsonl.find(R"("undecodable":true)"), std::string::npos);
  expect_jsonish_line(jsonl);
}

TEST(Trace, RouteSnapshotCoversEveryEntry) {
  MeshScenario s(cfg());
  s.add_nodes(chain(3, 400.0));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  const std::string jsonl = routes_to_json(s);
  const auto lines = lines_of(jsonl);
  std::size_t total_entries = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    total_entries += s.node(i).routing_table().size();
  }
  ASSERT_EQ(lines.size(), total_entries);
  for (const auto& line : lines) {
    expect_jsonish_line(line);
    EXPECT_NE(line.find(R"("kind":"route")"), std::string::npos);
    EXPECT_NE(line.find(R"("metric":)"), std::string::npos);
  }
  // The 2-hop route of the chain end shows up verbatim.
  EXPECT_NE(jsonl.find(R"("node":"0x0001","dst":"0x0003","via":"0x0002","metric":2)"),
            std::string::npos);
}

TEST(Trace, WriteFileRoundTrips) {
  const std::string path = "/tmp/lm_trace_test.jsonl";
  const std::string content = "{\"kind\":\"frame\"}\n";
  ASSERT_TRUE(write_file(path, content));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, n), content);
}

TEST(Trace, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir/x/y.jsonl", "x"));
}

}  // namespace
}  // namespace lm::testbed
