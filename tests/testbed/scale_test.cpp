// Scale behaviour: beacon truncation in large meshes, multi-channel
// isolation, and routing-table performance at size.
#include <gtest/gtest.h>

#include "phy/path_loss.h"
#include "testbed/background_traffic.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace lm::testbed {
namespace {

ScenarioConfig cfg(std::uint64_t seed = 1) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(30);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

TEST(Scale, SeventyNodeDomainTruncatesBeaconsButRoutes) {
  // 70 nodes in one broadcast domain: full tables (69 routes + self) exceed
  // the 62-entry beacon cap, so beacons truncate. Every node still learns
  // every 1-hop peer (nearest entries win truncation).
  MeshScenario s(cfg(2));
  auto positions = grid(9, 8, 40.0);  // all within ~450 m: one domain
  positions.resize(70);
  s.add_nodes(positions);
  s.start_all();
  s.run_for(Duration::minutes(20));

  std::size_t full_tables = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.node(i).routing_table().size() == 69) ++full_tables;
  }
  // Everyone hears everyone directly, so tables fill even though no single
  // beacon can carry them all.
  EXPECT_EQ(full_tables, 70u);
  // And a corner-to-corner datagram goes through (1 hop).
  int delivered = 0;
  s.node(69).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t hops) {
        ++delivered;
        EXPECT_EQ(hops, 1);
      });
  ASSERT_TRUE(s.node(0).send_datagram(s.address_of(69), {1}));
  s.run_for(Duration::minutes(1));
  EXPECT_EQ(delivered, 1);
}

TEST(Scale, MeshesOnDifferentChannelsDoNotInteract) {
  // Two co-located meshes on 868.1 and 869.525 MHz share one physical
  // space without hearing each other at all.
  auto c = cfg(3);
  MeshScenario s(c);
  s.add_nodes(chain(2, 400.0));  // nodes 0,1 on the default channel

  radio::RadioConfig other = c.radio;
  other.frequency_hz = 869.525e6;
  std::vector<std::unique_ptr<radio::VirtualRadio>> radios;
  std::vector<std::unique_ptr<net::MeshNode>> nodes;
  for (int i = 0; i < 2; ++i) {
    radios.push_back(std::make_unique<radio::VirtualRadio>(
        s.simulator(), s.channel(), static_cast<radio::RadioId>(50 + i),
        phy::Position{static_cast<double>(i) * 400.0, 10.0}, other));
    nodes.push_back(std::make_unique<net::MeshNode>(
        s.simulator(), *radios.back(), static_cast<net::Address>(0x0100 + i),
        c.mesh, 900 + static_cast<std::uint64_t>(i)));
    nodes.back()->start();
  }
  s.start_all();
  s.run_for(Duration::minutes(5));

  // Each pair discovered its own channel-mate and nothing else.
  EXPECT_TRUE(s.node(0).routing_table().has_route(s.address_of(1)));
  EXPECT_FALSE(s.node(0).routing_table().has_route(0x0100));
  EXPECT_TRUE(nodes[0]->routing_table().has_route(0x0101));
  EXPECT_FALSE(nodes[0]->routing_table().has_route(s.address_of(0)));
  // The foreign channel never even registered as interference.
  EXPECT_EQ(s.channel().stats().dropped_collision, 0u);
}

TEST(Scale, BackgroundTrafficInjectsAndStops) {
  sim::Simulator sim;
  radio::Channel channel(sim, radio::PropagationConfig::free_space(), 1);
  BackgroundConfig bg;
  bg.devices = 8;
  bg.mean_uplink_interval = Duration::minutes(1);
  BackgroundTraffic background(sim, channel, bg, 5);
  background.start();
  sim.run_for(Duration::hours(1));
  // ~8 devices x ~60 uplinks/h.
  EXPECT_GT(background.uplinks_sent(), 300u);
  EXPECT_LT(background.uplinks_sent(), 700u);
  EXPECT_GT(background.airtime_injected(), Duration::seconds(10));

  background.stop();
  const auto before = background.uplinks_sent();
  sim.run_for(Duration::hours(1));
  EXPECT_EQ(background.uplinks_sent(), before);
}

TEST(Scale, MixedSfBackgroundBarelyCollidesWithTheMesh) {
  // Direct unit check of the quasi-orthogonality claim E13 relies on: at
  // equal device count, co-SF interferers destroy far more mesh receptions
  // than mixed-SF interferers, despite injecting less airtime.
  auto run = [](bool mixed) {
    ScenarioConfig c = cfg(9);
    c.mesh.hello_interval = Duration::seconds(15);
    MeshScenario s(c);
    s.add_nodes(chain(3, 400.0));
    s.start_all();
    s.run_for(Duration::minutes(2));
    BackgroundConfig bg;
    bg.devices = 25;
    bg.mean_uplink_interval = Duration::seconds(30);
    bg.area_width_m = 800.0;
    bg.area_height_m = 400.0;
    bg.mixed_spreading_factors = mixed;
    BackgroundTraffic background(s.simulator(), s.channel(), bg, 77);
    s.channel().reset_stats();
    background.start();
    s.run_for(Duration::hours(2));
    background.stop();
    return s.channel().stats().dropped_collision;
  };
  const auto co_sf = run(false);
  const auto mixed_sf = run(true);
  EXPECT_GT(co_sf, 2 * mixed_sf);
}

TEST(Scale, RoutingTableHandlesHundredsOfDestinations) {
  // Direct unit-level scale check: a table fed 500 destinations stays
  // correct and its advertisement respects the cap with nearest-first
  // retention.
  net::RoutingTable t(0x0001, Duration::hours(1));
  TimePoint now;
  for (int i = 0; i < 500; ++i) {
    t.apply_beacon(0x0002,
                   {{static_cast<net::Address>(0x1000 + i),
                     static_cast<std::uint8_t>(i % 14 + 1)}},
                   now);
    now += Duration::seconds(1);
  }
  EXPECT_EQ(t.size(), 501u);  // 500 + the neighbor
  const auto adv = t.advertisement();
  EXPECT_EQ(adv.size(), net::kMaxRoutingEntries);
  // Truncation kept the best metrics: nothing in the advertisement is
  // worse than what was dropped.
  std::uint8_t worst_kept = 0;
  for (const auto& e : adv) worst_kept = std::max(worst_kept, e.metric);
  EXPECT_LE(worst_kept, 3);  // 62 slots cover metrics 0..~2 easily
  // Expiry clears the lot in one sweep.
  EXPECT_EQ(t.expire(now + Duration::hours(1)), 501u);
}

}  // namespace
}  // namespace lm::testbed
