#include "metrics/packet_tracker.h"

#include <gtest/gtest.h>

#include "support/assert.h"

namespace lm::metrics {
namespace {

TimePoint at(int seconds) { return TimePoint::origin() + Duration::seconds(seconds); }

TEST(PacketTracker, TokensAreSequential) {
  PacketTracker t;
  EXPECT_EQ(t.register_send(at(0)), 0u);
  EXPECT_EQ(t.register_send(at(1)), 1u);
  EXPECT_EQ(t.attempted(), 2u);
}

TEST(PacketTracker, PayloadRoundTripsToken) {
  const auto payload = PacketTracker::make_payload(0xABCDEF0123456789ULL, 32);
  EXPECT_EQ(payload.size(), 32u);
  const auto token = PacketTracker::extract_token(payload);
  ASSERT_TRUE(token.has_value());
  EXPECT_EQ(*token, 0xABCDEF0123456789ULL);
}

TEST(PacketTracker, PayloadMinimumSizeEnforced) {
  EXPECT_THROW(PacketTracker::make_payload(1, 7), lm::ContractViolation);
  EXPECT_EQ(PacketTracker::make_payload(1, 8).size(), 8u);
}

TEST(PacketTracker, ShortPayloadYieldsNoToken) {
  EXPECT_FALSE(PacketTracker::extract_token(std::vector<std::uint8_t>(7, 0))
                   .has_value());
}

TEST(PacketTracker, DeliveryComputesPdrAndLatency) {
  PacketTracker t;
  const auto tok0 = t.register_send(at(0));
  t.register_send(at(1));  // never delivered
  const auto tok2 = t.register_send(at(2));

  t.register_delivery(tok0, at(3), 2);
  t.register_delivery(tok2, at(4), 1);
  EXPECT_EQ(t.delivered(), 2u);
  EXPECT_NEAR(t.pdr(), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.latency().min(), 2.0);
  EXPECT_DOUBLE_EQ(t.latency().max(), 3.0);
  EXPECT_DOUBLE_EQ(t.hops().mean(), 1.5);
}

TEST(PacketTracker, DuplicateDeliveriesDoNotInflatePdr) {
  PacketTracker t;
  const auto tok = t.register_send(at(0));
  t.register_delivery(tok, at(1), 1);
  t.register_delivery(tok, at(2), 1);
  EXPECT_EQ(t.delivered(), 1u);
  EXPECT_EQ(t.duplicates(), 1u);
  EXPECT_DOUBLE_EQ(t.pdr(), 1.0);
}

TEST(PacketTracker, UnknownTokenIgnored) {
  PacketTracker t;
  t.register_delivery(999, at(1), 1);
  EXPECT_EQ(t.delivered(), 0u);
}

TEST(PacketTracker, RefusedSendsCountAgainstPdr) {
  PacketTracker t;
  t.register_send(at(0));
  t.register_refused();
  EXPECT_EQ(t.refused(), 1u);
  EXPECT_DOUBLE_EQ(t.pdr(), 0.0);
}

TEST(PacketTracker, RefusalsBreakDownByCause) {
  PacketTracker t;
  t.register_refused(lm::trace::DropReason::NoRoute);
  t.register_refused(lm::trace::DropReason::NoRoute);
  t.register_refused(lm::trace::DropReason::QueueFull);
  t.register_refused();  // caller without cause information
  EXPECT_EQ(t.refused(), 4u);
  EXPECT_EQ(t.refused(lm::trace::DropReason::NoRoute), 2u);
  EXPECT_EQ(t.refused(lm::trace::DropReason::QueueFull), 1u);
  EXPECT_EQ(t.refused(lm::trace::DropReason::None), 1u);
  EXPECT_EQ(t.refused(lm::trace::DropReason::TtlExpired), 0u);
  EXPECT_EQ(t.refusals_by_cause().size(), 3u);
}

TEST(PacketTracker, EmptyTrackerPdrIsZero) {
  PacketTracker t;
  EXPECT_DOUBLE_EQ(t.pdr(), 0.0);
}

}  // namespace
}  // namespace lm::metrics
