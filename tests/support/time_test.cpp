#include "support/time.h"

#include <gtest/gtest.h>

namespace lm {
namespace {

TEST(Duration, FactoryConversions) {
  EXPECT_EQ(Duration::microseconds(5).us(), 5);
  EXPECT_EQ(Duration::milliseconds(3).us(), 3000);
  EXPECT_EQ(Duration::seconds(2).us(), 2'000'000);
  EXPECT_EQ(Duration::minutes(1).us(), 60'000'000);
  EXPECT_EQ(Duration::hours(1).us(), 3'600'000'000LL);
  EXPECT_EQ(Duration::seconds(2).ms(), 2000);
  EXPECT_DOUBLE_EQ(Duration::milliseconds(1500).seconds_d(), 1.5);
}

TEST(Duration, FromSecondsRoundsToNearestMicrosecond) {
  EXPECT_EQ(Duration::from_seconds(1.0000004).us(), 1'000'000);
  EXPECT_EQ(Duration::from_seconds(1.0000006).us(), 1'000'001);
  EXPECT_EQ(Duration::from_seconds(-0.5).us(), -500'000);
  EXPECT_EQ(Duration::from_seconds(0.0).us(), 0);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::seconds(2);
  const Duration b = Duration::milliseconds(500);
  EXPECT_EQ((a + b).us(), 2'500'000);
  EXPECT_EQ((a - b).us(), 1'500'000);
  EXPECT_EQ((a * 3).us(), 6'000'000);
  EXPECT_EQ((3 * a).us(), 6'000'000);
  EXPECT_EQ((a / 4).us(), 500'000);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
  EXPECT_EQ((-b).us(), -500'000);
  Duration c = a;
  c += b;
  EXPECT_EQ(c.us(), 2'500'000);
  c -= a;
  EXPECT_EQ(c, b);
}

TEST(Duration, ScaleByDouble) {
  EXPECT_EQ((Duration::seconds(10) * 0.5).us(), 5'000'000);
  EXPECT_EQ((Duration::seconds(1) * 1.5).us(), 1'500'000);
}

TEST(Duration, Comparisons) {
  EXPECT_LT(Duration::milliseconds(1), Duration::milliseconds(2));
  EXPECT_GE(Duration::seconds(1), Duration::milliseconds(1000));
  EXPECT_TRUE(Duration::zero().is_zero());
  EXPECT_TRUE((-Duration::seconds(1)).is_negative());
  EXPECT_FALSE(Duration::seconds(1).is_negative());
}

TEST(Duration, ToStringPicksUnits) {
  EXPECT_EQ(Duration::microseconds(64).to_string(), "64us");
  EXPECT_EQ(Duration::milliseconds(250).to_string(), "250.000ms");
  EXPECT_EQ(Duration::from_seconds(1.5).to_string(), "1.500s");
}

TEST(TimePoint, Arithmetic) {
  const TimePoint t0 = TimePoint::origin();
  const TimePoint t1 = t0 + Duration::seconds(5);
  EXPECT_EQ(t1.us(), 5'000'000);
  EXPECT_EQ((t1 - t0), Duration::seconds(5));
  EXPECT_EQ((t1 - Duration::seconds(1)).us(), 4'000'000);
  TimePoint t2 = t1;
  t2 += Duration::seconds(1);
  EXPECT_GT(t2, t1);
  EXPECT_EQ(TimePoint::from_us(42).us(), 42);
}

TEST(TimePoint, OrderingAndExtremes) {
  EXPECT_LT(TimePoint::origin(), TimePoint::max());
  EXPECT_EQ(TimePoint::origin().to_string(), "t=0.000000s");
}

}  // namespace
}  // namespace lm
