#include "support/stats.h"

#include <gtest/gtest.h>

namespace lm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7 - 3.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Histogram, ExactPercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(i);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_DOUBLE_EQ(h.median(), 50.5);
  EXPECT_NEAR(h.percentile(95), 95.05, 1e-9);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
}

TEST(Histogram, EmptyReturnsZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSample) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
}

TEST(Histogram, UnsortedInsertOrder) {
  Histogram h;
  for (double x : {9.0, 1.0, 5.0, 3.0, 7.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.median(), 5.0);
  h.add(0.0);  // adding after a percentile query must re-sort
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=2"), std::string::npos);
  EXPECT_NE(s.find("p95"), std::string::npos);
}

}  // namespace
}  // namespace lm
