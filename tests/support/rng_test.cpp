#include "support/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "support/assert.h"

namespace lm {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformRequiresOrderedBounds) {
  Rng rng(4);
  EXPECT_THROW(rng.uniform(1.0, 1.0), ContractViolation);
}

TEST(Rng, UniformIntCoversRangeInclusively) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all of -2..3 hit
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsConstant) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(12);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(4.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(13);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, IndexStaysInBounds) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(rng.index(7), 7u);
  }
  EXPECT_THROW(rng.index(0), ContractViolation);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  auto shuffled_sorted = v;
  std::sort(shuffled_sorted.begin(), shuffled_sorted.end());
  EXPECT_EQ(shuffled_sorted, sorted);
}

TEST(Rng, ShuffleChangesOrderEventually) {
  Rng rng(16);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // probability of identity is 1/32! — negligible
}

}  // namespace
}  // namespace lm
