#include "support/log.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace lm {
namespace {

TEST(Logger, LevelGatesOutput) {
  Logger& log = Logger::instance();
  const LogLevel prior = log.level();
  log.set_level(LogLevel::Warn);
  EXPECT_FALSE(log.enabled(LogLevel::Trace));
  EXPECT_FALSE(log.enabled(LogLevel::Info));
  EXPECT_TRUE(log.enabled(LogLevel::Warn));
  EXPECT_TRUE(log.enabled(LogLevel::Error));
  log.set_level(LogLevel::Off);
  EXPECT_FALSE(log.enabled(LogLevel::Error));
  log.set_level(prior);
}

TEST(Logger, MacrosCompileAndRespectLevel) {
  Logger& log = Logger::instance();
  const LogLevel prior = log.level();
  log.set_level(LogLevel::Off);
  // None of these may crash or emit (visually verified by quiet test runs).
  LM_TRACE("test", "trace %d", 1);
  LM_DEBUG("test", "debug %s", "x");
  LM_INFO("test", "info");
  LM_WARN("test", "warn %f", 1.5);
  LM_ERROR("test", "error");
  log.set_level(prior);
}

TEST(Logger, SimulatorTimeSourceAttachesAndDetaches) {
  Logger& log = Logger::instance();
  {
    sim::Simulator sim;
    sim.attach_logger_time_source();
    sim.run_for(Duration::seconds(3));
    // The time source reflects the simulated clock.
    // (Indirect check: the destructor must detach without dangling.)
  }
  // After the simulator died, logging must not touch freed memory.
  const LogLevel prior = log.level();
  log.set_level(LogLevel::Off);
  LM_ERROR("test", "post-detach log");
  log.set_level(prior);
}

}  // namespace
}  // namespace lm
