#include "support/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/assert.h"

namespace lm {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ClampsZeroThreadsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  // With one worker the queue is FIFO, so execution order is submission
  // order — the property parallel_for_each's index-addressed results build on.
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  std::vector<int> expect(50);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, ReusableAfterDrain) {
  // The pool must survive submit -> wait_idle cycles: benches run one sweep,
  // aggregate, then shard the next sweep on the same pool.
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), (round + 1) * 20);
  }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // nothing queued: must not deadlock
}

TEST(ThreadPool, RejectsNullJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // destructor joins after the queue empties
  EXPECT_EQ(count.load(), 40);
}

TEST(ParallelForEach, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  parallel_for_each(pool, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForEach, ResultsLandAtTheirOwnIndex) {
  // The sharded-sweep contract: each job writes results[i], so the output
  // vector is identical regardless of thread count or completion order.
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::size_t> results(64, 0);
    parallel_for_each(pool, results.size(),
                      [&](std::size_t i) { results[i] = i * i; });
    for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelForEach, PropagatesTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    parallel_for_each(pool, 32, [&](std::size_t i) {
      if (i == 7) throw std::runtime_error("boom");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected the job's exception to reach the caller";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every other index still ran: one failure must not strand the sweep.
  EXPECT_EQ(completed.load(), 31);
}

TEST(ParallelForEach, PoolRemainsUsableAfterException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_each(pool, 4,
                        [](std::size_t) { throw std::runtime_error("x"); }),
      std::runtime_error);
  std::atomic<int> count{0};
  parallel_for_each(pool, 10, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelForEach, ZeroItemsIsANoOp) {
  ThreadPool pool(2);
  parallel_for_each(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace lm
