#include "support/byte_codec.h"

#include <gtest/gtest.h>

#include <vector>

namespace lm {
namespace {

TEST(ByteCodec, RoundTripAllWidths) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i8(-5);
  w.i16(-1000);
  const auto buf = w.take();
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8 + 1 + 2);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i8(), -5);
  EXPECT_EQ(r.i16(), -1000);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(r.ok());
}

TEST(ByteCodec, LittleEndianWireOrder) {
  ByteWriter w;
  w.u16(0x1234);
  const auto buf = w.data();
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf[0], 0x34);  // LSB first
  EXPECT_EQ(buf[1], 0x12);
}

TEST(ByteCodec, BytesRoundTrip) {
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  ByteWriter w;
  w.u8(9);
  w.bytes(blob);
  const auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 9);
  EXPECT_EQ(r.bytes(5), blob);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, RestConsumesRemainder) {
  ByteWriter w;
  w.u16(7);
  w.bytes(std::vector<std::uint8_t>{9, 8, 7});
  const auto buf = w.take();
  ByteReader r(buf);
  (void)r.u16();
  EXPECT_EQ(r.rest(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteCodec, OverrunPoisonsReader) {
  const std::vector<std::uint8_t> buf{0x01};
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0);  // needs 2 bytes, only 1 available
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_EQ(r.u8(), 0);  // stays poisoned
  EXPECT_TRUE(r.bytes(1).empty());
}

TEST(ByteCodec, EmptyFrame) {
  ByteReader r(std::span<const std::uint8_t>{});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.u8(), 0);
  EXPECT_FALSE(r.ok());
}

TEST(ByteCodec, BytesZeroLengthIsFine) {
  const std::vector<std::uint8_t> buf{1};
  ByteReader r(buf);
  EXPECT_TRUE(r.bytes(0).empty());
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u8(), 1);
}

TEST(ByteCodec, ToHexFormats) {
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{0x0A, 0xFF, 0x12}), "0A FF 12");
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{}), "");
  EXPECT_EQ(to_hex(std::vector<std::uint8_t>{0x00}), "00");
}

}  // namespace
}  // namespace lm
