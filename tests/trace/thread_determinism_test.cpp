// Cross-thread-count determinism of captured traces.
//
// Each job builds its own scenario + tracer from an explicit seed and
// returns the canonical trace text. Sharding the same jobs across 1, 2 and
// 8 worker threads must yield byte-identical results: the simulation is a
// pure function of its seed and the ParallelRunner collects results at
// their input index.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "testbed/parallel_runner.h"
#include "trace/trace_analyzer.h"
#include "trace_test_util.h"

namespace lm::testbed {
namespace {

TEST(ThreadDeterminism, CanonicalTracesIdenticalAcross1And2And8Threads) {
  const std::vector<std::uint64_t> seeds{7, 21, 42, 77};
  const auto job = [&seeds](std::size_t i) {
    return lm::trace::TraceAnalyzer::canonical_text(
        trace_test::capture_chain_trace(seeds[i]));
  };

  std::vector<std::vector<std::string>> per_thread_count;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    ParallelRunner runner(threads);
    per_thread_count.push_back(runner.map<std::string>(seeds.size(), job));
  }

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    ASSERT_FALSE(per_thread_count[0][i].empty()) << "seed " << seeds[i];
    EXPECT_TRUE(per_thread_count[0][i] == per_thread_count[1][i])
        << "seed " << seeds[i] << ": 1-thread and 2-thread traces differ";
    EXPECT_TRUE(per_thread_count[0][i] == per_thread_count[2][i])
        << "seed " << seeds[i] << ": 1-thread and 8-thread traces differ";
  }

  // Different seeds must not collapse onto one trace (the comparison above
  // would then be vacuous).
  EXPECT_NE(per_thread_count[0][0], per_thread_count[0][1]);
}

}  // namespace
}  // namespace lm::testbed
