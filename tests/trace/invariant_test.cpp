// Cross-layer invariant checks over randomized traced scenarios.
//
// Every scenario here — static chains/grids/random fields, a mobile node,
// and a ChaosMonkey run — is captured with the flight recorder and must
// satisfy all five analyzer invariants (no double delivery, monotone
// hops/TTL, duty budget respected, RX matched to TX, no unicast via a
// never-held route) with zero violations. Thirteen seeded runs in total.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/packet_tracker.h"
#include "testbed/chaos.h"
#include "testbed/mobility.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"
#include "trace/trace_analyzer.h"
#include "trace/trace_sink.h"
#include "trace_test_util.h"

namespace lm::testbed {
namespace {

using lm::trace::InvariantOptions;
using lm::trace::TraceAnalyzer;
using lm::trace::Tracer;
using lm::trace::VectorSink;

// Shared run recipe: converge (best effort), drive two-way traffic for ten
// simulated minutes, then check every invariant against the mesh config the
// scenario actually ran with.
void run_and_check(MeshScenario& scenario, VectorSink& sink,
                   std::uint64_t seed, const std::string& label) {
  metrics::PacketTracker tracker;
  attach_tracker(scenario, tracker);
  scenario.start_all();
  scenario.run_until_converged(Duration::minutes(10));

  TrafficConfig traffic;
  traffic.mean_interval = Duration::seconds(20);
  const std::size_t last = scenario.size() - 1;
  DatagramTraffic forward(scenario, tracker, 0, last, traffic, seed ^ 0xAAAA);
  DatagramTraffic reverse(scenario, tracker, last, 0, traffic, seed ^ 0x5555);
  forward.start();
  reverse.start();
  scenario.run_for(Duration::minutes(10));
  forward.stop();
  reverse.stop();

  // Per-cause refusal accounting must survive the facade seams: every
  // refusal the traffic harness saw carried a concrete DropReason out of
  // send_datagram (never None), and the per-cause ledger sums back to the
  // total refusal count.
  std::uint64_t by_cause_total = 0;
  for (const auto& [reason, count] : tracker.refusals_by_cause()) {
    EXPECT_NE(reason, trace::DropReason::None)
        << label << " seed " << seed << ": refusal with no cause";
    by_cause_total += count;
  }
  EXPECT_EQ(by_cause_total, tracker.refused()) << label << " seed " << seed;

  TraceAnalyzer analyzer(sink.take());
  EXPECT_GT(analyzer.events().size(), 50u) << label;
  InvariantOptions opts;
  opts.duty_cycle_limit = scenario.config().mesh.duty_cycle_limit;
  opts.duty_cycle_window = scenario.config().mesh.duty_cycle_window;
  const auto violations = analyzer.check_invariants(opts);
  std::string detail;
  for (const std::string& v : violations) detail += "\n  " + v;
  EXPECT_TRUE(violations.empty()) << label << " seed " << seed << detail;
}

// Deterministic config with the duty limiter *enabled* so invariant 3 is
// load-bearing (the shared util disables it for golden-trace brevity).
ScenarioConfig duty_limited_config(std::uint64_t seed) {
  ScenarioConfig c = trace_test::deterministic_config(seed);
  c.mesh.duty_cycle_limit = 0.01;
  c.mesh.duty_cycle_window = Duration::hours(1);
  return c;
}

TEST(TraceInvariants, StaticChains) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    VectorSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    MeshScenario scenario(duty_limited_config(seed));
    scenario.attach_tracer(tracer);
    scenario.add_nodes(chain(5, 400.0));
    run_and_check(scenario, sink, seed, "chain5");
  }
}

TEST(TraceInvariants, StaticGrids) {
  for (const std::uint64_t seed : {44ull, 55ull, 66ull}) {
    VectorSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    MeshScenario scenario(duty_limited_config(seed));
    scenario.attach_tracer(tracer);
    scenario.add_nodes(grid(3, 3, 350.0));
    run_and_check(scenario, sink, seed, "grid3x3");
  }
}

TEST(TraceInvariants, RandomFields) {
  for (const std::uint64_t seed : {77ull, 88ull, 99ull}) {
    VectorSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    MeshScenario scenario(duty_limited_config(seed));
    scenario.attach_tracer(tracer);
    Rng rng(seed);
    scenario.add_nodes(
        connected_random_field(8, 1200.0, 1200.0, 450.0, rng));
    run_and_check(scenario, sink, seed, "random_field8");
  }
}

TEST(TraceInvariants, MobileNode) {
  for (const std::uint64_t seed : {101ull, 202ull}) {
    VectorSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    MeshScenario scenario(duty_limited_config(seed));
    scenario.attach_tracer(tracer);
    scenario.add_nodes(chain(4, 350.0));
    // The tail node wanders toward the head and back while traffic flows:
    // routes churn, RouteAdd events accumulate, invariants must still hold.
    WaypointMover mover(scenario.simulator(), scenario.radio(3),
                        std::vector<phy::Position>{{400.0, 150.0},
                                                   {1050.0, 0.0}},
                        1.5, Duration::seconds(5));
    mover.start();
    run_and_check(scenario, sink, seed, "mobile_chain4");
    mover.stop();
  }
}

TEST(TraceInvariants, UnderChaos) {
  for (const std::uint64_t seed : {303ull, 404ull}) {
    VectorSink sink;
    Tracer tracer;
    tracer.attach(&sink);
    MeshScenario scenario(duty_limited_config(seed));
    scenario.attach_tracer(tracer);
    scenario.add_nodes(chain(5, 400.0));
    ChaosConfig chaos;
    chaos.mean_time_between_failures = Duration::minutes(4);
    chaos.min_outage = Duration::minutes(1);
    chaos.max_outage = Duration::minutes(5);
    chaos.min_alive = 3;
    chaos.protected_nodes = {0, 4};  // keep both traffic endpoints up
    ChaosMonkey monkey(scenario, chaos, seed ^ 0xC4A0);
    monkey.start();
    run_and_check(scenario, sink, seed, "chaos_chain5");
    monkey.stop();
  }
}

}  // namespace
}  // namespace lm::testbed
