// Golden-trace regression test.
//
// Runs the canonical traced chain scenario (tests/trace/trace_test_util.h)
// at a fixed seed and diffs the canonical trace rendering byte-for-byte
// against the checked-in golden file. Any behavioral change anywhere in the
// stack — routing metric, backoff policy, airtime rounding, queue order —
// shifts at least one event and flips this test.
//
// To regenerate after an intentional behavior change:
//   LM_UPDATE_GOLDEN=1 ./build/tests/test_trace
//       --gtest_filter='GoldenTrace.MatchesCheckedInGolden'
// then inspect the diff of tests/trace/golden/chain4_seed2022.trace and
// commit it alongside the change that explains it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/trace_analyzer.h"
#include "trace_test_util.h"

namespace lm::testbed {
namespace {

constexpr std::uint64_t kGoldenSeed = 2022;
const char* const kGoldenPath = LM_TRACE_GOLDEN_DIR "/chain4_seed2022.trace";

std::string capture_canonical() {
  return lm::trace::TraceAnalyzer::canonical_text(
      trace_test::capture_chain_trace(kGoldenSeed));
}

// First differing line between two multi-line strings, for a readable
// failure message instead of a megabyte of EXPECT_EQ dump.
std::string first_diff(const std::string& got, const std::string& want) {
  std::istringstream a(got), b(want);
  std::string la, lb;
  std::size_t line = 0;
  while (true) {
    const bool ha = static_cast<bool>(std::getline(a, la));
    const bool hb = static_cast<bool>(std::getline(b, lb));
    ++line;
    if (!ha && !hb) return "traces identical";
    if (la != lb || ha != hb) {
      return "line " + std::to_string(line) + ":\n  got:  " +
             (ha ? la : "<end of trace>") + "\n  want: " +
             (hb ? lb : "<end of golden>");
    }
  }
}

TEST(GoldenTrace, MatchesCheckedInGolden) {
  const std::string canonical = capture_canonical();
  ASSERT_FALSE(canonical.empty());

  if (std::getenv("LM_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(kGoldenPath, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << canonical;
    GTEST_SKIP() << "golden regenerated at " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden file " << kGoldenPath
      << " — regenerate with LM_UPDATE_GOLDEN=1 and commit it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  EXPECT_EQ(canonical.size(), golden.size());
  EXPECT_TRUE(canonical == golden) << first_diff(canonical, golden);
}

TEST(GoldenTrace, SameBinaryProducesIdenticalTraceTwice) {
  const std::string first = capture_canonical();
  const std::string second = capture_canonical();
  EXPECT_TRUE(first == second) << first_diff(second, first);
}

TEST(GoldenTrace, ScenarioExercisesTheFullLifecycle) {
  // Guard against the golden silently degenerating into a trivial trace:
  // the 4-node chain must show multi-hop forwarding, channel activity and
  // end-to-end deliveries.
  lm::trace::TraceAnalyzer analyzer(
      trace_test::capture_chain_trace(kGoldenSeed));
  EXPECT_GT(analyzer.events().size(), 100u);
  EXPECT_GT(analyzer.delivered_count(), 0u);
  bool saw_forward = false;
  bool saw_channel = false;
  for (const auto& e : analyzer.events()) {
    saw_forward |= e.kind == lm::trace::EventKind::Forward;
    saw_channel |= e.kind == lm::trace::EventKind::ChannelDeliver;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_channel);
}

}  // namespace
}  // namespace lm::testbed
