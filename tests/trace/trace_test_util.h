// Shared scenario recipe for the flight-recorder tests.
//
// The golden-trace test and the cross-thread determinism test must run the
// exact same simulation, so the recipe lives here: a 4-node chain with a
// deterministic link model (no shadowing/fading), converged before two-way
// Poisson datagram traffic runs for a fixed stretch of simulated time.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"
#include "trace/trace_event.h"
#include "trace/trace_sink.h"

namespace lm::testbed::trace_test {

/// Fully deterministic scenario config: log-distance path loss only, fast
/// hellos so convergence is quick, duty limiter disabled.
inline ScenarioConfig deterministic_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

/// Runs the canonical traced scenario: 4-node chain, convergence, then five
/// minutes of two-way traffic; returns every recorded event. A pure function
/// of `seed` — the determinism tests rely on that.
inline std::vector<lm::trace::TraceEvent> capture_chain_trace(
    std::uint64_t seed) {
  lm::trace::VectorSink sink;
  lm::trace::Tracer tracer;
  tracer.attach(&sink);

  MeshScenario scenario(deterministic_config(seed));
  scenario.attach_tracer(tracer);
  scenario.add_nodes(chain(4, 400.0));

  metrics::PacketTracker tracker;
  attach_tracker(scenario, tracker);
  scenario.start_all();
  scenario.run_until_converged(Duration::minutes(5));

  TrafficConfig traffic;
  traffic.mean_interval = Duration::seconds(15);
  DatagramTraffic forward(scenario, tracker, 0, 3, traffic, seed ^ 0xF00D);
  DatagramTraffic reverse(scenario, tracker, 3, 0, traffic, seed ^ 0xBEEF);
  forward.start();
  reverse.start();
  scenario.run_for(Duration::minutes(5));
  forward.stop();
  reverse.stop();

  return sink.take();
}

}  // namespace lm::testbed::trace_test
