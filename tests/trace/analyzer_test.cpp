// Unit tests for the trace layer itself: sinks, the canonical/JSONL
// renderers, journey reconstruction and every invariant checker, each
// exercised against small hand-built traces with known defects.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_analyzer.h"
#include "trace/trace_event.h"
#include "trace/trace_sink.h"

namespace lm::trace {
namespace {

TraceEvent make(EventKind kind, std::int64_t t_us, std::uint32_t node) {
  TraceEvent e;
  e.kind = kind;
  e.t_us = t_us;
  e.node = node;
  return e;
}

TraceEvent make_packet(EventKind kind, std::int64_t t_us, std::uint32_t node,
                       std::uint16_t origin, std::uint16_t packet_id,
                       std::uint8_t packet_type) {
  TraceEvent e = make(kind, t_us, node);
  e.origin = origin;
  e.packet_id = packet_id;
  e.packet_type = packet_type;
  return e;
}

constexpr std::uint8_t kDataType = 2;

// --- Sinks -----------------------------------------------------------------

TEST(Tracer, SilentWithoutSinkAndForwardsWithOne) {
  Tracer tracer;
  EXPECT_FALSE(tracer.on());
  tracer.emit(make(EventKind::NodeUp, 0, 1));  // must not crash

  VectorSink sink;
  tracer.attach(&sink);
  EXPECT_TRUE(tracer.on());
  tracer.emit(make(EventKind::NodeUp, 5, 1));
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].kind, EventKind::NodeUp);
  EXPECT_EQ(sink.events()[0].t_us, 5);

  tracer.attach(nullptr);
  tracer.emit(make(EventKind::NodeDown, 9, 1));
  EXPECT_EQ(sink.events().size(), 1u);
}

TEST(VectorSink, TakeMovesAndClearEmpties) {
  VectorSink sink;
  sink.record(make(EventKind::NodeUp, 1, 1));
  sink.record(make(EventKind::NodeDown, 2, 1));
  const auto taken = sink.take();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(sink.events().empty());
  sink.record(make(EventKind::NodeUp, 3, 1));
  sink.clear();
  EXPECT_TRUE(sink.events().empty());
}

TEST(RingSink, KeepsNewestAndCountsShed) {
  RingSink ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  for (std::int64_t t = 1; t <= 5; ++t) {
    ring.record(make(EventKind::NodeUp, t, 1));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto window = ring.snapshot();
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0].t_us, 3);  // oldest retained
  EXPECT_EQ(window[2].t_us, 5);  // newest
}

TEST(JsonlSink, WritesOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "lm_trace_jsonl_test.jsonl";
  {
    JsonlSink sink(path);
    ASSERT_TRUE(sink.ok());
    sink.record(make(EventKind::NodeUp, 1, 1));
    sink.record(make(EventKind::NodeDown, 2, 1));
    EXPECT_EQ(sink.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(JsonlSink, UnopenablePathIsInertNotFatal) {
  JsonlSink sink("/nonexistent-dir-for-lm-trace/x.jsonl");
  EXPECT_FALSE(sink.ok());
  sink.record(make(EventKind::NodeUp, 1, 1));  // must not crash
  EXPECT_EQ(sink.lines_written(), 0u);
}

// --- Renderers -------------------------------------------------------------

TEST(Renderers, CanonicalLineIsExactAndFloatFree) {
  TraceEvent e = make_packet(EventKind::Forward, 1234567, 2, 1, 42, kDataType);
  e.reason = DropReason::None;
  e.hops = 1;
  e.ttl = 15;
  e.final_dst = 4;
  e.via = 3;
  e.bytes = 27;
  e.tx_seq = 9;
  e.aux_us = 61696;
  e.value = 3.14159;  // must not appear in the canonical rendering
  EXPECT_EQ(canonical_line(e),
            "t=1234567 n=2 k=forward r=none pt=DATA o=1 d=4 id=42 via=3 h=1 "
            "ttl=15 b=27 seq=9 aux=61696");

  TraceEvent same_but_value = e;
  same_but_value.value = -99.5;
  EXPECT_EQ(canonical_line(e), canonical_line(same_but_value));
  EXPECT_NE(to_jsonl(e), to_jsonl(same_but_value));
}

TEST(Renderers, PacketTypeNamesMirrorNetPacketType) {
  EXPECT_EQ(packet_type_name(0), "-");
  EXPECT_EQ(packet_type_name(1), "ROUTING");
  EXPECT_EQ(packet_type_name(2), "DATA");
  EXPECT_EQ(packet_type_name(9), "ACKED_DATA");
  EXPECT_EQ(packet_type_name(10), "ACK");
  EXPECT_EQ(packet_type_name(77), "T77");
}

TEST(Renderers, JsonlCarriesKindReasonAndValue) {
  TraceEvent e = make(EventKind::ChannelDrop, 10, 3);
  e.reason = DropReason::Collision;
  e.value = -97.25;
  const std::string json = to_jsonl(e);
  EXPECT_NE(json.find("\"kind\":\"chan_drop\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"collision\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":-97.250"), std::string::npos);
}

// --- Journey reconstruction ------------------------------------------------

// A 2-hop synthetic journey: node 1 originates, node 2 forwards, node 3
// delivers. Channel events carry no identity; the analyzer must join them
// through the MeshTx -> TxStart same-node-same-time adjacency.
std::vector<TraceEvent> two_hop_journey() {
  std::vector<TraceEvent> t;
  t.push_back(make_packet(EventKind::AppSubmit, 0, 1, 1, 7, kDataType));
  t.push_back(make_packet(EventKind::Enqueue, 0, 1, 1, 7, kDataType));
  auto tx1 = make_packet(EventKind::MeshTx, 100, 1, 1, 7, kDataType);
  tx1.via = 2;
  t.push_back(tx1);
  auto start1 = make(EventKind::TxStart, 100, 1);
  start1.tx_seq = 1;
  t.push_back(start1);
  auto end1 = make(EventKind::TxEnd, 160, 1);
  end1.tx_seq = 1;
  t.push_back(end1);
  auto del1 = make(EventKind::ChannelDeliver, 160, 2);
  del1.tx_seq = 1;
  t.push_back(del1);
  t.push_back(make_packet(EventKind::RxFrame, 160, 2, 1, 7, kDataType));
  auto fwd = make_packet(EventKind::Forward, 160, 2, 1, 7, kDataType);
  fwd.hops = 1;
  t.push_back(fwd);
  auto tx2 = make_packet(EventKind::MeshTx, 300, 2, 1, 7, kDataType);
  tx2.hops = 1;
  tx2.via = 3;
  t.push_back(tx2);
  auto start2 = make(EventKind::TxStart, 300, 2);
  start2.tx_seq = 2;
  t.push_back(start2);
  auto end2 = make(EventKind::TxEnd, 360, 2);
  end2.tx_seq = 2;
  t.push_back(end2);
  auto del2 = make(EventKind::ChannelDeliver, 360, 3);
  del2.tx_seq = 2;
  t.push_back(del2);
  auto rx2 = make_packet(EventKind::RxFrame, 360, 3, 1, 7, kDataType);
  rx2.hops = 1;
  t.push_back(rx2);
  auto deliver = make_packet(EventKind::Deliver, 360, 3, 1, 7, kDataType);
  deliver.hops = 2;
  t.push_back(deliver);
  return t;
}

TEST(TraceAnalyzer, ReconstructsJourneyAcrossLayerBoundary) {
  TraceAnalyzer analyzer(two_hop_journey());
  ASSERT_EQ(analyzer.journeys().size(), 1u);
  const auto& [key, journey] = *analyzer.journeys().begin();
  EXPECT_EQ(key.origin, 1);
  EXPECT_EQ(key.packet_id, 7);
  EXPECT_EQ(key.packet_type, kDataType);
  EXPECT_TRUE(journey.delivered);
  // Every event — including the identity-less channel events of both hops —
  // lands in the one journey.
  EXPECT_EQ(journey.events.size(), analyzer.events().size());
  EXPECT_EQ(analyzer.delivered_count(), 1u);
}

TEST(TraceAnalyzer, CleanJourneySatisfiesAllInvariants) {
  TraceAnalyzer analyzer(two_hop_journey());
  InvariantOptions opts;
  opts.check_routes = false;  // synthetic trace has no RouteAdd events
  EXPECT_TRUE(analyzer.check_invariants(opts).empty());
}

TEST(TraceAnalyzer, LossAccountingByCause) {
  std::vector<TraceEvent> t;
  auto d1 = make_packet(EventKind::Drop, 1, 1, 1, 1, kDataType);
  d1.reason = DropReason::NoRoute;
  t.push_back(d1);
  auto d2 = make_packet(EventKind::Drop, 2, 1, 1, 2, kDataType);
  d2.reason = DropReason::NoRoute;
  t.push_back(d2);
  auto q = make_packet(EventKind::QueueDrop, 3, 1, 1, 3, kDataType);
  q.reason = DropReason::QueueFull;
  t.push_back(q);
  auto c = make(EventKind::ChannelDrop, 4, 2);
  c.reason = DropReason::Collision;
  t.push_back(c);
  auto culled = make(EventKind::ChannelDrop, 5, 0);
  culled.reason = DropReason::OutOfRange;
  culled.bytes = 7;  // bulk count from the spatial index
  t.push_back(culled);

  TraceAnalyzer analyzer(std::move(t));
  const auto mesh = analyzer.loss_by_cause();
  EXPECT_EQ(mesh.at(DropReason::NoRoute), 2u);
  EXPECT_EQ(mesh.at(DropReason::QueueFull), 1u);
  const auto chan = analyzer.channel_loss_by_cause();
  EXPECT_EQ(chan.at(DropReason::Collision), 1u);
  EXPECT_EQ(chan.at(DropReason::OutOfRange), 7u);

  const std::string table = analyzer.loss_table();
  EXPECT_NE(table.find("no_route"), std::string::npos);
  EXPECT_NE(table.find("out_of_range"), std::string::npos);
}

// --- Invariant violations on defective traces ------------------------------

TEST(Invariants, DetectsDoubleDelivery) {
  std::vector<TraceEvent> t;
  t.push_back(make_packet(EventKind::Deliver, 10, 3, 1, 7, kDataType));
  t.push_back(make_packet(EventKind::Deliver, 20, 3, 1, 7, kDataType));
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("double delivery"), std::string::npos);
}

TEST(Invariants, DetectsHopRegression) {
  std::vector<TraceEvent> t;
  auto a = make_packet(EventKind::RxFrame, 10, 2, 1, 7, kDataType);
  a.hops = 2;
  t.push_back(a);
  auto b = make_packet(EventKind::Forward, 20, 2, 1, 7, kDataType);
  b.hops = 1;  // went backwards
  t.push_back(b);
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("not monotone"), std::string::npos);
}

TEST(Invariants, DetectsTtlIncrease) {
  std::vector<TraceEvent> t;
  auto a = make_packet(EventKind::RxFrame, 10, 2, 1, 7, kDataType);
  a.ttl = 10;
  t.push_back(a);
  auto b = make_packet(EventKind::Forward, 20, 2, 1, 7, kDataType);
  b.ttl = 11;  // TTL must never grow
  t.push_back(b);
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  EXPECT_FALSE(analyzer.check_invariants(opts).empty());
}

TEST(Invariants, AckedDataRetriesAreExemptFromMonotonicity) {
  // An ARQ retry legitimately re-sends the same packet_id from hop 0.
  constexpr std::uint8_t kAckedDataType = 9;
  std::vector<TraceEvent> t;
  auto a = make_packet(EventKind::MeshTx, 10, 2, 1, 7, kAckedDataType);
  a.hops = 2;  // forwarder re-emitting the first attempt
  t.push_back(a);
  auto b = make_packet(EventKind::MeshTx, 20, 1, 1, 7, kAckedDataType);
  b.hops = 0;  // origin retry restarts at hop zero
  t.push_back(b);
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  EXPECT_TRUE(analyzer.check_invariants(opts).empty());
}

TEST(Invariants, DetectsDutyBudgetOverrun) {
  // limit 0.1 over a 1 s window = 100 ms budget; two 80 ms frames 100 ms
  // apart blow through it on the second emission.
  std::vector<TraceEvent> t;
  auto tx1 = make_packet(EventKind::MeshTx, 0, 1, 1, 1, kDataType);
  tx1.aux_us = 80000;
  t.push_back(tx1);
  auto tx2 = make_packet(EventKind::MeshTx, 100000, 1, 1, 2, kDataType);
  tx2.aux_us = 80000;
  t.push_back(tx2);
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  opts.duty_cycle_limit = 0.1;
  opts.duty_cycle_window = Duration::seconds(1);
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("duty budget exceeded"), std::string::npos);

  // The same trace is clean once the first frame has slid out of the window.
  std::vector<TraceEvent> spread = analyzer.events();
  spread[1].t_us = 1500000;
  TraceAnalyzer relaxed(std::move(spread));
  EXPECT_TRUE(relaxed.check_invariants(opts).empty());
}

TEST(Invariants, DetectsRxWithoutChannelDelivery) {
  std::vector<TraceEvent> t;
  t.push_back(make_packet(EventKind::RxFrame, 50, 2, 1, 7, kDataType));
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("without a channel delivery"),
            std::string::npos);
}

TEST(Invariants, DetectsDeliveryFromUnknownTransmission) {
  std::vector<TraceEvent> t;
  auto d = make(EventKind::ChannelDeliver, 50, 2);
  d.tx_seq = 42;  // never started
  t.push_back(d);
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("unknown tx_seq"), std::string::npos);
}

TEST(Invariants, DetectsDeliveryNotAtFrameEnd) {
  std::vector<TraceEvent> t;
  auto start = make(EventKind::TxStart, 0, 1);
  start.tx_seq = 1;
  t.push_back(start);
  auto end = make(EventKind::TxEnd, 100, 1);
  end.tx_seq = 1;
  t.push_back(end);
  auto d = make(EventKind::ChannelDeliver, 50, 2);  // mid-flight
  d.tx_seq = 1;
  t.push_back(d);
  TraceAnalyzer analyzer(std::move(t));
  InvariantOptions opts;
  opts.check_routes = false;
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("not at frame end"), std::string::npos);
}

TEST(Invariants, DetectsForwardViaRouteNeverHeld) {
  std::vector<TraceEvent> t;
  auto tx = make_packet(EventKind::MeshTx, 10, 2, 1, 7, kDataType);
  tx.final_dst = 4;
  tx.via = 3;
  t.push_back(tx);
  TraceAnalyzer analyzer(t);
  InvariantOptions opts;  // check_routes defaults to true
  const auto violations = analyzer.check_invariants(opts);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("never held that route"), std::string::npos);

  // Prepending the matching RouteAdd makes the same trace clean.
  auto add = make(EventKind::RouteAdd, 5, 2);
  add.final_dst = 4;
  add.via = 3;
  t.insert(t.begin(), add);
  TraceAnalyzer fixed(std::move(t));
  EXPECT_TRUE(fixed.check_invariants(opts).empty());
}

TEST(Invariants, CanonicalTextJoinsOneLinePerEvent) {
  const auto events = two_hop_journey();
  const std::string text = TraceAnalyzer::canonical_text(events);
  std::size_t lines = 0;
  for (const char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, events.size());
  EXPECT_EQ(text.rfind("t=0 n=1 k=app_submit", 0), 0u);  // starts the text
}

}  // namespace
}  // namespace lm::trace
