// ChaosMonkey lifecycle events in the flight recorder.
//
// Every injected failure must appear as exactly one NodeDown event and
// every recovery as one NodeUp (beyond the initial start_all batch), and
// replaying the trace must show the monkey's contract held: the network
// never dropped below min_alive running nodes and protected nodes were
// never killed.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "testbed/chaos.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "trace/trace_event.h"
#include "trace/trace_sink.h"
#include "trace_test_util.h"

namespace lm::testbed {
namespace {

using lm::trace::EventKind;

TEST(ChaosTrace, LifecycleEventsMatchMonkeyCounters) {
  constexpr std::size_t kNodes = 6;
  constexpr std::size_t kMinAlive = 3;

  lm::trace::VectorSink sink;
  lm::trace::Tracer tracer;
  tracer.attach(&sink);
  MeshScenario scenario(trace_test::deterministic_config(99));
  scenario.attach_tracer(tracer);
  scenario.add_nodes(chain(kNodes, 400.0));
  scenario.start_all();
  scenario.run_for(Duration::minutes(2));

  ChaosConfig config;
  config.mean_time_between_failures = Duration::minutes(2);
  config.min_outage = Duration::minutes(1);
  config.max_outage = Duration::minutes(4);
  config.min_alive = kMinAlive;
  config.protected_nodes = {0, kNodes - 1};
  ChaosMonkey monkey(scenario, config, 4242);
  monkey.start();
  scenario.run_for(Duration::hours(2));
  monkey.stop();

  // Addresses of the protected scenario indices (address = index + 1).
  const std::set<std::uint32_t> protected_addrs{
      scenario.address_of(0), scenario.address_of(kNodes - 1)};

  std::uint64_t ups = 0;
  std::uint64_t downs = 0;
  std::set<std::uint32_t> alive;
  for (const auto& e : sink.events()) {
    if (e.kind == EventKind::NodeUp) {
      ++ups;
      EXPECT_TRUE(alive.insert(e.node).second)
          << "node " << e.node << " came up twice without going down";
    } else if (e.kind == EventKind::NodeDown) {
      ++downs;
      EXPECT_FALSE(protected_addrs.contains(e.node))
          << "protected node " << e.node << " was killed";
      EXPECT_EQ(alive.erase(e.node), 1u)
          << "node " << e.node << " went down while already down";
      EXPECT_GE(alive.size(), kMinAlive)
          << "network dropped below min_alive at t=" << e.t_us;
    }
  }

  // Two hours at a 2-minute MTBF must have produced real churn.
  EXPECT_GT(monkey.failures_injected(), 5u);
  EXPECT_EQ(downs, monkey.failures_injected());
  EXPECT_EQ(ups, kNodes + monkey.recoveries());
}

}  // namespace
}  // namespace lm::testbed
