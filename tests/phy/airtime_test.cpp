#include "phy/airtime.h"

#include <gtest/gtest.h>

#include "phy/lora_params.h"
#include "support/assert.h"

namespace lm::phy {
namespace {

Modulation mod(SpreadingFactor sf, Bandwidth bw = Bandwidth::BW125,
               CodingRate cr = CodingRate::CR4_5) {
  Modulation m;
  m.sf = sf;
  m.bw = bw;
  m.cr = cr;
  return m;
}

TEST(Airtime, SymbolTimeMatchesDatasheet) {
  EXPECT_EQ(mod(SpreadingFactor::SF7).symbol_time().us(), 1024);
  EXPECT_EQ(mod(SpreadingFactor::SF12).symbol_time().us(), 32768);
  EXPECT_EQ(mod(SpreadingFactor::SF7, Bandwidth::BW250).symbol_time().us(), 512);
  EXPECT_EQ(mod(SpreadingFactor::SF7, Bandwidth::BW500).symbol_time().us(), 256);
}

// Anchor values computed with the Semtech AN1200.13 formula / airtime
// calculator (preamble 8, explicit header, CRC on, CR 4/5).
TEST(Airtime, SemtechReference10BytesSF7) {
  EXPECT_EQ(time_on_air(mod(SpreadingFactor::SF7), 10).us(), 41216);
}

TEST(Airtime, SemtechReference51BytesSF7) {
  EXPECT_EQ(time_on_air(mod(SpreadingFactor::SF7), 51).us(), 102656);
}

TEST(Airtime, SemtechReference51BytesSF12WithLdro) {
  // 2465.792 ms — the classic "51 bytes at SF12 takes ~2.5 s" number.
  EXPECT_EQ(time_on_air(mod(SpreadingFactor::SF12), 51).us(), 2465792);
}

TEST(Airtime, PreambleTimeIsProgrammedPlusSync) {
  // 8 + 4.25 symbols at SF7/125 kHz = 12.544 ms.
  EXPECT_EQ(preamble_time(mod(SpreadingFactor::SF7)).us(), 12544);
}

TEST(Airtime, LdroAppliesExactlyAtSf11Bw125AndUp) {
  EXPECT_FALSE(mod(SpreadingFactor::SF10).low_data_rate_optimize());
  EXPECT_TRUE(mod(SpreadingFactor::SF11).low_data_rate_optimize());
  EXPECT_TRUE(mod(SpreadingFactor::SF12).low_data_rate_optimize());
  // At 250 kHz the SF11 symbol is 8.192 ms — no LDRO.
  EXPECT_FALSE(mod(SpreadingFactor::SF11, Bandwidth::BW250).low_data_rate_optimize());
  EXPECT_TRUE(mod(SpreadingFactor::SF12, Bandwidth::BW250).low_data_rate_optimize());
}

TEST(Airtime, MonotonicInPayload) {
  const Modulation m = mod(SpreadingFactor::SF9);
  Duration last = Duration::zero();
  for (std::size_t bytes = 0; bytes <= kMaxPhyPayload; bytes += 5) {
    const Duration t = time_on_air(m, bytes);
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(Airtime, PayloadSymbolsQuantizedInCodewordBlocks) {
  // Payload symbols only grow in steps of (CR + 4) symbols.
  const Modulation m = mod(SpreadingFactor::SF7);
  std::size_t prev = payload_symbols(m, 0);
  for (std::size_t bytes = 1; bytes <= 100; ++bytes) {
    const std::size_t cur = payload_symbols(m, bytes);
    const std::size_t step = cur - prev;
    EXPECT_TRUE(step == 0 || step == 5) << "payload " << bytes;
    prev = cur;
  }
}

TEST(Airtime, HigherCodingRateNeverFaster) {
  for (std::size_t bytes : {10u, 100u, 255u}) {
    const Duration cr5 = time_on_air(mod(SpreadingFactor::SF8, Bandwidth::BW125,
                                         CodingRate::CR4_5), bytes);
    const Duration cr8 = time_on_air(mod(SpreadingFactor::SF8, Bandwidth::BW125,
                                         CodingRate::CR4_8), bytes);
    EXPECT_GE(cr8, cr5);
  }
}

TEST(Airtime, EachSfStepRoughlyDoublesAirtime) {
  const std::size_t bytes = 51;
  Duration prev = time_on_air(mod(SpreadingFactor::SF7), bytes);
  for (SpreadingFactor sf : {SpreadingFactor::SF8, SpreadingFactor::SF9,
                             SpreadingFactor::SF10, SpreadingFactor::SF11,
                             SpreadingFactor::SF12}) {
    const Duration cur = time_on_air(mod(sf), bytes);
    const double ratio = cur / prev;
    EXPECT_GT(ratio, 1.5);
    EXPECT_LT(ratio, 2.6);
    prev = cur;
  }
}

TEST(Airtime, WiderBandwidthScalesDown) {
  const Duration bw125 = time_on_air(mod(SpreadingFactor::SF7, Bandwidth::BW125), 51);
  const Duration bw250 = time_on_air(mod(SpreadingFactor::SF7, Bandwidth::BW250), 51);
  const Duration bw500 = time_on_air(mod(SpreadingFactor::SF7, Bandwidth::BW500), 51);
  EXPECT_EQ(bw125.us(), bw250.us() * 2);
  EXPECT_EQ(bw250.us(), bw500.us() * 2);
}

TEST(Airtime, ImplicitHeaderSavesSymbols) {
  Modulation explicit_hdr = mod(SpreadingFactor::SF7);
  Modulation implicit_hdr = explicit_hdr;
  implicit_hdr.explicit_header = false;
  EXPECT_LE(time_on_air(implicit_hdr, 20), time_on_air(explicit_hdr, 20));
}

TEST(Airtime, CrcCostsSymbols) {
  Modulation with_crc = mod(SpreadingFactor::SF7);
  Modulation no_crc = with_crc;
  no_crc.crc_on = false;
  EXPECT_LE(time_on_air(no_crc, 20), time_on_air(with_crc, 20));
}

TEST(Airtime, RejectsOversizedPayload) {
  EXPECT_THROW(time_on_air(mod(SpreadingFactor::SF7), kMaxPhyPayload + 1),
               ContractViolation);
}

TEST(Airtime, CadTimeIsAboutOneAndAHalfSymbols) {
  // ~1.9 ms at SF7/125 kHz per the SX1276 datasheet.
  const Duration t = cad_time(mod(SpreadingFactor::SF7));
  EXPECT_EQ(t.us(), 1536);
}

TEST(Airtime, MaxFrameStaysUnderHistoryHorizon) {
  // The channel keeps 15 s of transmission history for overlap checks; the
  // longest possible frame must fit comfortably.
  const Duration longest = time_on_air(
      mod(SpreadingFactor::SF12, Bandwidth::BW125, CodingRate::CR4_8), 255);
  // 14.03 s — anything at or above the radio::Channel 15 s history horizon
  // would let interference bookkeeping miss overlaps.
  EXPECT_LT(longest, Duration::seconds(15));
}

}  // namespace
}  // namespace lm::phy
