#include <gtest/gtest.h>

#include <cmath>

#include "phy/geometry.h"
#include "phy/lora_params.h"
#include "phy/path_loss.h"
#include "phy/reception.h"
#include "support/rng.h"
#include "support/stats.h"

namespace lm::phy {
namespace {

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance_m({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance_m({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_m({-2, 0}, {2, 0}), 4.0);
}

TEST(PathLoss, FreeSpaceAt1Km868MHz) {
  FreeSpacePathLoss pl(868e6);
  // Friis: 20 log10(4*pi*d*f/c) = 91.2 dB at 1 km.
  EXPECT_NEAR(pl.path_loss_db(1000.0), 91.2, 0.1);
}

TEST(PathLoss, FreeSpaceSlopeIs20DbPerDecade) {
  FreeSpacePathLoss pl(868e6);
  EXPECT_NEAR(pl.path_loss_db(10000.0) - pl.path_loss_db(1000.0), 20.0, 1e-9);
}

TEST(PathLoss, FreeSpaceClampsBelowOneMeter) {
  FreeSpacePathLoss pl(868e6);
  EXPECT_DOUBLE_EQ(pl.path_loss_db(0.0), pl.path_loss_db(1.0));
  EXPECT_DOUBLE_EQ(pl.path_loss_db(0.5), pl.path_loss_db(1.0));
}

TEST(PathLoss, LogDistanceReferencePoint) {
  LogDistancePathLoss pl(3.0, 40.0, 1.0);
  EXPECT_DOUBLE_EQ(pl.path_loss_db(1.0), 40.0);
}

TEST(PathLoss, LogDistanceSlopeMatchesExponent) {
  LogDistancePathLoss pl(3.0, 40.0, 1.0);
  EXPECT_NEAR(pl.path_loss_db(100.0) - pl.path_loss_db(10.0), 30.0, 1e-9);
  LogDistancePathLoss pl2(2.0, 40.0, 1.0);
  EXPECT_NEAR(pl2.path_loss_db(100.0) - pl2.path_loss_db(10.0), 20.0, 1e-9);
}

TEST(PathLoss, CampusModelGivesKilometerScaleSf7Range) {
  // Sanity: with the defaults (n=3, PL(1m)=40 dB) and 14 dBm TX, the RSSI
  // crosses SF7 sensitivity (-123 dBm) somewhere between 300 m and 5 km —
  // the range LoRa campus deployments actually observe.
  LogDistancePathLoss pl;
  const double rssi_300 = 14.0 - pl.path_loss_db(300.0);
  const double rssi_5k = 14.0 - pl.path_loss_db(5000.0);
  EXPECT_GT(rssi_300, sensitivity_dbm(SpreadingFactor::SF7, Bandwidth::BW125));
  EXPECT_LT(rssi_5k, sensitivity_dbm(SpreadingFactor::SF7, Bandwidth::BW125));
}

TEST(LoraParams, SensitivityOrdering) {
  // Higher SF hears deeper; wider BW hears less.
  double prev = 0.0;
  bool first = true;
  for (SpreadingFactor sf : {SpreadingFactor::SF7, SpreadingFactor::SF8,
                             SpreadingFactor::SF9, SpreadingFactor::SF10,
                             SpreadingFactor::SF11, SpreadingFactor::SF12}) {
    const double s = sensitivity_dbm(sf, Bandwidth::BW125);
    if (!first) EXPECT_LT(s, prev);
    prev = s;
    first = false;
    EXPECT_LT(sensitivity_dbm(sf, Bandwidth::BW125),
              sensitivity_dbm(sf, Bandwidth::BW500));
  }
  EXPECT_DOUBLE_EQ(sensitivity_dbm(SpreadingFactor::SF7, Bandwidth::BW125), -123.0);
  EXPECT_DOUBLE_EQ(sensitivity_dbm(SpreadingFactor::SF12, Bandwidth::BW125), -137.0);
}

TEST(LoraParams, SnrFloorsMatchDatasheet) {
  EXPECT_DOUBLE_EQ(snr_floor_db(SpreadingFactor::SF7), -7.5);
  EXPECT_DOUBLE_EQ(snr_floor_db(SpreadingFactor::SF12), -20.0);
  // 2.5 dB per SF step.
  EXPECT_DOUBLE_EQ(snr_floor_db(SpreadingFactor::SF9) -
                       snr_floor_db(SpreadingFactor::SF10), 2.5);
}

TEST(Reception, NoiseFloor125kHz) {
  // -174 + 10log10(125e3) + 6 = -117.03 dBm.
  EXPECT_NEAR(noise_floor_dbm(Bandwidth::BW125), -117.03, 0.01);
  EXPECT_NEAR(noise_floor_dbm(Bandwidth::BW500) - noise_floor_dbm(Bandwidth::BW125),
              6.02, 0.01);
}

TEST(Reception, SnrIsRssiMinusNoiseFloor) {
  EXPECT_NEAR(snr_db(-110.0, Bandwidth::BW125), 7.03, 0.01);
}

TEST(Reception, DecodeProbabilityWaterfall) {
  const SpreadingFactor sf = SpreadingFactor::SF7;
  const double floor = snr_floor_db(sf);
  EXPECT_NEAR(decode_probability(floor, sf), 0.5, 1e-9);
  EXPECT_GT(decode_probability(floor + 3.0, sf), 0.99);
  EXPECT_LT(decode_probability(floor - 3.0, sf), 0.01);
  // Strictly monotone.
  double prev = 0.0;
  for (double snr = floor - 10.0; snr <= floor + 10.0; snr += 0.5) {
    const double p = decode_probability(snr, sf);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Reception, SirThresholdDiagonalIsCapture) {
  for (SpreadingFactor sf : {SpreadingFactor::SF7, SpreadingFactor::SF9,
                             SpreadingFactor::SF12}) {
    EXPECT_DOUBLE_EQ(sir_threshold_db(sf, sf), 6.0);
  }
}

TEST(Reception, SirThresholdCrossSfIsRejection) {
  // Different SFs are quasi-orthogonal: the signal tolerates interferers
  // well above its own power (negative thresholds).
  for (SpreadingFactor a : {SpreadingFactor::SF7, SpreadingFactor::SF10}) {
    for (SpreadingFactor b : {SpreadingFactor::SF8, SpreadingFactor::SF12}) {
      if (a == b) continue;
      EXPECT_LT(sir_threshold_db(a, b), 0.0);
    }
  }
  // Higher-SF signals reject harder (Croce et al. trend).
  EXPECT_LT(sir_threshold_db(SpreadingFactor::SF12, SpreadingFactor::SF7),
            sir_threshold_db(SpreadingFactor::SF8, SpreadingFactor::SF7));
}

TEST(Reception, FadingZeroSigmaIsDeterministic) {
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(sample_fading_db(rng, 0.0), 0.0);
}

TEST(Reception, FadingSpreadMatchesSigma) {
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(sample_fading_db(rng, 2.0));
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Reception, DecodeSuccessRespectsSensitivity) {
  Rng rng(3);
  Modulation m;  // SF7/125
  // 40 dB above sensitivity: always decodes; 1 dB below: never.
  int ok_strong = 0, ok_weak = 0;
  for (int i = 0; i < 200; ++i) {
    if (decode_success(rng, -83.0, m)) ++ok_strong;
    if (decode_success(rng, -124.0, m)) ++ok_weak;
  }
  EXPECT_EQ(ok_strong, 200);
  EXPECT_EQ(ok_weak, 0);
}

TEST(Reception, DecodeSuccessGrayZone) {
  Rng rng(4);
  Modulation m;
  // At exactly sensitivity (-123 dBm), SNR is -5.97 dB — above the SF7 floor
  // of -7.5 dB by ~1.5 dB, so most frames decode but not all.
  int ok = 0;
  for (int i = 0; i < 2000; ++i) {
    if (decode_success(rng, -123.0, m)) ++ok;
  }
  EXPECT_GT(ok, 1500);
  EXPECT_LT(ok, 2000);
}

}  // namespace
}  // namespace lm::phy
