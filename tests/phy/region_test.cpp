#include "phy/region.h"

#include <gtest/gtest.h>

#include "phy/airtime.h"

namespace lm::phy {
namespace {

TEST(Region, Eu868DefaultChannelsSitInG1) {
  const RegionParams& eu = eu868();
  for (double f : eu.default_channels_hz) {
    const SubBand* band = sub_band_of(eu, f);
    ASSERT_NE(band, nullptr) << f;
    EXPECT_STREQ(band->name, "g1");
    EXPECT_DOUBLE_EQ(band->duty_cycle_limit, 0.01);
  }
}

TEST(Region, Eu868SubBandLimitsDiffer) {
  const RegionParams& eu = eu868();
  EXPECT_DOUBLE_EQ(duty_limit_at(eu, 868.1e6), 0.01);   // g1
  EXPECT_DOUBLE_EQ(duty_limit_at(eu, 869.0e6), 0.001);  // g2: 0.1 %
  EXPECT_DOUBLE_EQ(duty_limit_at(eu, 869.525e6), 0.10); // g3: 10 %, the
                                                        // high-power slot
  EXPECT_DOUBLE_EQ(duty_limit_at(eu, 700.0e6), 1.0);    // out of band
  EXPECT_EQ(sub_band_of(eu, 700.0e6), nullptr);
}

TEST(Region, Eu868HasNoDwellRule) {
  const Modulation slow{SpreadingFactor::SF12};
  EXPECT_TRUE(dwell_time_ok(eu868(), time_on_air(slow, 255)));
}

TEST(Region, Us915DwellLimitsHighSpreadingFactors) {
  const RegionParams& us = us915();
  EXPECT_DOUBLE_EQ(duty_limit_at(us, 902.3e6), 1.0);  // no duty rule

  // SF7 frames fit the 400 ms dwell; SF10+ frames of useful size do not —
  // which is exactly why US915 LoRaWAN uplinks stop at SF10 with tiny
  // payloads.
  Modulation sf7{SpreadingFactor::SF7};
  EXPECT_TRUE(dwell_time_ok(us, time_on_air(sf7, 242)));
  Modulation sf10{SpreadingFactor::SF10};
  EXPECT_FALSE(dwell_time_ok(us, time_on_air(sf10, 242)));
  EXPECT_TRUE(dwell_time_ok(us, time_on_air(sf10, 11)));
}

TEST(Region, BandEdgesAreHalfOpen) {
  const RegionParams& eu = eu868();
  EXPECT_STREQ(sub_band_of(eu, 868.0e6)->name, "g1");  // low edge inclusive
  EXPECT_EQ(sub_band_of(eu, 868.65e6), nullptr);       // gap between g1/g2
}

TEST(Region, PowerCeilings) {
  EXPECT_DOUBLE_EQ(sub_band_of(eu868(), 868.1e6)->max_erp_dbm, 14.0);
  EXPECT_DOUBLE_EQ(sub_band_of(eu868(), 869.5e6)->max_erp_dbm, 27.0);
  EXPECT_DOUBLE_EQ(sub_band_of(us915(), 903.0e6)->max_erp_dbm, 30.0);
}

}  // namespace
}  // namespace lm::phy
