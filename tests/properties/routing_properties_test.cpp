// Property tests for the routing table: invariants that must hold after
// ANY sequence of beacons and expirations, swept over random histories.
#include <gtest/gtest.h>

#include <set>

#include "net/routing_table.h"
#include "support/rng.h"

namespace lm::net {
namespace {

constexpr Address kSelf = 0x0042;

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

RoutingEntry random_entry(Rng& rng) {
  RoutingEntry e;
  // Small address pool so destinations collide and update paths trigger.
  e.address = static_cast<Address>(rng.uniform_int(0x0040, 0x0050));
  e.metric = static_cast<std::uint8_t>(rng.uniform_int(0, kInfiniteMetric + 2));
  e.role = static_cast<Role>(rng.uniform_int(0, 7));
  return e;
}

void check_invariants(const RoutingTable& t) {
  std::set<Address> seen;
  for (const RouteEntry& e : t.entries()) {
    // Never a route to ourselves or to reserved addresses.
    ASSERT_NE(e.destination, kSelf);
    ASSERT_NE(e.destination, kBroadcast);
    ASSERT_NE(e.destination, kUnassigned);
    ASSERT_NE(e.via, kBroadcast);
    ASSERT_NE(e.via, kUnassigned);
    // Metrics stay inside [1, kInfiniteMetric].
    ASSERT_GE(e.metric, 1);
    ASSERT_LE(e.metric, kInfiniteMetric);
    // Exactly one entry per destination.
    ASSERT_TRUE(seen.insert(e.destination).second);
    // Direct neighbors route through themselves.
    if (e.metric == 1) ASSERT_EQ(e.via, e.destination);
  }
  // route_to never returns an unusable (saturated) route.
  for (const RouteEntry& e : t.entries()) {
    const auto r = t.route_to(e.destination);
    if (r) ASSERT_LT(r->metric, kInfiniteMetric);
  }
}

TEST_P(RoutingProperty, InvariantsSurviveRandomBeaconHistories) {
  Rng rng(GetParam());
  RoutingTable t(kSelf, Duration::minutes(10));
  TimePoint now;
  for (int step = 0; step < 600; ++step) {
    now += Duration::seconds(rng.uniform_int(1, 120));
    if (rng.bernoulli(0.15)) {
      t.expire(now);
    } else {
      const auto neighbor = static_cast<Address>(rng.uniform_int(0x0040, 0x0050));
      if (neighbor == kSelf) continue;
      std::vector<RoutingEntry> entries;
      const auto n = rng.uniform_int(0, 6);
      for (std::int64_t i = 0; i < n; ++i) entries.push_back(random_entry(rng));
      t.apply_beacon(neighbor, entries, now);
    }
    check_invariants(t);
  }
  // Total silence eventually clears everything.
  t.expire(now + Duration::hours(1));
  EXPECT_EQ(t.size(), 0u);
}

TEST_P(RoutingProperty, AdvertisementIsWellFormed) {
  Rng rng(GetParam() ^ 0xAD);
  RoutingTable t(kSelf, Duration::minutes(10), kInfiniteMetric, roles::kSink);
  TimePoint now;
  for (int step = 0; step < 200; ++step) {
    now += Duration::seconds(30);
    const auto neighbor = static_cast<Address>(rng.uniform_int(0x0001, 0x0200));
    std::vector<RoutingEntry> entries;
    for (int i = 0; i < 4; ++i) {
      RoutingEntry e;
      e.address = static_cast<Address>(rng.uniform_int(0x0001, 0x0200));
      e.metric = static_cast<std::uint8_t>(rng.uniform_int(0, 10));
      entries.push_back(e);
    }
    if (neighbor != kSelf) t.apply_beacon(neighbor, entries, now);

    const auto adv = t.advertisement();
    ASSERT_LE(adv.size(), kMaxRoutingEntries);
    // Sorted by address, unique, and the metric-0 self entry survives any
    // truncation (it sorts first by metric).
    bool has_self = false;
    for (std::size_t i = 0; i < adv.size(); ++i) {
      if (i > 0) ASSERT_LT(adv[i - 1].address, adv[i].address);
      if (adv[i].address == kSelf) {
        has_self = true;
        ASSERT_EQ(adv[i].metric, 0);
        ASSERT_EQ(adv[i].role, roles::kSink);
      }
    }
    ASSERT_TRUE(has_self);
  }
}

TEST_P(RoutingProperty, TwoTablesExchangingBeaconsAgreeOnDistance) {
  // A micro-convergence property: if A hears B's table and vice versa
  // repeatedly (full exchange, no loss), their mutual metrics settle to 1
  // and shared destinations differ by at most 1 hop.
  Rng rng(GetParam() ^ 0x2B);
  RoutingTable a(0x00A0, Duration::minutes(10));
  RoutingTable b(0x00B0, Duration::minutes(10));
  TimePoint now;
  // Seed each with random third-party routes.
  for (int i = 0; i < 10; ++i) {
    now += Duration::seconds(1);
    a.apply_beacon(static_cast<Address>(0x0100 + i),
                   {random_entry(rng), random_entry(rng)}, now);
    b.apply_beacon(static_cast<Address>(0x0200 + i),
                   {random_entry(rng), random_entry(rng)}, now);
  }
  for (int round = 0; round < 4; ++round) {
    now += Duration::seconds(10);
    b.apply_beacon(0x00A0, a.advertisement(), now);
    a.apply_beacon(0x00B0, b.advertisement(), now);
  }
  ASSERT_EQ(a.route_to(0x00B0)->metric, 1);
  ASSERT_EQ(b.route_to(0x00A0)->metric, 1);
  for (const RouteEntry& e : a.entries()) {
    if (e.destination == 0x00B0) continue;
    const auto via_b = b.route_to(e.destination);
    if (via_b && a.route_to(e.destination)) {
      EXPECT_LE(std::abs(static_cast<int>(via_b->metric) -
                         static_cast<int>(e.metric)), 1)
          << "destination " << e.destination;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Values(10u, 11u, 12u, 13u, 14u, 15u));

}  // namespace
}  // namespace lm::net
