// Property tests for the packet codec.
//
// Two core properties, swept over seeded random inputs:
//  (1) decode() is total — arbitrary bytes never crash it; and when it does
//      accept a frame, re-encoding reproduces the input byte-for-byte
//      (the wire format is canonical: no hidden state, no aliasing).
//  (2) encode()/decode() round-trips every representable packet.
#include <gtest/gtest.h>

#include "net/packet.h"
#include "support/rng.h"

namespace lm::net {
namespace {

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len))));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

Address random_address(Rng& rng) {
  return static_cast<Address>(rng.uniform_int(0, 0xFFFF));
}

RouteHeader random_route(Rng& rng) {
  RouteHeader r;
  r.final_dst = random_address(rng);
  r.origin = random_address(rng);
  r.ttl = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  r.hops = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  r.packet_id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
  return r;
}

Packet random_packet(Rng& rng) {
  const int kind = static_cast<int>(rng.uniform_int(0, 9));
  switch (kind) {
    case 0: {
      RoutingPacket p;
      p.link = {kBroadcast, random_address(rng), PacketType::Routing};
      const auto n = rng.uniform_int(0, kMaxRoutingEntries);
      for (std::int64_t i = 0; i < n; ++i) {
        p.entries.push_back({random_address(rng),
                             static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                             static_cast<Role>(rng.uniform_int(0, 255))});
      }
      return Packet{std::move(p)};
    }
    case 1: {
      DataPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Data};
      p.route = random_route(rng);
      p.payload = random_bytes(rng, kMaxDataPayload);
      return Packet{std::move(p)};
    }
    case 2: {
      SyncPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Sync};
      p.route = random_route(rng);
      p.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      p.fragment_count = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
      p.total_bytes = static_cast<std::uint32_t>(rng.next_u64());
      return Packet{p};
    }
    case 3: {
      SyncAckPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::SyncAck};
      p.route = random_route(rng);
      p.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      return Packet{p};
    }
    case 4: {
      FragmentPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Fragment};
      p.route = random_route(rng);
      p.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      p.index = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
      p.payload = random_bytes(rng, kMaxFragmentPayload);
      return Packet{std::move(p)};
    }
    case 5: {
      LostPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Lost};
      p.route = random_route(rng);
      p.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      const auto n = rng.uniform_int(0, kMaxLostIndices);
      for (std::int64_t i = 0; i < n; ++i) {
        p.missing.push_back(static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF)));
      }
      return Packet{std::move(p)};
    }
    case 6: {
      DonePacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Done};
      p.route = random_route(rng);
      p.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      return Packet{p};
    }
    case 7: {
      PollPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Poll};
      p.route = random_route(rng);
      p.seq = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      return Packet{p};
    }
    case 8: {
      AckedDataPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::AckedData};
      p.route = random_route(rng);
      p.payload = random_bytes(rng, kMaxDataPayload);
      return Packet{std::move(p)};
    }
    default: {
      AckPacket p;
      p.link = {random_address(rng), random_address(rng), PacketType::Ack};
      p.route = random_route(rng);
      p.acked_id = static_cast<std::uint16_t>(rng.uniform_int(0, 0xFFFF));
      return Packet{p};
    }
  }
}

TEST_P(CodecProperty, DecodeIsTotalAndCanonical) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const auto frame = random_bytes(rng, 255);
    const auto decoded = decode(frame);  // must never crash or UB
    if (decoded) {
      // Accepted frames re-encode to exactly the bytes that arrived.
      EXPECT_EQ(encode(*decoded), frame);
      EXPECT_EQ(encoded_size(*decoded), frame.size());
    }
  }
}

TEST_P(CodecProperty, RandomPacketsRoundTrip) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 300; ++i) {
    const Packet original = random_packet(rng);
    const auto frame = encode(original);
    ASSERT_LE(frame.size(), 255u);
    const auto decoded = decode(frame);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, original);
    EXPECT_EQ(encoded_size(original), frame.size());
  }
}

TEST_P(CodecProperty, SingleByteMutationIsHandled) {
  Rng rng(GetParam() ^ 0xFACE);
  for (int i = 0; i < 200; ++i) {
    auto frame = encode(random_packet(rng));
    const std::size_t pos = rng.index(frame.size());
    frame[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto decoded = decode(frame);  // corruption must be survivable
    if (decoded) {
      EXPECT_EQ(encode(*decoded), frame);  // still canonical
    }
  }
}

TEST_P(CodecProperty, MultiByteMutationIsHandled) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int i = 0; i < 200; ++i) {
    auto frame = encode(random_packet(rng));
    const auto mutations = rng.uniform_int(1, 8);
    for (std::int64_t m = 0; m < mutations; ++m) {
      frame[rng.index(frame.size())] =
          static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto decoded = decode(frame);  // must survive arbitrary damage
    if (decoded) {
      EXPECT_EQ(encode(*decoded), frame);  // still canonical
    }
  }
}

TEST_P(CodecProperty, BitFlipFuzz) {
  Rng rng(GetParam() ^ 0x0B17);
  for (int i = 0; i < 200; ++i) {
    auto frame = encode(random_packet(rng));
    const auto flips = rng.uniform_int(1, 16);
    for (std::int64_t f = 0; f < flips; ++f) {
      frame[rng.index(frame.size())] ^=
          static_cast<std::uint8_t>(1u << rng.index(8));
    }
    const auto decoded = decode(frame);
    if (decoded) {
      EXPECT_EQ(encode(*decoded), frame);
      EXPECT_EQ(encoded_size(*decoded), frame.size());
    }
  }
}

TEST_P(CodecProperty, InsertAndDeleteFuzz) {
  // Length-changing damage: random insertions and deletions shift every
  // later field, so the decoder's length checks carry the whole weight.
  Rng rng(GetParam() ^ 0x1D31);
  for (int i = 0; i < 200; ++i) {
    auto frame = encode(random_packet(rng));
    const auto edits = rng.uniform_int(1, 4);
    for (std::int64_t e = 0; e < edits; ++e) {
      if (!frame.empty() && rng.bernoulli(0.5)) {
        frame.erase(frame.begin() +
                    static_cast<std::ptrdiff_t>(rng.index(frame.size())));
      } else {
        frame.insert(frame.begin() +
                         static_cast<std::ptrdiff_t>(rng.index(frame.size() + 1)),
                     static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
    }
    if (frame.size() > 255) frame.resize(255);
    const auto decoded = decode(frame);
    if (decoded) {
      EXPECT_EQ(encode(*decoded), frame);
    }
  }
}

TEST_P(CodecProperty, SplicedFramesNeverCrash) {
  // A frame assembled from the head of one packet and the tail of another —
  // the shape a mid-air capture race would produce.
  Rng rng(GetParam() ^ 0x5F11CE);
  for (int i = 0; i < 200; ++i) {
    const auto a = encode(random_packet(rng));
    const auto b = encode(random_packet(rng));
    std::vector<std::uint8_t> spliced(
        a.begin(), a.begin() + static_cast<std::ptrdiff_t>(rng.index(a.size() + 1)));
    const std::size_t tail = rng.index(b.size() + 1);
    spliced.insert(spliced.end(), b.end() - static_cast<std::ptrdiff_t>(tail),
                   b.end());
    if (spliced.size() > 255) spliced.resize(255);
    const auto decoded = decode(spliced);
    if (decoded) {
      EXPECT_EQ(encode(*decoded), spliced);
      EXPECT_EQ(encoded_size(*decoded), spliced.size());
    }
  }
}

TEST_P(CodecProperty, TruncationNeverCrashes) {
  Rng rng(GetParam() ^ 0xD00D);
  for (int i = 0; i < 200; ++i) {
    const auto frame = encode(random_packet(rng));
    const std::size_t keep = rng.index(frame.size() + 1);
    const std::vector<std::uint8_t> cut(frame.begin(),
                                        frame.begin() + static_cast<std::ptrdiff_t>(keep));
    const auto decoded = decode(cut);
    if (decoded) {
      EXPECT_EQ(encode(*decoded), cut);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace lm::net
