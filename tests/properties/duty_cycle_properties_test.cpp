// Property tests for the duty-cycle limiter: under ANY admissible schedule
// the accounted airtime never exceeds the regulatory budget, and
// next_allowed() is exact (admits at that instant, not a microsecond
// before).
#include <gtest/gtest.h>

#include "net/duty_cycle.h"
#include "support/rng.h"

namespace lm::net {
namespace {

class DutyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DutyProperty, BudgetNeverExceededUnderDeferringSender) {
  Rng rng(GetParam());
  DutyCycleLimiter limiter(0.01, Duration::hours(1));
  TimePoint now;
  for (int i = 0; i < 2000; ++i) {
    now += Duration::milliseconds(rng.uniform_int(0, 120'000));
    const Duration airtime = Duration::milliseconds(rng.uniform_int(5, 3000));
    // Sender policy: wait until allowed, then transmit.
    const TimePoint when = limiter.next_allowed(now, airtime);
    ASSERT_GE(when, now);
    ASSERT_TRUE(limiter.allowed(when, airtime));
    limiter.record(when, airtime);
    now = when;
    // Regulatory invariant at the admit instant.
    ASSERT_LE(limiter.consumed(now).us(),
              limiter.budget().us());
    ASSERT_LE(limiter.utilization(now), 0.01 + 1e-12);
  }
}

TEST_P(DutyProperty, NextAllowedIsTight) {
  Rng rng(GetParam() ^ 0x77);
  DutyCycleLimiter limiter(0.05, Duration::minutes(10));
  TimePoint now;
  for (int i = 0; i < 500; ++i) {
    now += Duration::milliseconds(rng.uniform_int(0, 60'000));
    const Duration airtime = Duration::milliseconds(rng.uniform_int(10, 5000));
    const TimePoint when = limiter.next_allowed(now, airtime);
    if (when > now) {
      // One microsecond earlier must NOT be allowed: tightness.
      ASSERT_FALSE(limiter.allowed(when - Duration::microseconds(1), airtime));
    }
    ASSERT_TRUE(limiter.allowed(when, airtime));
    limiter.record(when, airtime);
    now = when;
  }
}

TEST_P(DutyProperty, GreedySenderThroughputApproachesTheLimit) {
  // A sender that always transmits as early as permitted achieves (almost)
  // exactly the configured duty fraction over long horizons.
  Rng rng(GetParam() ^ 0x99);
  DutyCycleLimiter limiter(0.01, Duration::hours(1));
  TimePoint now;
  Duration spent = Duration::zero();
  const Duration frame = Duration::milliseconds(400);  // ~255 B at SF7
  while (now < TimePoint::origin() + Duration::hours(48)) {
    const TimePoint when = limiter.next_allowed(now, frame);
    limiter.record(when, frame);
    spent += frame;
    now = when + frame;
  }
  const double fraction = spent.seconds_d() / (48.0 * 3600.0);
  EXPECT_GT(fraction, 0.0095);
  EXPECT_LE(fraction, 0.0101);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DutyProperty,
                         ::testing::Values(21u, 22u, 23u, 24u));

}  // namespace
}  // namespace lm::net
