// End-to-end property sweeps: the protocol invariants that must hold for
// every seed — convergence on clean chains, payload integrity through
// relays, reliable-transfer correctness across a (payload x loss) grid,
// and resilience to on-air garbage.
#include <gtest/gtest.h>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "support/assert.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;
using testbed::ScenarioConfig;

constexpr double kSpacing = 400.0;

ScenarioConfig sweep_config(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  c.mesh.reliable_retry_timeout = Duration::seconds(8);
  c.mesh.receiver_gap_timeout = Duration::seconds(10);
  c.mesh.fragment_spacing = Duration::milliseconds(50);
  c.mesh.sync_max_retries = 10;
  c.mesh.poll_max_retries = 15;
  return c;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CleanChainAlwaysConvergesToExactMetrics) {
  MeshScenario s(sweep_config(GetParam()));
  s.add_nodes(testbed::chain(5, kSpacing));
  s.start_all();
  const auto elapsed = s.run_until_converged(Duration::minutes(10));
  ASSERT_TRUE(elapsed.has_value()) << "seed " << GetParam();
  // And stays converged: the protocol must not oscillate.
  for (int probe = 0; probe < 5; ++probe) {
    s.run_for(Duration::minutes(1));
    EXPECT_TRUE(s.converged()) << "seed " << GetParam() << " probe " << probe;
  }
}

TEST_P(SeedSweep, RelayedPayloadsArriveBitExact) {
  MeshScenario s(sweep_config(GetParam() ^ 0x1111));
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());

  Rng rng(GetParam());
  std::vector<std::vector<std::uint8_t>> received;
  s.node(3).set_datagram_handler(
      [&](Address origin, const std::vector<std::uint8_t>& payload, std::uint8_t) {
        EXPECT_EQ(origin, s.address_of(0));
        received.push_back(payload);
      });

  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < 10; ++i) {
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(1, kMaxDataPayload)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    if (s.node(0).send_datagram(s.address_of(3), payload)) {
      sent.push_back(std::move(payload));
    }
    s.run_for(Duration::seconds(8));
  }
  s.run_for(Duration::seconds(20));
  // Every payload that arrived must match a sent one, in order (FIFO path,
  // single flow — losses shorten the list but never reorder or corrupt).
  ASSERT_LE(received.size(), sent.size());
  std::size_t cursor = 0;
  for (const auto& got : received) {
    bool matched = false;
    while (cursor < sent.size()) {
      if (sent[cursor++] == got) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "unmatched or reordered payload, seed " << GetParam();
  }
}

TEST_P(SeedSweep, MeshSurvivesGarbageStorm) {
  MeshScenario s(sweep_config(GetParam() ^ 0x2222));
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());

  // A rogue transmitter floods random frames from the middle of the mesh.
  radio::VirtualRadio rogue(s.simulator(), s.channel(), 99, {kSpacing, 50.0}, {});
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.uniform_int(1, 255)));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    s.simulator().schedule_after(Duration::from_seconds(rng.uniform(0.0, 60.0)),
                                 [&rogue, junk = std::move(junk)]() mutable {
                                   rogue.transmit(std::move(junk));
                                 });
  }
  s.run_for(Duration::minutes(2));

  // The mesh still routes once the storm passes.
  int delivered = 0;
  s.node(2).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    s.node(0).send_datagram(s.address_of(2), {1, 2, 3});
    s.run_for(Duration::seconds(10));
  }
  EXPECT_GE(delivered, 4) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

// --- Reliable transfer grid ---------------------------------------------------

struct TransferCase {
  std::size_t payload_bytes;
  double loss;
};

class TransferGrid : public ::testing::TestWithParam<TransferCase> {};

TEST_P(TransferGrid, CompletesBitExact) {
  const TransferCase param = GetParam();
  MeshScenario s(sweep_config(7000 + param.payload_bytes));
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());
  s.channel().set_link_extra_loss(1, 2, param.loss);
  s.channel().set_link_extra_loss(2, 3, param.loss);

  std::vector<std::uint8_t> payload(param.payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  std::vector<std::uint8_t> received;
  s.node(2).set_reliable_handler(
      [&](Address, std::vector<std::uint8_t> data) { received = std::move(data); });
  int outcome = -1;
  ASSERT_TRUE(s.node(0).send_reliable(s.address_of(2), payload,
                                      [&](bool ok) { outcome = ok ? 1 : 0; }));
  const TimePoint start = s.simulator().now();
  while (outcome == -1 &&
         s.simulator().now() - start < Duration::hours(2)) {
    s.run_for(Duration::seconds(10));
  }
  EXPECT_EQ(outcome, 1) << param.payload_bytes << " B at " << param.loss;
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(
    PayloadByLoss, TransferGrid,
    ::testing::Values(TransferCase{100, 0.0}, TransferCase{100, 0.25},
                      TransferCase{1000, 0.0}, TransferCase{1000, 0.15},
                      TransferCase{5000, 0.0}, TransferCase{5000, 0.15},
                      TransferCase{5000, 0.3}, TransferCase{240, 0.1},
                      TransferCase{239, 0.0}, TransferCase{478, 0.1}),
    [](const ::testing::TestParamInfo<TransferCase>& info) {
      return std::to_string(info.param.payload_bytes) + "B_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

}  // namespace
}  // namespace lm::net
