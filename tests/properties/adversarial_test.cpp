// Adversarial protocol inputs: syntactically valid but hostile packets
// injected by a rogue radio. The node must not crash, must keep its state
// bounded, and must keep serving legitimate traffic.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;

testbed::ScenarioConfig cfg(std::uint64_t seed) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  c.mesh.receiver_session_timeout = Duration::minutes(2);
  return c;
}

class Rogue {
 public:
  Rogue(MeshScenario& s, phy::Position pos)
      : radio_(s.simulator(), s.channel(), 66, pos, {}) {}

  /// Transmits an encoded mesh packet when the radio is free.
  bool inject(const Packet& p) { return radio_.transmit(encode(p)); }

  radio::VirtualRadio radio_;
};

TEST(Adversarial, SyncFloodHitsTheSessionCap) {
  MeshScenario s(cfg(1));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));

  Rogue rogue(s, {200.0, 0.0});
  // Spray SYNCs with fresh (origin, seq) pairs, addressed to node 0.
  for (int i = 0; i < 40; ++i) {
    SyncPacket p;
    p.link = LinkHeader{s.address_of(0), static_cast<Address>(0x4000 + i),
                        PacketType::Sync};
    p.route.final_dst = s.address_of(0);
    p.route.origin = static_cast<Address>(0x4000 + i);
    p.route.ttl = 4;
    p.seq = static_cast<std::uint8_t>(i);
    p.fragment_count = 1000;  // each session would buffer a lot
    p.total_bytes = 1000u * kMaxFragmentPayload;
    s.simulator().schedule_after(Duration::seconds(2 * i + 1), [&rogue, p] {
      rogue.inject(Packet{p});
    });
  }
  s.run_for(Duration::minutes(3));

  const auto& st = s.node(0).stats();
  EXPECT_GT(st.rx_sessions_rejected, 0u);
  // The cap held: accepted sessions <= max; rejected + accepted ~= injected.
  EXPECT_LE(40u - st.rx_sessions_rejected,
            s.node(0).config().max_rx_sessions + 2);
}

TEST(Adversarial, SessionSlotsRecycleAfterExpiry) {
  auto c = cfg(2);
  c.mesh.receiver_session_timeout = Duration::seconds(30);
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));

  Rogue rogue(s, {200.0, 0.0});
  auto spray = [&](int base) {
    for (int i = 0; i < 10; ++i) {
      SyncPacket p;
      p.link = LinkHeader{s.address_of(0),
                          static_cast<Address>(0x5000 + base + i), PacketType::Sync};
      p.route.final_dst = s.address_of(0);
      p.route.origin = static_cast<Address>(0x5000 + base + i);
      p.route.ttl = 4;
      p.seq = 1;
      p.fragment_count = 10;
      s.simulator().schedule_after(Duration::seconds(2 * i + 1), [&rogue, p] {
        rogue.inject(Packet{p});
      });
    }
  };
  spray(0);
  s.run_for(Duration::minutes(2));  // sessions expire (30 s timeout)
  const auto rejected_first = s.node(0).stats().rx_sessions_rejected;
  spray(100);
  s.run_for(Duration::minutes(2));
  // The second wave found recycled slots: rejections grew by less than a
  // full wave.
  EXPECT_LT(s.node(0).stats().rx_sessions_rejected - rejected_first, 10u);
}

TEST(Adversarial, StaleControlPacketsAreIgnored) {
  MeshScenario s(cfg(3));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));

  Rogue rogue(s, {200.0, 0.0});
  // SYNC_ACK / LOST / DONE / POLL for transfers that never existed.
  int offset = 1;
  for (PacketType t : {PacketType::SyncAck, PacketType::Lost, PacketType::Done,
                       PacketType::Poll}) {
    Packet p = [&]() -> Packet {
      switch (t) {
        case PacketType::SyncAck: {
          SyncAckPacket q;
          q.seq = 9;
          return Packet{q};
        }
        case PacketType::Lost: {
          LostPacket q;
          q.seq = 9;
          q.missing = {1, 2, 3};
          return Packet{q};
        }
        case PacketType::Done: {
          DonePacket q;
          q.seq = 9;
          return Packet{q};
        }
        default: {
          PollPacket q;
          q.seq = 9;
          return Packet{q};
        }
      }
    }();
    link_of(p) = LinkHeader{s.address_of(0), 0x6666, t};
    route_of(p)->final_dst = s.address_of(0);
    route_of(p)->origin = 0x6666;
    route_of(p)->ttl = 4;
    s.simulator().schedule_after(Duration::seconds(offset), [&rogue, p] {
      rogue.inject(p);
    });
    offset += 2;
  }
  s.run_for(Duration::minutes(1));
  // Nothing crashed, nothing was created.
  EXPECT_EQ(s.node(0).stats().transfers_received, 0u);
  EXPECT_EQ(s.node(0).stats().transfers_started, 0u);
}

TEST(Adversarial, PoisonedRoutingAdvertisementsAreFiltered) {
  MeshScenario s(cfg(4));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));

  Rogue rogue(s, {200.0, 0.0});
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, 0x6666, PacketType::Routing};
  p.entries = {
      {kBroadcast, 1, roles::kNone},     // reserved address
      {kUnassigned, 1, roles::kNone},    // reserved address
      {s.address_of(0), 1, roles::kNone},  // the victim itself
      {0x7777, 0, roles::kGateway},      // fake metric-0 identity claim
      {0x8888, kInfiniteMetric, roles::kNone},  // unreachable
  };
  rogue.inject(Packet{std::move(p)});
  s.run_for(Duration::seconds(10));

  const RoutingTable& t = s.node(0).routing_table();
  EXPECT_FALSE(t.has_route(kBroadcast));
  EXPECT_FALSE(t.has_route(s.address_of(0)));
  EXPECT_FALSE(t.has_route(0x7777));  // zero-metric spoof rejected
  EXPECT_FALSE(t.has_route(0x8888));
  // The rogue itself is learned as a neighbor — it did transmit a beacon.
  EXPECT_TRUE(t.has_route(0x6666));
}

TEST(Adversarial, BlackholeAttackSucceedsWithoutAuthentication) {
  // Documented limitation, asserted so it stays documented: the prototype
  // has no authentication, so a malicious node advertising short routes to
  // everything ("blackhole") attracts and swallows traffic. A deployment
  // needing integrity must add signing above this layer.
  MeshScenario s(cfg(6));
  s.add_nodes(testbed::chain(4, 400.0));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  // Rogue next to node 0 claims to be 1 hop from everything.
  Rogue rogue(s, {50.0, 50.0});
  RoutingPacket lure;
  lure.link = LinkHeader{kBroadcast, 0x0666, PacketType::Routing};
  for (std::size_t i = 1; i < s.size(); ++i) {
    lure.entries.push_back({s.address_of(i), 1});
  }
  for (int i = 0; i < 5; ++i) {
    s.simulator().schedule_after(Duration::seconds(10 * i + 1), [&rogue, lure] {
      rogue.inject(Packet{lure});
    });
  }
  s.run_for(Duration::minutes(1));

  // Node 0 now routes to the far end via the rogue (metric 2 beats 3)...
  const auto route = s.node(0).routing_table().route_to(s.address_of(3));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->via, 0x0666);

  // ...and its traffic disappears (the rogue never forwards).
  int delivered = 0;
  s.node(3).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++delivered;
      });
  for (int i = 0; i < 5; ++i) {
    s.node(0).send_datagram(s.address_of(3), {1});
    s.run_for(Duration::seconds(5));
  }
  EXPECT_EQ(delivered, 0);
}

TEST(Adversarial, TtlZeroAndMaxForwardingExtremes) {
  MeshScenario s(cfg(5));
  s.add_nodes(testbed::chain(3, 400.0));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  Rogue rogue(s, {400.0, 100.0});  // next to the middle relay
  int delivered = 0;
  s.node(2).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++delivered;
      });

  // TTL 0 and TTL 1 packets needing a forward: relay must drop both.
  for (std::uint8_t ttl : {std::uint8_t{0}, std::uint8_t{1}}) {
    DataPacket p;
    p.link = LinkHeader{s.address_of(1), 0x6666, PacketType::Data};
    p.route.final_dst = s.address_of(2);
    p.route.origin = 0x6666;
    p.route.ttl = ttl;
    p.payload = {1};
    rogue.inject(Packet{std::move(p)});
    s.run_for(Duration::seconds(5));
  }
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(s.node(1).stats().dropped_ttl, 2u);

  // TTL 255 is legal and must not wrap anything.
  DataPacket p;
  p.link = LinkHeader{s.address_of(1), 0x6666, PacketType::Data};
  p.route.final_dst = s.address_of(2);
  p.route.origin = 0x6666;
  p.route.ttl = 255;
  p.payload = {2};
  rogue.inject(Packet{std::move(p)});
  s.run_for(Duration::seconds(5));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace lm::net
