// MeshNode against a hand-rolled Radio implementation — no Channel, no
// propagation, no VirtualRadio. This is the hardware-binding proof: the
// protocol stack runs against anything honoring radio_interface.h, and a
// test can script the medium frame by frame.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/airtime.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"

namespace lm::net {
namespace {

/// A scripted radio: transmissions are captured (completing after the real
/// airtime), CAD always reports a clear channel, and the test injects
/// inbound frames directly.
class MockRadio final : public radio::Radio {
 public:
  explicit MockRadio(sim::Simulator& sim) : sim_(sim) {}

  void set_listener(radio::RadioListener* listener) override {
    listener_ = listener;
  }
  void start_receive() override { state_ = radio::RadioState::Rx; }
  void standby() override { state_ = radio::RadioState::Standby; }
  void sleep() override { state_ = radio::RadioState::Sleep; }

  bool transmit(std::vector<std::uint8_t> frame) override {
    if (state_ == radio::RadioState::Tx || state_ == radio::RadioState::Cad ||
        state_ == radio::RadioState::Sleep) {
      return false;
    }
    state_ = radio::RadioState::Tx;
    transmitted.push_back(frame);
    sim_.schedule_after(phy::time_on_air(modulation_, frame.size()), [this] {
      state_ = radio::RadioState::Standby;
      if (listener_ != nullptr) listener_->on_tx_done();
    });
    return true;
  }

  bool start_cad() override {
    if (state_ == radio::RadioState::Tx || state_ == radio::RadioState::Cad ||
        state_ == radio::RadioState::Sleep) {
      return false;
    }
    state_ = radio::RadioState::Cad;
    cad_runs++;
    sim_.schedule_after(phy::cad_time(modulation_), [this] {
      state_ = radio::RadioState::Standby;
      if (listener_ != nullptr) listener_->on_cad_done(false);
    });
    return true;
  }

  bool medium_busy() const override { return false; }
  radio::RadioState state() const override { return state_; }
  const phy::Modulation& modulation() const override { return modulation_; }

  /// Test hook: a frame arrives off the air.
  void inject(const Packet& packet, double rssi = -80.0, double snr = 10.0) {
    ASSERT_EQ(state_, radio::RadioState::Rx);  // node must be listening
    radio::FrameMeta meta;
    meta.rssi_dbm = rssi;
    meta.snr_db = snr;
    meta.end = sim_.now();
    listener_->on_frame_received(encode(packet), meta);
  }

  std::vector<std::vector<std::uint8_t>> transmitted;
  int cad_runs = 0;

 private:
  sim::Simulator& sim_;
  radio::RadioListener* listener_ = nullptr;
  radio::RadioState state_ = radio::RadioState::Standby;
  phy::Modulation modulation_;
};

class MockRadioTest : public ::testing::Test {
 protected:
  MockRadioTest() {
    MeshConfig cfg;
    cfg.hello_interval = Duration::seconds(10);
    cfg.duty_cycle_limit = 1.0;
    node_ = std::make_unique<MeshNode>(sim_, radio_, 0x0001, cfg, 42);
    node_->start();
  }

  /// Decoded view of everything the node put on the air.
  std::vector<Packet> decoded_tx() {
    std::vector<Packet> out;
    for (const auto& frame : radio_.transmitted) {
      auto p = decode(frame);
      if (p) out.push_back(std::move(*p));
    }
    return out;
  }

  sim::Simulator sim_;
  MockRadio radio_{sim_};
  std::unique_ptr<MeshNode> node_;
};

TEST_F(MockRadioTest, BeaconsFlowThroughTheInterface) {
  sim_.run_for(Duration::seconds(25));
  const auto tx = decoded_tx();
  ASSERT_GE(tx.size(), 2u);
  for (const auto& p : tx) {
    EXPECT_EQ(link_of(p).type, PacketType::Routing);
    EXPECT_EQ(link_of(p).src, 0x0001);
  }
  EXPECT_GT(radio_.cad_runs, 0);  // CSMA ran before each
}

TEST_F(MockRadioTest, InjectedBeaconBuildsRoutes) {
  RoutingPacket beacon;
  beacon.link = LinkHeader{kBroadcast, 0x0002, PacketType::Routing};
  beacon.entries = {{0x0002, 0, roles::kGateway}, {0x0003, 1, roles::kNone}};
  radio_.inject(Packet{beacon});

  EXPECT_TRUE(node_->routing_table().has_route(0x0002));
  EXPECT_TRUE(node_->routing_table().has_route(0x0003));
  EXPECT_EQ(node_->routing_table().route_to(0x0003)->metric, 2);
  EXPECT_EQ(node_->nearest_with_role(roles::kGateway)->destination, 0x0002);
  EXPECT_NEAR(*node_->neighbor_snr_margin_db(0x0002), 17.5, 1e-9);
}

TEST_F(MockRadioTest, DatagramGoesOutAddressedToTheNextHop) {
  RoutingPacket beacon;
  beacon.link = LinkHeader{kBroadcast, 0x0002, PacketType::Routing};
  beacon.entries = {{0x0002, 0}, {0x0003, 1}};
  radio_.inject(Packet{beacon});

  ASSERT_TRUE(node_->send_datagram(0x0003, {1, 2, 3}));
  sim_.run_for(Duration::seconds(2));

  bool found = false;
  for (const auto& p : decoded_tx()) {
    const auto* data = std::get_if<DataPacket>(&p);
    if (data == nullptr) continue;
    found = true;
    EXPECT_EQ(data->link.dst, 0x0002);        // next hop
    EXPECT_EQ(data->route.final_dst, 0x0003); // end-to-end
    EXPECT_EQ(data->payload, (std::vector<std::uint8_t>{1, 2, 3}));
  }
  EXPECT_TRUE(found);
}

TEST_F(MockRadioTest, InboundDataForUsReachesTheHandler) {
  std::vector<std::uint8_t> got;
  node_->set_datagram_handler(
      [&](Address origin, const std::vector<std::uint8_t>& p, std::uint8_t) {
        EXPECT_EQ(origin, 0x0005);
        got = p;
      });
  DataPacket data;
  data.link = LinkHeader{0x0001, 0x0002, PacketType::Data};
  data.route.final_dst = 0x0001;
  data.route.origin = 0x0005;
  data.route.ttl = 3;
  data.payload = {7, 8};
  radio_.inject(Packet{data});
  EXPECT_EQ(got, (std::vector<std::uint8_t>{7, 8}));
}

TEST_F(MockRadioTest, AckedDataDrawsAnAckThroughTheInterface) {
  RoutingPacket beacon;  // learn a route back to the origin
  beacon.link = LinkHeader{kBroadcast, 0x0002, PacketType::Routing};
  beacon.entries = {{0x0002, 0}, {0x0005, 1}};
  radio_.inject(Packet{beacon});

  AckedDataPacket data;
  data.link = LinkHeader{0x0001, 0x0002, PacketType::AckedData};
  data.route.final_dst = 0x0001;
  data.route.origin = 0x0005;
  data.route.ttl = 3;
  data.route.packet_id = 99;
  data.payload = {1};
  radio_.inject(Packet{data});
  sim_.run_for(Duration::seconds(2));

  bool acked = false;
  for (const auto& p : decoded_tx()) {
    if (const auto* ack = std::get_if<AckPacket>(&p)) {
      acked = true;
      EXPECT_EQ(ack->acked_id, 99);
      EXPECT_EQ(ack->route.final_dst, 0x0005);
      EXPECT_EQ(ack->link.dst, 0x0002);  // via the learned next hop
    }
  }
  EXPECT_TRUE(acked);
}

}  // namespace
}  // namespace lm::net
