// US915-style dwell-time enforcement: with max_dwell_time set, no frame a
// node originates may exceed the per-transmission airtime cap — datagram
// MTUs shrink, reliable transfers use smaller fragments, and beacons trim.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/airtime.h"
#include "phy/path_loss.h"
#include "phy/region.h"
#include "support/assert.h"
#include "testbed/scenario.h"
#include "testbed/sniffer.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;

testbed::ScenarioConfig dwell_config(phy::SpreadingFactor sf,
                                     Duration dwell, std::uint64_t seed = 3) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.radio.modulation.sf = sf;
  c.mesh.hello_interval = Duration::seconds(20);
  c.mesh.duty_cycle_limit = 1.0;
  c.mesh.max_dwell_time = dwell;
  c.mesh.fragment_spacing = Duration::milliseconds(20);
  c.mesh.reliable_retry_timeout = Duration::seconds(8);
  c.mesh.receiver_gap_timeout = Duration::seconds(10);
  return c;
}

// Nodes must sit closer at SF10 spacing irrelevant — 400 m still decodes.
constexpr double kSpacing = 400.0;
const Duration kFccDwell = Duration::milliseconds(400);

TEST(DwellTime, MtuShrinksWithTheCap) {
  MeshScenario s(dwell_config(phy::SpreadingFactor::SF10, kFccDwell));
  s.add_nodes(testbed::chain(2, kSpacing));
  // At SF10/125 kHz, 400 ms fits only a small frame.
  const std::size_t mtu = s.node(0).max_datagram_payload();
  EXPECT_LT(mtu, 30u);
  EXPECT_GE(mtu, 4u);
  // The full-size frame would have taken ~2 s; the capped one fits.
  EXPECT_LE(phy::time_on_air(s.radio(0).modulation(),
                             mtu + kLinkHeaderSize + kRouteHeaderSize),
            kFccDwell);
}

TEST(DwellTime, OversizedSendsAreRefusedNotTruncated) {
  MeshScenario s(dwell_config(phy::SpreadingFactor::SF10, kFccDwell));
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::minutes(2));
  const std::size_t mtu = s.node(0).max_datagram_payload();
  EXPECT_FALSE(s.node(0).send_datagram(
      s.address_of(1), std::vector<std::uint8_t>(mtu + 1, 1)));
  EXPECT_TRUE(s.node(0).send_datagram(s.address_of(1),
                                      std::vector<std::uint8_t>(mtu, 1)));
}

TEST(DwellTime, EveryFrameOnTheAirFitsTheCap) {
  MeshScenario s(dwell_config(phy::SpreadingFactor::SF10, kFccDwell));
  s.add_nodes(testbed::chain(3, kSpacing));
  radio::RadioConfig sniffer_cfg;
  sniffer_cfg.modulation.sf = phy::SpreadingFactor::SF10;
  testbed::Sniffer sniffer(s.simulator(), s.channel(), 99, {kSpacing, 100.0},
                           sniffer_cfg);
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(20)).has_value());

  // Work the mesh: datagrams + a reliable transfer with shrunken fragments.
  int outcome = -1;
  std::vector<std::uint8_t> payload(200, 0x3D);
  std::vector<std::uint8_t> received;
  s.node(2).set_reliable_handler(
      [&](Address, std::vector<std::uint8_t> d) { received = std::move(d); });
  ASSERT_TRUE(s.node(0).send_reliable(s.address_of(2), payload,
                                      [&](bool ok) { outcome = ok ? 1 : 0; }));
  s.run_for(Duration::minutes(10));
  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(received, payload);

  ASSERT_GT(sniffer.captures().size(), 10u);
  const auto& mod = sniffer.radio().modulation();
  for (const auto& cap : sniffer.captures()) {
    EXPECT_LE(phy::time_on_air(mod, cap.raw.size()).us(), kFccDwell.us())
        << cap.raw.size() << " bytes";
  }
}

TEST(DwellTime, BeaconsTrimToTheCap) {
  // A node taught many routes must not emit an over-dwell beacon.
  auto c = dwell_config(phy::SpreadingFactor::SF10, kFccDwell, 5);
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, kSpacing));
  radio::RadioConfig sniffer_cfg;
  sniffer_cfg.modulation.sf = phy::SpreadingFactor::SF10;
  testbed::Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0},
                           sniffer_cfg);
  s.start_all();
  s.run_for(Duration::seconds(5));

  // Inject a giant table via a rogue beacon so node 0 knows ~60 routes.
  radio::VirtualRadio rogue(s.simulator(), s.channel(), 66, {100.0, 0.0},
                            sniffer_cfg);
  RoutingPacket big;
  big.link = LinkHeader{kBroadcast, 0x0666, PacketType::Routing};
  for (int i = 0; i < 60; ++i) {
    big.entries.push_back({static_cast<Address>(0x2000 + i), 2});
  }
  rogue.transmit(encode(Packet{big}));
  s.run_for(Duration::minutes(3));

  bool saw_big_table_beacon = false;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet) continue;
    const auto* routing = std::get_if<RoutingPacket>(&*cap.packet);
    if (routing == nullptr || routing->link.src != s.address_of(0)) continue;
    // Trimmed: the frame still fits the dwell cap...
    EXPECT_LE(phy::time_on_air(sniffer_cfg.modulation, cap.raw.size()).us(),
              kFccDwell.us());
    if (routing->entries.size() > 3) saw_big_table_beacon = true;
  }
  // ...and carries as many entries as fit (not the whole 60+).
  EXPECT_TRUE(saw_big_table_beacon);
}

TEST(DwellTime, InfeasibleCapIsRejectedAtConstruction) {
  // 400 ms at SF12 cannot even fit the headers.
  auto c = dwell_config(phy::SpreadingFactor::SF12, kFccDwell);
  MeshScenario s(c);
  EXPECT_THROW(s.add_node({0, 0}), ContractViolation);
}

TEST(DwellTime, DisabledByDefault) {
  MeshConfig def;
  EXPECT_TRUE(def.max_dwell_time.is_zero());
  MeshScenario s(dwell_config(phy::SpreadingFactor::SF7, Duration::zero()));
  s.add_nodes(testbed::chain(2, kSpacing));
  EXPECT_EQ(s.node(0).max_datagram_payload(), kMaxDataPayload);
}

}  // namespace
}  // namespace lm::net
