// Duty-cycled listening (the paper's future-work lever, naive version):
// sleeping the receiver saves energy proportionally and loses every frame
// that lands in a sleep window — the trade E10 quantifies.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/path_loss.h"
#include "radio/energy.h"
#include "support/assert.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;

testbed::ScenarioConfig cfg(double rx_duty, std::uint64_t seed = 4) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(15);
  c.mesh.duty_cycle_limit = 1.0;
  c.mesh.rx_duty = rx_duty;
  c.mesh.rx_cycle_period = Duration::seconds(10);
  return c;
}

TEST(RxDuty, SleepingReceiverLosesProportionally) {
  MeshScenario s(cfg(0.3));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::minutes(5));  // discovery despite sleepy windows
  ASSERT_TRUE(s.node(0).routing_table().has_route(s.address_of(1)));

  int delivered = 0;
  s.node(1).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++delivered;
      });
  int sent = 0;
  for (int i = 0; i < 200; ++i) {
    if (s.node(0).send_datagram(s.address_of(1), {1})) ++sent;
    s.run_for(Duration::from_seconds(7.3));  // decorrelate from the cycle
  }
  ASSERT_GT(sent, 150);
  const double pdr = static_cast<double>(delivered) / sent;
  // ~30 % listening -> ~30 % delivery (frames are short vs the windows).
  EXPECT_GT(pdr, 0.18);
  EXPECT_LT(pdr, 0.45);
}

TEST(RxDuty, EnergyDropsWithTheListenFraction) {
  MeshScenario always(cfg(1.0));
  always.add_node({0, 0});
  always.start_all();
  always.run_for(Duration::hours(6));
  const double always_ma = radio::average_current_ma(always.radio(0));

  MeshScenario sleepy(cfg(0.2));
  sleepy.add_node({0, 0});
  sleepy.start_all();
  sleepy.run_for(Duration::hours(6));
  const double sleepy_ma = radio::average_current_ma(sleepy.radio(0));

  // RX dominates, so average current scales roughly with the listen
  // fraction (beacon TX adds a little on top).
  EXPECT_LT(sleepy_ma, 0.35 * always_ma);
  EXPECT_GT(sleepy_ma, 0.1 * always_ma);
}

TEST(RxDuty, NodeStillTransmitsWhileSleepy) {
  // A sleeping receiver must not block the node's own transmissions: it
  // wakes to standby, runs CSMA, transmits, and goes back to the schedule.
  MeshScenario s(cfg(0.2, 9));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::minutes(10));
  EXPECT_GE(s.node(0).stats().beacons_sent, 30u);  // ~40 expected at 15 s
  EXPECT_GE(s.node(1).stats().beacons_sent, 30u);
}

TEST(RxDuty, ValidationAndDefault) {
  MeshConfig def;
  EXPECT_DOUBLE_EQ(def.rx_duty, 1.0);
  auto c = cfg(0.5);
  c.mesh.rx_duty = 0.0;
  MeshScenario s(c);
  EXPECT_THROW(s.add_node({0, 0}), ContractViolation);
}

}  // namespace
}  // namespace lm::net
