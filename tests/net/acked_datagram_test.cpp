// End-to-end tests of the NEED_ACK path: acked datagrams across relays,
// retransmission on loss, duplicate suppression, and failure reporting.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;

testbed::ScenarioConfig cfg(std::uint64_t seed = 3) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  c.mesh.acked_retry_timeout = Duration::seconds(5);
  return c;
}

TEST(AckedDatagram, ConfirmedAcrossTwoHops) {
  MeshScenario s(cfg());
  s.add_nodes(testbed::chain(3, 400.0));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  std::vector<std::uint8_t> got;
  s.node(2).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>& p, std::uint8_t hops) {
        got = p;
        EXPECT_EQ(hops, 2);
      });
  int outcome = -1;
  ASSERT_TRUE(s.node(0).send_acked(s.address_of(2), {4, 5, 6},
                                   [&](bool ok) { outcome = ok ? 1 : 0; }));
  s.run_for(Duration::seconds(20));

  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(got, (std::vector<std::uint8_t>{4, 5, 6}));
  EXPECT_EQ(s.node(0).stats().acked_confirmed, 1u);
  EXPECT_EQ(s.node(0).stats().acked_retransmissions, 0u);
  EXPECT_EQ(s.node(2).stats().acked_delivered, 1u);
  EXPECT_EQ(s.node(2).stats().acks_sent, 1u);
}

TEST(AckedDatagram, RetransmitsThroughLossAndDeliversOnce) {
  MeshScenario s(cfg(5));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));
  // 50 % loss each way: first attempts often die, retries get through.
  s.channel().set_link_extra_loss(1, 2, 0.5);

  int deliveries = 0;
  s.node(1).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++deliveries;
      });
  int confirmed = 0, failed = 0;
  for (int i = 0; i < 20; ++i) {
    s.node(0).send_acked(s.address_of(1), {static_cast<std::uint8_t>(i)},
                         [&](bool ok) { ok ? ++confirmed : ++failed; });
    s.run_for(Duration::minutes(1));
  }
  // With 4 attempts at ~25 % round-trip success, most confirm.
  EXPECT_GT(confirmed, 10);
  EXPECT_GT(s.node(0).stats().acked_retransmissions, 5u);
  // Duplicate suppression: every datagram delivered at most once, and
  // deliveries >= confirmations (an ACK can die after delivery).
  EXPECT_GE(deliveries, confirmed);
  EXPECT_LE(deliveries, 20);
  EXPECT_EQ(s.node(1).stats().acked_delivered,
            static_cast<std::uint64_t>(deliveries));
}

TEST(AckedDatagram, DuplicateDeliveryIsSuppressedButReAcked) {
  MeshScenario s(cfg(6));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));

  // Block the reverse path AFTER delivery by making only ACKs die: simplest
  // deterministic setup — drop everything B sends by blocking B's TX via
  // extra loss in one direction is not supported (links are symmetric), so
  // emulate with a sniffer-free approach: full loss, then heal.
  int deliveries = 0;
  s.node(1).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++deliveries;
      });
  int outcome = -1;
  s.node(0).send_acked(s.address_of(1), {7}, [&](bool ok) { outcome = ok ? 1 : 0; });
  // Let the first attempt deliver, then lose the ACK by blocking the link
  // right after the datagram lands but before the (queued) ACK flies.
  s.run_for(Duration::milliseconds(80));  // datagram (~62 ms) has landed
  EXPECT_EQ(deliveries, 1);
  s.channel().block_link(1, 2);
  s.run_for(Duration::seconds(6));  // ACK lost; sender times out, retries die
  s.channel().unblock_link(1, 2);
  s.run_for(Duration::seconds(30));  // a retry gets through, is deduped, re-ACKed

  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(deliveries, 1);  // never delivered twice
  EXPECT_GE(s.node(1).stats().acked_duplicates, 1u);
  EXPECT_GE(s.node(1).stats().acks_sent, 2u);
}

TEST(AckedDatagram, FailsAfterRetriesExhausted) {
  MeshScenario s(cfg(7));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));
  s.channel().block_link(1, 2);  // nothing will ever get through

  int outcome = -1;
  ASSERT_TRUE(s.node(0).send_acked(s.address_of(1), {1},
                                   [&](bool ok) { outcome = ok ? 1 : 0; }));
  // 1 + 3 retries at 5 s timeouts.
  s.run_for(Duration::minutes(2));
  EXPECT_EQ(outcome, 0);
  EXPECT_EQ(s.node(0).stats().acked_failed, 1u);
  EXPECT_EQ(s.node(0).stats().acked_retransmissions, 3u);
}

TEST(AckedDatagram, ValidationMatchesDatagrams) {
  MeshScenario s(cfg(8));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));
  MeshNode& n = s.node(0);
  EXPECT_FALSE(n.send_acked(n.address(), {1}, nullptr));
  EXPECT_FALSE(n.send_acked(kBroadcast, {1}, nullptr));
  EXPECT_FALSE(n.send_acked(0x7777, {1}, nullptr));  // no route
  EXPECT_FALSE(n.send_acked(s.address_of(1),
                            std::vector<std::uint8_t>(kMaxDataPayload + 1),
                            nullptr));
}

TEST(AckedDatagram, StopFailsOutstandingSends) {
  MeshScenario s(cfg(9));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));
  s.channel().block_link(1, 2);
  int outcome = -1;
  s.node(0).send_acked(s.address_of(1), {1}, [&](bool ok) { outcome = ok ? 1 : 0; });
  s.run_for(Duration::seconds(1));
  s.node(0).stop();
  EXPECT_EQ(outcome, 0);
}

}  // namespace
}  // namespace lm::net
