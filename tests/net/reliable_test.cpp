#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/reliable_receiver.h"
#include "net/reliable_sender.h"
#include "sim/simulator.h"
#include "support/assert.h"

namespace lm::net {
namespace {

constexpr Address kSelf = 0x0001;
constexpr Address kPeer = 0x0002;

struct FakeSink final : PacketSink {
  std::vector<Packet> sent;
  std::uint16_t next_id = 1;

  void submit_control(Packet p) override { sent.push_back(std::move(p)); }
  void submit_data(Packet p) override { sent.push_back(std::move(p)); }
  Address self_address() const override { return kSelf; }
  RouteHeader make_route(Address d) override {
    RouteHeader r;
    r.final_dst = d;
    r.origin = kSelf;
    r.ttl = 16;
    r.packet_id = next_id++;
    return r;
  }

  template <typename T>
  std::vector<T> of_type() const {
    std::vector<T> out;
    for (const Packet& p : sent) {
      if (const T* t = std::get_if<T>(&p)) out.push_back(*t);
    }
    return out;
  }
  template <typename T>
  std::size_t count() const {
    return of_type<T>().size();
  }
};

MeshConfig fast_config() {
  MeshConfig c;
  c.reliable_retry_timeout = Duration::seconds(2);
  c.receiver_gap_timeout = Duration::seconds(3);
  c.receiver_session_timeout = Duration::seconds(60);
  c.fragment_spacing = Duration::milliseconds(10);
  c.sync_max_retries = 3;
  c.poll_max_retries = 2;
  return c;
}

std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return v;
}

class ReliableSenderTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  FakeSink sink_;
  MeshConfig cfg_ = fast_config();
  int completions_ = 0;
  bool last_result_ = false;

  std::unique_ptr<ReliableSender> make(std::size_t payload_bytes,
                                       std::uint8_t seq = 9) {
    return std::make_unique<ReliableSender>(
        sim_, sink_, cfg_, kPeer, seq, pattern(payload_bytes), [this](bool ok) {
          ++completions_;
          last_result_ = ok;
        });
  }

  /// One full retry window: timers are jittered up to 1.4x the configured
  /// timeout, and consecutive fires are >= 1.8x apart — so running 1.5x
  /// guarantees exactly one pending retry fires.
  Duration retry_window() const { return cfg_.reliable_retry_timeout * 1.5; }

  /// Pretends the node put every queued fragment on the air.
  void drain_fragments(ReliableSender& s) {
    std::size_t done = 0;
    while (true) {
      const auto frags = sink_.of_type<FragmentPacket>();
      if (frags.size() == done) {
        // Nothing new: let the (jittered, <= 1.5x) pacing timer fire.
        const std::size_t before = frags.size();
        sim_.run_for(cfg_.fragment_spacing * 2);
        if (sink_.of_type<FragmentPacket>().size() == before) break;
        continue;
      }
      for (; done < frags.size(); ++done) {
        s.on_fragment_transmitted(frags[done].index);
      }
    }
  }
};

TEST_F(ReliableSenderTest, SendsSyncImmediately) {
  auto s = make(1000);
  const auto syncs = sink_.of_type<SyncPacket>();
  ASSERT_EQ(syncs.size(), 1u);
  EXPECT_EQ(syncs[0].seq, 9);
  EXPECT_EQ(syncs[0].total_bytes, 1000u);
  EXPECT_EQ(syncs[0].fragment_count, 5u);  // ceil(1000 / 239)
  EXPECT_EQ(syncs[0].route.final_dst, kPeer);
  EXPECT_EQ(s->fragment_count(), 5u);
}

TEST_F(ReliableSenderTest, SingleFragmentPayload) {
  auto s = make(kMaxFragmentPayload);
  EXPECT_EQ(s->fragment_count(), 1u);
  auto s2 = std::make_unique<ReliableSender>(sim_, sink_, cfg_, kPeer, 1,
                                             pattern(kMaxFragmentPayload + 1),
                                             nullptr);
  EXPECT_EQ(s2->fragment_count(), 2u);
}

TEST_F(ReliableSenderTest, RetriesSyncThenGivesUp) {
  auto s = make(100);
  EXPECT_EQ(sink_.count<SyncPacket>(), 1u);
  sim_.run_for(retry_window());
  EXPECT_EQ(sink_.count<SyncPacket>(), 2u);
  sim_.run_for(retry_window());
  EXPECT_EQ(sink_.count<SyncPacket>(), 3u);  // attempt sync_max_retries
  EXPECT_EQ(completions_, 0);
  sim_.run_for(retry_window());
  EXPECT_EQ(sink_.count<SyncPacket>(), 3u);  // no more retries
  EXPECT_EQ(completions_, 1);
  EXPECT_FALSE(last_result_);
  EXPECT_TRUE(s->finished());
}

TEST_F(ReliableSenderTest, StreamsFragmentsAfterSyncAck) {
  auto s = make(1000);
  s->on_sync_ack();
  EXPECT_EQ(sink_.count<FragmentPacket>(), 1u);  // paced one at a time
  drain_fragments(*s);
  const auto frags = sink_.of_type<FragmentPacket>();
  ASSERT_EQ(frags.size(), 5u);
  // Indices in order, payload partitions the original.
  std::vector<std::uint8_t> reassembled;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    EXPECT_EQ(frags[i].index, i);
    EXPECT_EQ(frags[i].seq, 9);
    reassembled.insert(reassembled.end(), frags[i].payload.begin(),
                       frags[i].payload.end());
  }
  EXPECT_EQ(reassembled, pattern(1000));
  EXPECT_EQ(s->fragments_sent(), 5u);
}

TEST_F(ReliableSenderTest, DuplicateSyncAckIgnored) {
  auto s = make(500);
  s->on_sync_ack();
  s->on_sync_ack();
  drain_fragments(*s);
  EXPECT_EQ(sink_.count<FragmentPacket>(), 3u);  // not doubled
}

TEST_F(ReliableSenderTest, DoneCompletesSuccessfully) {
  auto s = make(500);
  s->on_sync_ack();
  drain_fragments(*s);
  s->on_done();
  EXPECT_EQ(completions_, 1);
  EXPECT_TRUE(last_result_);
  EXPECT_TRUE(s->finished());
  s->on_done();  // duplicate DONE is harmless
  EXPECT_EQ(completions_, 1);
}

TEST_F(ReliableSenderTest, LostTriggersRetransmission) {
  auto s = make(1000);
  s->on_sync_ack();
  drain_fragments(*s);
  EXPECT_EQ(sink_.count<FragmentPacket>(), 5u);
  s->on_lost({1, 3});
  drain_fragments(*s);
  const auto frags = sink_.of_type<FragmentPacket>();
  ASSERT_EQ(frags.size(), 7u);
  EXPECT_EQ(frags[5].index, 1u);
  EXPECT_EQ(frags[6].index, 3u);
  EXPECT_EQ(s->fragments_retransmitted(), 2u);
  s->on_done();
  EXPECT_TRUE(last_result_);
}

TEST_F(ReliableSenderTest, LostIgnoresOutOfRangeAndDuplicates) {
  auto s = make(1000);
  s->on_sync_ack();
  drain_fragments(*s);
  s->on_lost({2, 2, 9999});
  drain_fragments(*s);
  EXPECT_EQ(sink_.count<FragmentPacket>(), 6u);  // only fragment 2 once
  EXPECT_EQ(s->fragments_retransmitted(), 1u);
}

TEST_F(ReliableSenderTest, SilenceAfterStreamingTriggersPollThenFailure) {
  auto s = make(500);
  s->on_sync_ack();
  drain_fragments(*s);
  EXPECT_EQ(sink_.count<PollPacket>(), 0u);
  sim_.run_for(retry_window());
  EXPECT_EQ(sink_.count<PollPacket>(), 1u);
  sim_.run_for(retry_window());
  EXPECT_EQ(sink_.count<PollPacket>(), 2u);  // poll_max_retries
  sim_.run_for(retry_window());
  EXPECT_EQ(completions_, 1);
  EXPECT_FALSE(last_result_);
}

TEST_F(ReliableSenderTest, LostAfterPollKeepsTransferAlive) {
  auto s = make(500);
  s->on_sync_ack();
  drain_fragments(*s);
  sim_.run_for(retry_window());  // first poll
  s->on_lost({0});
  drain_fragments(*s);
  s->on_done();
  EXPECT_TRUE(last_result_);
}

TEST_F(ReliableSenderTest, AbortFailsOnce) {
  auto s = make(500);
  s->abort();
  EXPECT_EQ(completions_, 1);
  EXPECT_FALSE(last_result_);
  s->abort();
  EXPECT_EQ(completions_, 1);
}

TEST_F(ReliableSenderTest, RejectsEmptyPayload) {
  EXPECT_THROW(ReliableSender(sim_, sink_, cfg_, kPeer, 1, {}, nullptr),
               ContractViolation);
}

TEST_F(ReliableSenderTest, RejectsBroadcastDestination) {
  EXPECT_THROW(ReliableSender(sim_, sink_, cfg_, kBroadcast, 1, pattern(10), nullptr),
               ContractViolation);
}

// --- Receiver ------------------------------------------------------------------

class ReliableReceiverTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  FakeSink sink_;
  MeshConfig cfg_ = fast_config();
  std::vector<std::uint8_t> delivered_;
  int deliveries_ = 0;

  SyncPacket sync(std::size_t total, std::uint8_t seq = 9) {
    SyncPacket p;
    p.link = LinkHeader{kSelf, kPeer, PacketType::Sync};
    p.route.final_dst = kSelf;
    p.route.origin = kPeer;
    p.seq = seq;
    p.total_bytes = static_cast<std::uint32_t>(total);
    p.fragment_count = static_cast<std::uint16_t>(
        (total + kMaxFragmentPayload - 1) / kMaxFragmentPayload);
    return p;
  }

  FragmentPacket fragment(const std::vector<std::uint8_t>& payload,
                          std::uint16_t index, std::uint8_t seq = 9) {
    FragmentPacket p;
    p.route.origin = kPeer;
    p.route.final_dst = kSelf;
    p.seq = seq;
    p.index = index;
    const std::size_t begin = static_cast<std::size_t>(index) * kMaxFragmentPayload;
    const std::size_t end = std::min(begin + kMaxFragmentPayload, payload.size());
    p.payload.assign(payload.begin() + static_cast<std::ptrdiff_t>(begin),
                     payload.begin() + static_cast<std::ptrdiff_t>(end));
    return p;
  }

  std::unique_ptr<ReliableReceiver> make(const SyncPacket& s) {
    return std::make_unique<ReliableReceiver>(
        sim_, sink_, cfg_, kPeer, s,
        [this](Address, std::vector<std::uint8_t> payload) {
          ++deliveries_;
          delivered_ = std::move(payload);
        });
  }
};

TEST_F(ReliableReceiverTest, AcksSyncOnConstruction) {
  auto r = make(sync(1000));
  const auto acks = sink_.of_type<SyncAckPacket>();
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].seq, 9);
  EXPECT_EQ(acks[0].route.final_dst, kPeer);
}

TEST_F(ReliableReceiverTest, DuplicateSyncReAcks) {
  auto r = make(sync(1000));
  r->on_sync(sync(1000));
  EXPECT_EQ(sink_.count<SyncAckPacket>(), 2u);
}

TEST_F(ReliableReceiverTest, InconsistentSyncRetryIgnored) {
  auto r = make(sync(1000));
  r->on_sync(sync(2000));  // different geometry: stale sender
  EXPECT_EQ(sink_.count<SyncAckPacket>(), 1u);
}

TEST_F(ReliableReceiverTest, ReassemblesInOrderDelivery) {
  const auto payload = pattern(1000);
  auto r = make(sync(1000));
  for (std::uint16_t i = 0; i < 5; ++i) r->on_fragment(fragment(payload, i));
  EXPECT_EQ(deliveries_, 1);
  EXPECT_EQ(delivered_, payload);
  EXPECT_EQ(sink_.count<DonePacket>(), 1u);
  EXPECT_TRUE(r->complete());
}

TEST_F(ReliableReceiverTest, ReassemblesOutOfOrderArrival) {
  const auto payload = pattern(1000);
  auto r = make(sync(1000));
  for (std::uint16_t i : {4, 0, 2, 1, 3}) {
    r->on_fragment(fragment(payload, static_cast<std::uint16_t>(i)));
  }
  EXPECT_EQ(deliveries_, 1);
  EXPECT_EQ(delivered_, payload);
}

TEST_F(ReliableReceiverTest, DuplicateFragmentCountedNotStoredTwice) {
  const auto payload = pattern(1000);
  auto r = make(sync(1000));
  r->on_fragment(fragment(payload, 0));
  r->on_fragment(fragment(payload, 0));
  EXPECT_EQ(r->duplicate_fragments(), 1u);
  EXPECT_EQ(r->received_count(), 1u);
}

TEST_F(ReliableReceiverTest, LateFragmentAfterCompletionDrawsDone) {
  const auto payload = pattern(500);
  auto r = make(sync(500));
  for (std::uint16_t i = 0; i < 3; ++i) r->on_fragment(fragment(payload, i));
  EXPECT_EQ(sink_.count<DonePacket>(), 1u);
  r->on_fragment(fragment(payload, 1));
  EXPECT_EQ(sink_.count<DonePacket>(), 2u);
  EXPECT_EQ(deliveries_, 1);  // delivered only once
}

TEST_F(ReliableReceiverTest, GapTimeoutRequestsMissing) {
  const auto payload = pattern(1000);
  auto r = make(sync(1000));
  r->on_fragment(fragment(payload, 0));
  r->on_fragment(fragment(payload, 3));
  sim_.run_for(cfg_.receiver_gap_timeout);
  const auto losts = sink_.of_type<LostPacket>();
  ASSERT_EQ(losts.size(), 1u);
  EXPECT_EQ(losts[0].missing, (std::vector<std::uint16_t>{1, 2, 4}));
  EXPECT_EQ(r->lost_requests_sent(), 1u);
}

TEST_F(ReliableReceiverTest, FragmentArrivalPostponesGapTimeout) {
  const auto payload = pattern(1000);
  auto r = make(sync(1000));
  r->on_fragment(fragment(payload, 0));
  sim_.run_for(cfg_.receiver_gap_timeout - Duration::seconds(1));
  r->on_fragment(fragment(payload, 1));  // resets the timer
  sim_.run_for(Duration::seconds(2));
  EXPECT_EQ(sink_.count<LostPacket>(), 0u);
}

TEST_F(ReliableReceiverTest, PollWhileIncompleteDrawsLost) {
  const auto payload = pattern(1000);
  auto r = make(sync(1000));
  r->on_fragment(fragment(payload, 2));
  r->on_poll();
  const auto losts = sink_.of_type<LostPacket>();
  ASSERT_EQ(losts.size(), 1u);
  EXPECT_EQ(losts[0].missing, (std::vector<std::uint16_t>{0, 1, 3, 4}));
}

TEST_F(ReliableReceiverTest, PollAfterCompletionDrawsDone) {
  const auto payload = pattern(500);
  auto r = make(sync(500));
  for (std::uint16_t i = 0; i < 3; ++i) r->on_fragment(fragment(payload, i));
  r->on_poll();
  EXPECT_EQ(sink_.count<DonePacket>(), 2u);
  EXPECT_EQ(sink_.count<LostPacket>(), 0u);
}

TEST_F(ReliableReceiverTest, OutOfRangeFragmentIgnored) {
  auto r = make(sync(1000));
  FragmentPacket bogus;
  bogus.seq = 9;
  bogus.index = 5;  // valid indices are 0..4
  bogus.payload = {1, 2, 3};
  r->on_fragment(bogus);
  EXPECT_EQ(r->received_count(), 0u);
}

TEST_F(ReliableReceiverTest, MissingListCappedToOneLostPacket) {
  // 500 fragments missing: one LOST carries at most kMaxLostIndices.
  auto r = make(sync(500 * kMaxFragmentPayload));
  r->on_poll();
  const auto losts = sink_.of_type<LostPacket>();
  ASSERT_EQ(losts.size(), 1u);
  EXPECT_EQ(losts[0].missing.size(), kMaxLostIndices);
  EXPECT_EQ(losts[0].missing.front(), 0u);
}

TEST_F(ReliableReceiverTest, SessionTimeoutExpiresAbandonedTransfer) {
  auto r = make(sync(1000));
  EXPECT_FALSE(r->expired());
  sim_.run_for(cfg_.receiver_session_timeout);
  EXPECT_TRUE(r->expired());
  // Expired sessions go quiet.
  const auto before = sink_.sent.size();
  r->on_poll();
  EXPECT_EQ(sink_.sent.size(), before);
}

TEST_F(ReliableReceiverTest, RejectsZeroFragmentSync) {
  SyncPacket bad = sync(1000);
  bad.fragment_count = 0;
  EXPECT_THROW(make(bad), ContractViolation);
}

}  // namespace
}  // namespace lm::net
