// Routing-policy A/B over the shared stack.
//
// The same 4-node chain, the same link layer, the same traffic — only the
// RoutingStrategy plugged into the network layer differs. Distance-vector
// learns hop-count routes from beacons and unicasts along them; controlled
// flooding keeps no routing state and rebroadcasts blindly. Both must
// deliver; flooding must pay for its statelessness in data airtime (every
// packet also occupies the off-path relays' channel). This is the paper's
// mesh-vs-flooding trade-off reproduced at unit-test scale, and the proof
// that strategies are genuinely interchangeable behind the seam.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "net/distance_vector_strategy.h"
#include "net/flooding_strategy.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace lm::testbed {
namespace {

constexpr double kSpacing = 400.0;      // adjacent nodes only
constexpr std::size_t kMessages = 20;   // node 1 -> node 2 (interior pair)

ScenarioConfig cfg(std::uint64_t seed) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

struct Outcome {
  std::uint64_t delivered = 0;
  std::uint64_t forwarded = 0;
  Duration data_airtime;
};

// Runs the interior-pair traffic (node 1 -> node 2) through a chain of 4
// and reports what arrived and what it cost. The pair is deliberately
// interior: distance-vector unicasts one hop, while flooding also wakes
// node 0 as an off-path relay — the airtime gap the test asserts on.
Outcome run_chain(ScenarioConfig config, bool converge_first) {
  MeshScenario s(std::move(config));
  s.add_nodes(chain(4, kSpacing));
  Outcome out;
  s.node(2).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t hops) {
        out.delivered++;
        EXPECT_EQ(hops, 1);  // adjacent pair under either policy
      });
  s.start_all();
  if (converge_first) {
    EXPECT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());
  }
  const net::Address dst = s.address_of(2);
  for (std::size_t i = 0; i < kMessages; ++i) {
    EXPECT_TRUE(s.node(1).send_datagram(dst, {0xAB, static_cast<std::uint8_t>(i)}));
    s.run_for(Duration::seconds(10));
  }
  s.run_for(Duration::seconds(30));  // drain relays and retries
  const net::NodeStats total = s.total_stats();
  out.forwarded = total.packets_forwarded;
  out.data_airtime = total.data_airtime;
  return out;
}

ScenarioConfig flooding_cfg(std::uint64_t seed) {
  ScenarioConfig c = cfg(seed);
  c.strategy_factory = [] {
    return std::make_unique<net::FloodingStrategy>();
  };
  return c;
}

TEST(RoutingStrategies, FactorySelectsThePolicy) {
  MeshScenario dv(cfg(7));
  dv.add_nodes(chain(2, kSpacing));
  EXPECT_STREQ(dv.node(0).routing_strategy().name(), "distance-vector");

  MeshScenario flood(flooding_cfg(7));
  flood.add_nodes(chain(2, kSpacing));
  EXPECT_STREQ(flood.node(0).routing_strategy().name(), "flooding");
}

TEST(RoutingStrategies, BothDeliverButDistanceVectorUsesLessAirtime) {
  const Outcome dv = run_chain(cfg(42), /*converge_first=*/true);
  const Outcome flood = run_chain(flooding_cfg(42), /*converge_first=*/false);

  // Both policies deliver the interior-pair traffic (allow a message or
  // two lost to beacon collisions under distance-vector).
  EXPECT_GE(dv.delivered, kMessages - 2);
  EXPECT_GE(flood.delivered, kMessages - 2);

  // Distance-vector unicasts one hop: nobody forwards. Flooding drags
  // node 0 into relaying traffic it is not on the path of.
  EXPECT_EQ(dv.forwarded, 0u);
  EXPECT_GE(flood.forwarded, kMessages - 2);

  // The bill: identical payloads, strictly more data airtime when flooding.
  EXPECT_LT(dv.data_airtime, flood.data_airtime);
}

TEST(RoutingStrategies, FloodingNeedsNoConvergenceDelay) {
  // Stateless routing works from the first packet — no beacons, no route
  // acquisition. A freshly booted chain floods end to end immediately.
  MeshScenario s(flooding_cfg(3));
  s.add_nodes(chain(4, kSpacing));
  std::uint64_t delivered = 0;
  s.node(3).set_datagram_handler(
      [&](net::Address origin, const std::vector<std::uint8_t>&, std::uint8_t hops) {
        delivered++;
        EXPECT_EQ(origin, s.address_of(0));
        EXPECT_EQ(hops, 3);
      });
  s.start_all();
  EXPECT_TRUE(s.node(0).send_datagram(s.address_of(3), {0x01}));
  s.run_for(Duration::seconds(30));
  EXPECT_EQ(delivered, 1u);
}

}  // namespace
}  // namespace lm::testbed
