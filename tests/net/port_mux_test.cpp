#include "net/port_mux.h"

#include <gtest/gtest.h>

#include "phy/path_loss.h"
#include "support/assert.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;

testbed::ScenarioConfig cfg() {
  testbed::ScenarioConfig c;
  c.seed = 8;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

class PortMuxTest : public ::testing::Test {
 protected:
  PortMuxTest() : scenario_(cfg()) {
    scenario_.add_nodes(testbed::chain(2, 400.0));
    scenario_.start_all();
    scenario_.run_for(Duration::seconds(25));
    tx_ = std::make_unique<PortMux>(scenario_.node(0));
    rx_ = std::make_unique<PortMux>(scenario_.node(1));
  }

  MeshScenario scenario_;
  std::unique_ptr<PortMux> tx_;
  std::unique_ptr<PortMux> rx_;
};

TEST_F(PortMuxTest, RoutesPayloadsToTheRightService) {
  std::vector<std::uint8_t> telemetry, commands;
  rx_->open(1, [&](Address, const std::vector<std::uint8_t>& p, std::uint8_t) {
    telemetry = p;
  });
  rx_->open(2, [&](Address, const std::vector<std::uint8_t>& p, std::uint8_t) {
    commands = p;
  });

  ASSERT_TRUE(tx_->send(scenario_.address_of(1), 1, {0xAA, 0xBB}));
  ASSERT_TRUE(tx_->send(scenario_.address_of(1), 2, {0xCC}));
  scenario_.run_for(Duration::seconds(10));

  EXPECT_EQ(telemetry, (std::vector<std::uint8_t>{0xAA, 0xBB}));
  EXPECT_EQ(commands, (std::vector<std::uint8_t>{0xCC}));
  EXPECT_EQ(rx_->delivered(1), 1u);
  EXPECT_EQ(rx_->delivered(2), 1u);
}

TEST_F(PortMuxTest, UnknownPortCountedNotDelivered) {
  int any = 0;
  rx_->open(5, [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
    ++any;
  });
  tx_->send(scenario_.address_of(1), 9, {1});
  scenario_.run_for(Duration::seconds(10));
  EXPECT_EQ(any, 0);
  EXPECT_EQ(rx_->dropped_unknown_port(), 1u);
}

TEST_F(PortMuxTest, CloseStopsDelivery) {
  int got = 0;
  rx_->open(3, [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
    ++got;
  });
  tx_->send(scenario_.address_of(1), 3, {1});
  scenario_.run_for(Duration::seconds(10));
  EXPECT_EQ(got, 1);
  EXPECT_TRUE(rx_->is_open(3));
  rx_->close(3);
  EXPECT_FALSE(rx_->is_open(3));
  tx_->send(scenario_.address_of(1), 3, {1});
  scenario_.run_for(Duration::seconds(10));
  EXPECT_EQ(got, 1);
  EXPECT_EQ(rx_->dropped_unknown_port(), 1u);
}

TEST_F(PortMuxTest, EmptyPayloadAllowedAndMtuEnforced) {
  int got = -1;
  rx_->open(7, [&](Address, const std::vector<std::uint8_t>& p, std::uint8_t) {
    got = static_cast<int>(p.size());
  });
  ASSERT_TRUE(tx_->send(scenario_.address_of(1), 7, {}));  // port byte only
  scenario_.run_for(Duration::seconds(10));
  EXPECT_EQ(got, 0);

  EXPECT_TRUE(tx_->send(scenario_.address_of(1), 7,
                        std::vector<std::uint8_t>(kMaxPortPayload, 1)));
  EXPECT_FALSE(tx_->send(scenario_.address_of(1), 7,
                         std::vector<std::uint8_t>(kMaxPortPayload + 1, 1)));
}

TEST_F(PortMuxTest, OriginAndHopsPassThrough) {
  Address origin = kUnassigned;
  std::uint8_t hops = 0;
  rx_->open(1, [&](Address o, const std::vector<std::uint8_t>&, std::uint8_t h) {
    origin = o;
    hops = h;
  });
  tx_->send(scenario_.address_of(1), 1, {1});
  scenario_.run_for(Duration::seconds(10));
  EXPECT_EQ(origin, scenario_.address_of(0));
  EXPECT_EQ(hops, 1);
}

TEST_F(PortMuxTest, RawSendersWithoutPortByteAreCountedEmptyOrMisrouted) {
  // A non-mux datagram lands on whatever port its first byte names; an
  // empty datagram is counted separately. This documents the interop rule:
  // all peers of a muxed node should speak the port convention.
  rx_->open(1, [](Address, const std::vector<std::uint8_t>&, std::uint8_t) {});
  scenario_.node(0).send_datagram(scenario_.address_of(1), {});
  scenario_.run_for(Duration::seconds(10));
  EXPECT_EQ(rx_->dropped_empty(), 1u);
}

TEST_F(PortMuxTest, RejectsNullHandler) {
  EXPECT_THROW(rx_->open(1, nullptr), ContractViolation);
}

}  // namespace
}  // namespace lm::net
