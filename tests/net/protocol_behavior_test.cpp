// On-air protocol behaviour, asserted through a promiscuous sniffer: what
// the node actually transmits, in which order, and when — not what its
// counters claim.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/airtime.h"
#include "phy/path_loss.h"
#include "support/stats.h"
#include "testbed/scenario.h"
#include "testbed/sniffer.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;
using testbed::Sniffer;

testbed::ScenarioConfig cfg(std::uint64_t seed = 2) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(20);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

TEST(ProtocolBehavior, QueuedDatagramsLeaveInFifoOrder) {
  auto c = cfg();
  c.mesh.hello_interval = Duration::minutes(10);  // keep the air quiet
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  s.start_all();
  s.run_for(Duration::minutes(11));  // initial randomized beacons exchange
  ASSERT_TRUE(s.node(0).routing_table().has_route(s.address_of(1)));
  sniffer.clear();

  // Queue six datagrams back-to-back; they serialize through CSMA and must
  // hit the air exactly in submission order.
  for (int i = 0; i < 6; ++i) {
    s.node(0).send_datagram(s.address_of(1), {static_cast<std::uint8_t>(i)});
  }
  s.run_for(Duration::minutes(2));
  std::vector<int> data_payload_order;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet) continue;
    if (const auto* d = std::get_if<DataPacket>(&*cap.packet)) {
      if (d->link.src == s.address_of(0) && !d->payload.empty()) {
        data_payload_order.push_back(d->payload[0]);
      }
    }
  }
  EXPECT_EQ(data_payload_order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ProtocolBehavior, ControlPacketsJumpTheDataQueue) {
  auto c = cfg(14);
  c.mesh.hello_interval = Duration::minutes(10);  // keep the air quiet
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  s.start_all();
  s.run_for(Duration::minutes(11));
  ASSERT_TRUE(s.node(0).routing_table().has_route(s.address_of(1)));
  sniffer.clear();

  // Three datagrams queue up (the first goes straight to the radio), then
  // a control packet arrives: it must overtake the waiting datagrams.
  for (int i = 0; i < 3; ++i) {
    s.node(0).send_datagram(s.address_of(1), {static_cast<std::uint8_t>(i)});
  }
  PollPacket poll;
  poll.link = LinkHeader{kUnassigned, s.address_of(0), PacketType::Poll};
  poll.route.final_dst = s.address_of(1);
  poll.route.origin = s.address_of(0);
  poll.route.ttl = 4;
  poll.seq = 1;
  s.node(0).submit_control(Packet{poll});
  s.run_for(Duration::minutes(1));

  std::vector<PacketType> order;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet) continue;
    const LinkHeader& link = link_of(*cap.packet);
    // Ignore periodic beacons; they ride the control queue on their own
    // schedule and are not part of the ordering under test.
    if (link.src != s.address_of(0) || link.type == PacketType::Routing) continue;
    order.push_back(link.type);
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], PacketType::Data);  // already committed to the radio
  EXPECT_EQ(order[1], PacketType::Poll);  // control overtakes
  EXPECT_EQ(order[2], PacketType::Data);
  EXPECT_EQ(order[3], PacketType::Data);
}

TEST(ProtocolBehavior, BeaconIntervalJitterIsBounded) {
  auto c = cfg(9);
  c.mesh.hello_jitter = 0.15;
  MeshScenario s(c);
  s.add_node({0.0, 0.0});
  Sniffer sniffer(s.simulator(), s.channel(), 99, {100.0, 0.0});
  s.start_all();
  s.run_for(Duration::hours(2));

  // Gaps between consecutive beacons: within hello * (1 +- jitter), and
  // actually spread (not constant).
  std::vector<double> gaps;
  double last = -1.0;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet ||
        link_of(*cap.packet).type != PacketType::Routing) {
      continue;
    }
    const double t = cap.at.seconds_d();
    if (last >= 0.0) gaps.push_back(t - last);
    last = t;
  }
  ASSERT_GT(gaps.size(), 100u);
  RunningStats stats;
  for (double g : gaps) {
    EXPECT_GE(g, 20.0 * 0.85 - 0.5);
    EXPECT_LE(g, 20.0 * 1.15 + 0.5);
    stats.add(g);
  }
  EXPECT_NEAR(stats.mean(), 20.0, 0.5);
  EXPECT_GT(stats.stddev(), 0.5);  // jitter actually applied
}

TEST(ProtocolBehavior, ZeroJitterBeaconsArePeriodic) {
  auto c = cfg(10);
  c.mesh.hello_jitter = 0.0;
  MeshScenario s(c);
  s.add_node({0.0, 0.0});
  Sniffer sniffer(s.simulator(), s.channel(), 99, {100.0, 0.0});
  s.start_all();
  s.run_for(Duration::minutes(20));

  double last = -1.0;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet || link_of(*cap.packet).type != PacketType::Routing) continue;
    const double t = cap.at.seconds_d();
    if (last >= 0.0) {
      EXPECT_NEAR(t - last, 20.0, 0.2);  // CSMA adds only milliseconds
    }
    last = t;
  }
}

TEST(ProtocolBehavior, BeaconContentTracksRoutingTable) {
  MeshScenario s(cfg(11));
  s.add_nodes(testbed::chain(3, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {400.0, 100.0});
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());
  sniffer.clear();
  s.run_for(Duration::seconds(45));  // capture a steady-state beacon round

  bool checked_middle = false;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet) continue;
    const auto* routing = std::get_if<RoutingPacket>(&*cap.packet);
    if (routing == nullptr || routing->link.src != s.address_of(1)) continue;
    checked_middle = true;
    // The middle node advertises itself (metric 0) and both ends (metric 1).
    ASSERT_EQ(routing->entries.size(), 3u);
    EXPECT_EQ(routing->entries[0].address, s.address_of(0));
    EXPECT_EQ(routing->entries[0].metric, 1);
    EXPECT_EQ(routing->entries[1].address, s.address_of(1));
    EXPECT_EQ(routing->entries[1].metric, 0);
    EXPECT_EQ(routing->entries[2].address, s.address_of(2));
    EXPECT_EQ(routing->entries[2].metric, 1);
  }
  EXPECT_TRUE(checked_middle);
}

TEST(ProtocolBehavior, ForwardedFrameRewritesLinkNotRoute) {
  MeshScenario s(cfg(12));
  s.add_nodes(testbed::chain(3, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {400.0, 100.0});
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());
  sniffer.clear();

  s.node(0).send_datagram(s.address_of(2), {0x77});
  s.run_for(Duration::seconds(10));

  std::vector<DataPacket> hops;
  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet) continue;
    if (const auto* d = std::get_if<DataPacket>(&*cap.packet)) hops.push_back(*d);
  }
  ASSERT_EQ(hops.size(), 2u);  // origin tx + one forward
  // Hop 1: 0 -> 1 on the link; end-to-end constants.
  EXPECT_EQ(hops[0].link.src, s.address_of(0));
  EXPECT_EQ(hops[0].link.dst, s.address_of(1));
  // Hop 2: link rewritten, route header's endpoints untouched.
  EXPECT_EQ(hops[1].link.src, s.address_of(1));
  EXPECT_EQ(hops[1].link.dst, s.address_of(2));
  for (const auto& h : hops) {
    EXPECT_EQ(h.route.origin, s.address_of(0));
    EXPECT_EQ(h.route.final_dst, s.address_of(2));
    EXPECT_EQ(h.payload, (std::vector<std::uint8_t>{0x77}));
  }
  EXPECT_EQ(hops[1].route.ttl, hops[0].route.ttl - 1);
  EXPECT_EQ(hops[1].route.hops, hops[0].route.hops + 1);
  EXPECT_EQ(hops[1].route.packet_id, hops[0].route.packet_id);
}

TEST(ProtocolBehavior, SessionPacketsAreUnicastOnTheAir) {
  // Regression: SYNC/FRAGMENT/ACK/... frames must carry a resolved next
  // hop, never the broadcast address — a broadcast fragment makes every
  // neighbor forward it (duplicate storms, found via this sniffer).
  MeshScenario s(cfg(15));
  s.add_nodes(testbed::chain(3, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {400.0, 100.0});
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());

  int outcome = -1;
  s.node(0).send_reliable(s.address_of(2), std::vector<std::uint8_t>(600, 1),
                          [&](bool ok) { outcome = ok ? 1 : 0; });
  int acked_outcome = -1;
  s.node(2).send_acked(s.address_of(0), {5},
                       [&](bool ok) { acked_outcome = ok ? 1 : 0; });
  s.run_for(Duration::minutes(3));
  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(acked_outcome, 1);

  for (const auto& cap : sniffer.captures()) {
    if (!cap.packet) continue;
    const LinkHeader& link = link_of(*cap.packet);
    if (link.type == PacketType::Routing) continue;  // legitimately broadcast
    EXPECT_NE(link.dst, kBroadcast) << describe(*cap.packet);
    EXPECT_NE(link.dst, kUnassigned) << describe(*cap.packet);
  }
}

TEST(ProtocolBehavior, AckedExchangeIsTwoFramesPerHop) {
  MeshScenario s(cfg(13));
  s.add_nodes(testbed::chain(2, 400.0));
  Sniffer sniffer(s.simulator(), s.channel(), 99, {200.0, 0.0});
  s.start_all();
  s.run_for(Duration::minutes(1));
  sniffer.clear();

  int outcome = -1;
  s.node(0).send_acked(s.address_of(1), {1}, [&](bool ok) { outcome = ok; });
  s.run_for(Duration::seconds(10));
  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(sniffer.count_of(PacketType::AckedData), 1u);
  EXPECT_EQ(sniffer.count_of(PacketType::Ack), 1u);
  EXPECT_EQ(sniffer.count_of(PacketType::Sync), 0u);  // no session machinery
}

}  // namespace
}  // namespace lm::net
