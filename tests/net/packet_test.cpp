#include "net/packet.h"

#include <gtest/gtest.h>

#include "support/assert.h"
#include "support/byte_codec.h"

namespace lm::net {
namespace {

RouteHeader route(Address dst, Address origin) {
  RouteHeader r;
  r.final_dst = dst;
  r.origin = origin;
  r.ttl = 16;
  r.hops = 2;
  r.packet_id = 777;
  return r;
}

template <typename T>
T round_trip(const T& packet) {
  const auto frame = encode(Packet{packet});
  EXPECT_EQ(frame.size(), encoded_size(Packet{packet}));
  auto decoded = decode(frame);
  EXPECT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::holds_alternative<T>(*decoded));
  return std::get<T>(*decoded);
}

TEST(PacketCodec, RoutingRoundTrip) {
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, 0x0001, PacketType::Routing};
  p.entries = {{0x0002, 1}, {0x0003, 2}, {0x0010, 5}};
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, EmptyRoutingTableIsValid) {
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, 0x0001, PacketType::Routing};
  EXPECT_EQ(round_trip(p), p);
  EXPECT_EQ(encoded_size(Packet{p}), kLinkHeaderSize + 1);
}

TEST(PacketCodec, DataRoundTrip) {
  DataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Data};
  p.route = route(0x0005, 0x0001);
  p.payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, EmptyDataPayloadRoundTrips) {
  DataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Data};
  p.route = route(0x0005, 0x0001);
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, MaxSizeDataFitsIn255) {
  DataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Data};
  p.route = route(0x0005, 0x0001);
  p.payload.assign(kMaxDataPayload, 0xEE);
  const auto frame = encode(Packet{p});
  EXPECT_EQ(frame.size(), 255u);
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, OversizedDataRejected) {
  DataPacket p;
  p.payload.assign(kMaxDataPayload + 1, 0);
  EXPECT_THROW(encode(Packet{p}), ContractViolation);
}

TEST(PacketCodec, SyncRoundTrip) {
  SyncPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Sync};
  p.route = route(0x0005, 0x0001);
  p.seq = 42;
  p.fragment_count = 69;
  p.total_bytes = 16384;
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, SyncAckDonePollRoundTrip) {
  SyncAckPacket a;
  a.link = LinkHeader{0x0001, 0x0005, PacketType::SyncAck};
  a.route = route(0x0001, 0x0005);
  a.seq = 42;
  EXPECT_EQ(round_trip(a), a);

  DonePacket d;
  d.link = LinkHeader{0x0001, 0x0005, PacketType::Done};
  d.route = route(0x0001, 0x0005);
  d.seq = 42;
  EXPECT_EQ(round_trip(d), d);

  PollPacket q;
  q.link = LinkHeader{0x0005, 0x0001, PacketType::Poll};
  q.route = route(0x0005, 0x0001);
  q.seq = 42;
  EXPECT_EQ(round_trip(q), q);
}

TEST(PacketCodec, FragmentRoundTrip) {
  FragmentPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Fragment};
  p.route = route(0x0005, 0x0001);
  p.seq = 3;
  p.index = 1234;
  p.payload.assign(kMaxFragmentPayload, 0x5A);
  const auto frame = encode(Packet{p});
  EXPECT_EQ(frame.size(), 255u);
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, AckedDataRoundTrip) {
  AckedDataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::AckedData};
  p.route = route(0x0005, 0x0001);
  p.payload = {9, 8, 7};
  EXPECT_EQ(round_trip(p), p);
  // Same MTU as plain datagrams.
  p.payload.assign(kMaxDataPayload, 0x11);
  EXPECT_EQ(encode(Packet{p}).size(), 255u);
  p.payload.push_back(0);
  EXPECT_THROW(encode(Packet{p}), ContractViolation);
}

TEST(PacketCodec, AckRoundTrip) {
  AckPacket p;
  p.link = LinkHeader{0x0001, 0x0005, PacketType::Ack};
  p.route = route(0x0001, 0x0005);
  p.acked_id = 0xBEEF;
  EXPECT_EQ(round_trip(p), p);
  auto frame = encode(Packet{p});
  frame.push_back(0x00);  // trailing garbage on a fixed-size packet
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(PacketCodec, LostRoundTrip) {
  LostPacket p;
  p.link = LinkHeader{0x0001, 0x0005, PacketType::Lost};
  p.route = route(0x0001, 0x0005);
  p.seq = 3;
  for (std::uint16_t i = 0; i < kMaxLostIndices; ++i) {
    p.missing.push_back(static_cast<std::uint16_t>(i * 3));
  }
  const auto frame = encode(Packet{p});
  EXPECT_LE(frame.size(), 255u);
  EXPECT_EQ(round_trip(p), p);
}

TEST(PacketCodec, LostOverCapacityRejected) {
  LostPacket p;
  p.missing.assign(kMaxLostIndices + 1, 0);
  EXPECT_THROW(encode(Packet{p}), ContractViolation);
}

TEST(PacketCodec, RoutingOverCapacityRejected) {
  RoutingPacket p;
  p.entries.assign(kMaxRoutingEntries + 1, RoutingEntry{});
  EXPECT_THROW(encode(Packet{p}), ContractViolation);
}

TEST(PacketCodec, DecodeRejectsTruncatedFrames) {
  DataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Data};
  p.route = route(0x0005, 0x0001);
  p.payload = {1, 2, 3};
  const auto frame = encode(Packet{p});
  // Every prefix strictly inside the headers must fail cleanly.
  for (std::size_t len = 0; len < kLinkHeaderSize + kRouteHeaderSize; ++len) {
    const std::vector<std::uint8_t> truncated(frame.begin(),
                                              frame.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode(truncated).has_value()) << "length " << len;
  }
}

TEST(PacketCodec, DecodeRejectsUnknownType) {
  std::vector<std::uint8_t> frame{0xFF, 0xFF, 0x01, 0x00, 0x99};
  EXPECT_FALSE(decode(frame).has_value());
  frame[4] = 0x00;
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(PacketCodec, DecodeRejectsTrailingGarbageOnFixedSizePackets) {
  SyncAckPacket a;
  a.link = LinkHeader{0x0001, 0x0005, PacketType::SyncAck};
  a.route = route(0x0001, 0x0005);
  a.seq = 1;
  auto frame = encode(Packet{a});
  frame.push_back(0xAB);
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(PacketCodec, DecodeRejectsTruncatedRoutingEntries) {
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, 0x0001, PacketType::Routing};
  p.entries = {{0x0002, 1}, {0x0003, 2}};
  auto frame = encode(Packet{p});
  frame.pop_back();  // half an entry
  EXPECT_FALSE(decode(frame).has_value());
}

TEST(PacketCodec, LinkAndRouteAccessors) {
  DataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Data};
  p.route = route(0x0005, 0x0001);
  Packet packet{p};
  EXPECT_EQ(link_of(packet).dst, 0x0002);
  ASSERT_NE(route_of(packet), nullptr);
  EXPECT_EQ(route_of(packet)->final_dst, 0x0005);

  RoutingPacket r;
  Packet routing{r};
  EXPECT_EQ(route_of(routing), nullptr);

  // Mutable accessors actually mutate.
  link_of(packet).dst = 0x0009;
  EXPECT_EQ(std::get<DataPacket>(packet).link.dst, 0x0009);
  route_of(packet)->ttl = 3;
  EXPECT_EQ(std::get<DataPacket>(packet).route.ttl, 3);
}

TEST(PacketCodec, DescribeMentionsTypeAndAddresses) {
  DataPacket p;
  p.link = LinkHeader{0x0002, 0x0001, PacketType::Data};
  p.route = route(0x0005, 0x0001);
  const std::string s = describe(Packet{p});
  EXPECT_NE(s.find("DATA"), std::string::npos);
  EXPECT_NE(s.find("0x0005"), std::string::npos);
}

TEST(PacketCodec, AddressToString) {
  EXPECT_EQ(to_string(Address{0x00A3}), "0x00A3");
  EXPECT_EQ(to_string(kBroadcast), "BCAST");
}

// Golden frames: byte-exact expectations pin the wire format. If one of
// these fails, the change breaks over-the-air compatibility — bump a
// protocol version, don't silently reshape frames.
TEST(PacketCodec, GoldenRoutingFrame) {
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, 0x0102, PacketType::Routing};
  p.entries = {{0x0304, 2, roles::kGateway}};
  EXPECT_EQ(to_hex(encode(Packet{p})),
            "FF FF 02 01 01 01 04 03 02 01");
}

TEST(PacketCodec, GoldenDataFrame) {
  DataPacket p;
  p.link = LinkHeader{0x0A0B, 0x0102, PacketType::Data};
  p.route = RouteHeader{0x0C0D, 0x0102, 16, 3, 0xBEEF};
  p.payload = {0x11, 0x22};
  EXPECT_EQ(to_hex(encode(Packet{p})),
            "0B 0A 02 01 02 0D 0C 02 01 10 03 EF BE 11 22");
}

TEST(PacketCodec, GoldenSyncFrame) {
  SyncPacket p;
  p.link = LinkHeader{0x0A0B, 0x0102, PacketType::Sync};
  p.route = RouteHeader{0x0C0D, 0x0102, 16, 0, 1};
  p.seq = 7;
  p.fragment_count = 0x0203;
  p.total_bytes = 0x04050607;
  EXPECT_EQ(to_hex(encode(Packet{p})),
            "0B 0A 02 01 03 0D 0C 02 01 10 00 01 00 07 03 02 07 06 05 04");
}

TEST(PacketCodec, GoldenAckFrame) {
  AckPacket p;
  p.link = LinkHeader{0x0A0B, 0x0102, PacketType::Ack};
  p.route = RouteHeader{0x0C0D, 0x0102, 16, 0, 1};
  p.acked_id = 0x1234;
  EXPECT_EQ(to_hex(encode(Packet{p})),
            "0B 0A 02 01 0A 0D 0C 02 01 10 00 01 00 34 12");
}

TEST(PacketCodec, GoldenLostFrame) {
  LostPacket p;
  p.link = LinkHeader{0x0A0B, 0x0102, PacketType::Lost};
  p.route = RouteHeader{0x0C0D, 0x0102, 16, 0, 1};
  p.seq = 7;
  p.missing = {0x0001, 0x0100};
  EXPECT_EQ(to_hex(encode(Packet{p})),
            "0B 0A 02 01 06 0D 0C 02 01 10 00 01 00 07 02 01 00 00 01");
}

TEST(PacketCodec, MtuConstantsAreConsistent) {
  EXPECT_EQ(kMaxDataPayload, 242u);
  EXPECT_EQ(kMaxFragmentPayload, 239u);
  EXPECT_EQ(kMaxLostIndices, 120u);
  EXPECT_EQ(kMaxRoutingEntries, 62u);
}

}  // namespace
}  // namespace lm::net
