#include "net/duty_cycle.h"

#include <gtest/gtest.h>

#include "support/assert.h"

namespace lm::net {
namespace {

TimePoint at(int seconds) { return TimePoint::origin() + Duration::seconds(seconds); }

TEST(DutyCycle, BudgetIsLimitTimesWindow) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  EXPECT_EQ(d.budget(), Duration::seconds(36));
  EXPECT_TRUE(d.enforced());
}

TEST(DutyCycle, AllowsWithinBudget) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  EXPECT_TRUE(d.allowed(at(0), Duration::seconds(36)));
  EXPECT_FALSE(d.allowed(at(0), Duration::seconds(37)));
}

TEST(DutyCycle, RecordsConsumeBudget) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  d.record(at(0), Duration::seconds(20));
  EXPECT_EQ(d.consumed(at(10)), Duration::seconds(20));
  EXPECT_TRUE(d.allowed(at(10), Duration::seconds(16)));
  EXPECT_FALSE(d.allowed(at(10), Duration::seconds(17)));
}

TEST(DutyCycle, BudgetFreesWhenEmissionLeavesWindow) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  d.record(at(0), Duration::seconds(36));  // budget exhausted
  EXPECT_FALSE(d.allowed(at(1800), Duration::seconds(1)));
  // The emission leaves the window exactly one hour after its start.
  EXPECT_TRUE(d.allowed(at(3600), Duration::seconds(36)));
  EXPECT_EQ(d.consumed(at(3600)), Duration::zero());
}

TEST(DutyCycle, NextAllowedIsNowWhenWithinBudget) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  EXPECT_EQ(d.next_allowed(at(5), Duration::seconds(10)), at(5));
}

TEST(DutyCycle, NextAllowedWaitsForOldestExpiry) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  d.record(at(0), Duration::seconds(30));
  d.record(at(100), Duration::seconds(6));  // budget now full
  // Requesting 5 s: the t=0 emission must leave the window first.
  EXPECT_EQ(d.next_allowed(at(200), Duration::seconds(5)), at(3600));
  // Requesting 36 s: both must leave.
  EXPECT_EQ(d.next_allowed(at(200), Duration::seconds(36)), at(3700));
}

TEST(DutyCycle, NextAllowedRejectsRequestOverTotalBudget) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  EXPECT_THROW(d.next_allowed(at(0), Duration::seconds(37)), ContractViolation);
}

TEST(DutyCycle, UtilizationTracksConsumption) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  EXPECT_DOUBLE_EQ(d.utilization(at(0)), 0.0);
  d.record(at(0), Duration::seconds(18));
  EXPECT_NEAR(d.utilization(at(10)), 0.005, 1e-9);
}

TEST(DutyCycle, DisabledLimiterAllowsEverything) {
  DutyCycleLimiter d(1.0, Duration::hours(1));
  EXPECT_FALSE(d.enforced());
  EXPECT_TRUE(d.allowed(at(0), Duration::hours(2)));
  EXPECT_EQ(d.next_allowed(at(7), Duration::hours(2)), at(7));
  d.record(at(0), Duration::hours(2));  // not even tracked
  EXPECT_TRUE(d.allowed(at(1), Duration::hours(2)));
}

TEST(DutyCycle, RejectsOutOfOrderRecords) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  d.record(at(100), Duration::seconds(1));
  EXPECT_THROW(d.record(at(50), Duration::seconds(1)), ContractViolation);
}

TEST(DutyCycle, RejectsInvalidConstruction) {
  EXPECT_THROW(DutyCycleLimiter(0.0, Duration::hours(1)), ContractViolation);
  EXPECT_THROW(DutyCycleLimiter(0.01, Duration::zero()), ContractViolation);
}

TEST(DutyCycle, ManySmallEmissionsAccumulate) {
  DutyCycleLimiter d(0.01, Duration::hours(1));
  // 100 frames of 360 ms each = exactly the 36 s budget.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(d.allowed(at(i), Duration::milliseconds(360))) << i;
    d.record(at(i), Duration::milliseconds(360));
  }
  EXPECT_FALSE(d.allowed(at(100), Duration::milliseconds(1)));
  // One hour after the first frame, exactly one frame's budget is back.
  EXPECT_TRUE(d.allowed(at(3600), Duration::milliseconds(360)));
  EXPECT_FALSE(d.allowed(at(3600), Duration::milliseconds(721)));
}

}  // namespace
}  // namespace lm::net
