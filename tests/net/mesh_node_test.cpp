// Integration tests: full MeshNode protocol behaviour over the simulated
// radio channel. Topology is controlled through propagation physics — with
// log-distance exponent 3.5 and 400 m spacing, adjacent chain nodes decode
// ~perfectly while two-hop neighbors sit below sensitivity — so multi-hop
// behaviour emerges exactly as on the paper's campus testbed.
#include "net/mesh_node.h"

#include <gtest/gtest.h>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;
using testbed::ScenarioConfig;

constexpr double kSpacing = 400.0;  // adjacent decodes, 2-hop does not

ScenarioConfig fast_config(std::uint64_t seed = 1) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.forward_jitter = Duration::milliseconds(50);
  c.mesh.duty_cycle_limit = 1.0;  // not under test here
  // Reliable-transfer pacing sized for SF7 frames over short chains.
  c.mesh.reliable_retry_timeout = Duration::seconds(8);
  c.mesh.receiver_gap_timeout = Duration::seconds(10);
  c.mesh.fragment_spacing = Duration::milliseconds(50);
  return c;
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> list) {
  std::vector<std::uint8_t> v;
  for (int x : list) v.push_back(static_cast<std::uint8_t>(x));
  return v;
}

TEST(MeshNodeIntegration, TwoNodesDiscoverEachOther) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));  // two beacon rounds

  const auto r01 = s.node(0).routing_table().route_to(s.address_of(1));
  const auto r10 = s.node(1).routing_table().route_to(s.address_of(0));
  ASSERT_TRUE(r01.has_value());
  ASSERT_TRUE(r10.has_value());
  EXPECT_EQ(r01->metric, 1);
  EXPECT_EQ(r10->metric, 1);
  EXPECT_GE(s.node(0).stats().beacons_sent, 2u);
  EXPECT_GE(s.node(0).stats().beacons_received, 2u);
}

TEST(MeshNodeIntegration, ChainConvergesToShortestPaths) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  const auto elapsed = s.run_until_converged(Duration::minutes(5));
  ASSERT_TRUE(elapsed.has_value());

  // End node sees the whole chain with hop-count metrics 1, 2, 3.
  const RoutingTable& t = s.node(0).routing_table();
  EXPECT_EQ(t.route_to(s.address_of(1))->metric, 1);
  EXPECT_EQ(t.route_to(s.address_of(2))->metric, 2);
  EXPECT_EQ(t.route_to(s.address_of(3))->metric, 3);
  EXPECT_EQ(t.route_to(s.address_of(3))->via, s.address_of(1));
}

TEST(MeshNodeIntegration, PhysicsEnforcesMultiHop) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(3, kSpacing));
  EXPECT_TRUE(s.good_link(0, 1));
  EXPECT_TRUE(s.good_link(1, 2));
  EXPECT_FALSE(s.good_link(0, 2));  // out of direct range
}

TEST(MeshNodeIntegration, DatagramDeliveredAcrossThreeHops) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  Address got_origin = kUnassigned;
  std::vector<std::uint8_t> got_payload;
  std::uint8_t got_hops = 0;
  int deliveries = 0;
  s.node(3).set_datagram_handler(
      [&](Address origin, const std::vector<std::uint8_t>& payload,
          std::uint8_t hops) {
        ++deliveries;
        got_origin = origin;
        got_payload = payload;
        got_hops = hops;
      });

  const auto payload = bytes({1, 2, 3, 4, 5});
  ASSERT_TRUE(s.node(0).send_datagram(s.address_of(3), payload));
  s.run_for(Duration::seconds(30));

  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(got_origin, s.address_of(0));
  EXPECT_EQ(got_payload, payload);
  EXPECT_EQ(got_hops, 3);
  EXPECT_EQ(s.node(1).stats().packets_forwarded +
                s.node(2).stats().packets_forwarded, 2u);
  EXPECT_EQ(s.node(3).stats().datagrams_delivered, 1u);
}

TEST(MeshNodeIntegration, SendValidationRejectsBadArguments) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));

  MeshNode& n = s.node(0);
  EXPECT_FALSE(n.send_datagram(n.address(), bytes({1})));       // to self
  EXPECT_FALSE(n.send_datagram(kBroadcast, bytes({1})));        // wrong API
  EXPECT_FALSE(n.send_datagram(kUnassigned, bytes({1})));
  EXPECT_FALSE(n.send_datagram(s.address_of(1),
                               std::vector<std::uint8_t>(kMaxDataPayload + 1)));
  EXPECT_FALSE(n.send_datagram(0x7777, bytes({1})));            // no route
  EXPECT_GE(n.stats().dropped_no_route, 1u);
}

TEST(MeshNodeIntegration, SendBeforeConvergenceIsRefused) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  // No beacons yet: no routes.
  EXPECT_FALSE(s.node(0).send_datagram(s.address_of(1), bytes({1})));
}

TEST(MeshNodeIntegration, BroadcastReachesNeighborsOnlyOnce) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));

  int at_1 = 0, at_2 = 0;
  s.node(1).set_broadcast_handler(
      [&](Address, const std::vector<std::uint8_t>&) { ++at_1; });
  s.node(2).set_broadcast_handler(
      [&](Address, const std::vector<std::uint8_t>&) { ++at_2; });

  ASSERT_TRUE(s.node(0).send_broadcast(bytes({9, 9})));
  s.run_for(Duration::seconds(10));
  EXPECT_EQ(at_1, 1);  // direct neighbor hears it
  EXPECT_EQ(at_2, 0);  // broadcasts are never forwarded
  EXPECT_EQ(s.node(0).stats().broadcasts_sent, 1u);
  EXPECT_EQ(s.node(1).stats().broadcasts_delivered, 1u);
}

TEST(MeshNodeIntegration, RoutesExpireAfterNodeFailure) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());
  ASSERT_TRUE(s.node(0).routing_table().has_route(s.address_of(2)));

  s.fail_node(1);
  // Route timeout = 10 hello intervals = 100 s; add slack for maintenance.
  s.run_for(Duration::seconds(120));
  EXPECT_FALSE(s.node(0).routing_table().has_route(s.address_of(1)));
  EXPECT_FALSE(s.node(0).routing_table().has_route(s.address_of(2)));
}

TEST(MeshNodeIntegration, RouteRepairsOverAlternatePath) {
  // Diamond: 0 - {1, 2} - 3, with 1 and 2 parallel relays.
  MeshScenario s(fast_config());
  s.add_node({0.0, 0.0});
  s.add_node({kSpacing, 150.0});
  s.add_node({kSpacing, -150.0});
  s.add_node({2 * kSpacing, 0.0});
  // The parallel relays can hear each other (300 m) — that is fine.
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5), Duration::seconds(5),
                                    0.9, /*exact_metric=*/false)
                  .has_value());
  const auto first = s.node(0).routing_table().route_to(s.address_of(3));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->metric, 2);

  // Kill whichever relay carries the route; the other must take over.
  const std::size_t dead = *s.index_of(first->via);
  const std::size_t alive = dead == 1 ? 2 : 1;
  s.fail_node(dead);
  s.run_for(Duration::minutes(4));  // expiry + re-advertisement

  const auto repaired = s.node(0).routing_table().route_to(s.address_of(3));
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(repaired->via, s.address_of(alive));
  EXPECT_EQ(repaired->metric, 2);
}

TEST(MeshNodeIntegration, ReliableTransferAcrossTwoHops) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  std::vector<std::uint8_t> payload(2000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i % 251);
  }
  std::vector<std::uint8_t> received;
  s.node(2).set_reliable_handler(
      [&](Address, std::vector<std::uint8_t> data) { received = std::move(data); });

  int outcome = -1;
  ASSERT_TRUE(s.node(0).send_reliable(s.address_of(2), payload,
                                      [&](bool ok) { outcome = ok ? 1 : 0; }));
  s.run_for(Duration::minutes(3));

  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(received, payload);
  EXPECT_EQ(s.node(0).stats().transfers_completed, 1u);
  EXPECT_EQ(s.node(2).stats().transfers_received, 1u);
  EXPECT_GE(s.node(0).stats().fragments_sent, 9u);  // ceil(2000/239)
}

TEST(MeshNodeIntegration, ReliableTransferSurvivesLossyLinks) {
  auto cfg = fast_config(77);
  MeshScenario s(cfg);
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());
  // 20 % independent loss on both hops, both directions.
  s.channel().set_link_extra_loss(1, 2, 0.2);
  s.channel().set_link_extra_loss(2, 3, 0.2);

  std::vector<std::uint8_t> payload(3000, 0x3C);
  std::vector<std::uint8_t> received;
  s.node(2).set_reliable_handler(
      [&](Address, std::vector<std::uint8_t> data) { received = std::move(data); });
  int outcome = -1;
  ASSERT_TRUE(s.node(0).send_reliable(s.address_of(2), payload,
                                      [&](bool ok) { outcome = ok ? 1 : 0; }));
  s.run_for(Duration::minutes(15));

  EXPECT_EQ(outcome, 1);
  EXPECT_EQ(received, payload);
}

TEST(MeshNodeIntegration, ReliableTransferFailsWhenReceiverDies) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  int outcome = -1;
  ASSERT_TRUE(s.node(0).send_reliable(s.address_of(2),
                                      std::vector<std::uint8_t>(1000, 1),
                                      [&](bool ok) { outcome = ok ? 1 : 0; }));
  s.fail_node(2);  // dies before anything arrives
  s.run_for(Duration::minutes(10));
  EXPECT_EQ(outcome, 0);
  EXPECT_EQ(s.node(0).stats().transfers_failed, 1u);
}

TEST(MeshNodeIntegration, ReliableSendValidation) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));
  MeshNode& n = s.node(0);
  EXPECT_FALSE(n.send_reliable(n.address(), bytes({1}), nullptr));
  EXPECT_FALSE(n.send_reliable(kBroadcast, bytes({1}), nullptr));
  EXPECT_FALSE(n.send_reliable(s.address_of(1), {}, nullptr));  // empty
  EXPECT_FALSE(n.send_reliable(0x7777, bytes({1}), nullptr));   // no route
}

TEST(MeshNodeIntegration, DutyCycleLimiterDefersTraffic) {
  auto cfg = fast_config();
  cfg.mesh.duty_cycle_limit = 0.001;  // 3.6 s of airtime per hour
  cfg.mesh.duty_cycle_window = Duration::hours(1);
  MeshScenario s(cfg);
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));

  // Blast datagrams: ~58 ms each at SF7; 100 of them far exceeds 3.6 s.
  for (int i = 0; i < 60; ++i) {
    s.node(0).send_datagram(s.address_of(1), std::vector<std::uint8_t>(50, 1));
  }
  s.run_for(Duration::minutes(30));
  EXPECT_GT(s.node(0).stats().duty_cycle_delays, 0u);
  // The limiter keeps measured utilization at or under the cap.
  EXPECT_LE(s.node(0).duty_cycle().utilization(s.simulator().now()), 0.001 + 1e-9);
}

TEST(MeshNodeIntegration, QueueOverflowDrops) {
  auto cfg = fast_config();
  cfg.mesh.max_queue = 4;
  MeshScenario s(cfg);
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));
  for (int i = 0; i < 20; ++i) {
    s.node(0).send_datagram(s.address_of(1), bytes({1, 2, 3}));
  }
  EXPECT_GT(s.node(0).stats().dropped_queue_full, 0u);
}

TEST(MeshNodeIntegration, StoppedNodeGoesSilent) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));
  s.node(0).stop();
  const auto beacons_before = s.node(0).stats().beacons_sent;
  s.run_for(Duration::minutes(2));
  EXPECT_EQ(s.node(0).stats().beacons_sent, beacons_before);
  EXPECT_EQ(s.radio(0).state(), radio::RadioState::Sleep);
  EXPECT_FALSE(s.node(0).send_datagram(s.address_of(1), bytes({1})));
}

TEST(MeshNodeIntegration, ControlAndDataAccountingSeparate) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));
  EXPECT_GT(s.node(0).stats().control_bytes_sent, 0u);  // beacons
  EXPECT_EQ(s.node(0).stats().data_bytes_sent, 0u);

  s.node(0).send_datagram(s.address_of(1), bytes({1, 2, 3, 4}));
  s.run_for(Duration::seconds(5));
  EXPECT_GT(s.node(0).stats().data_bytes_sent, 0u);
  EXPECT_GT(s.node(0).stats().data_airtime, Duration::zero());
}

TEST(MeshNodeIntegration, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    MeshScenario s(fast_config(seed));
    s.add_nodes(testbed::chain(4, kSpacing));
    metrics::PacketTracker tracker;
    testbed::attach_tracker(s, tracker);
    s.start_all();
    s.run_for(Duration::seconds(40));
    testbed::DatagramTraffic traffic(s, tracker, 0, 3,
                                     {Duration::seconds(5), 16, true}, seed + 99);
    traffic.start();
    s.run_for(Duration::minutes(10));
    const auto total = s.total_stats();
    return std::tuple{total.beacons_sent, total.beacons_received,
                      total.packets_forwarded, tracker.delivered(),
                      tracker.attempted()};
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(MeshNodeIntegration, MalformedFramesAreCounted) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));

  // A rogue radio on the same channel spews garbage.
  radio::VirtualRadio rogue(s.simulator(), s.channel(), 99, {100.0, 0.0}, {});
  rogue.transmit({0xDE, 0xAD});  // 2 bytes: not even a link header
  s.run_for(Duration::seconds(5));
  EXPECT_EQ(s.node(0).stats().malformed_frames, 1u);
  EXPECT_EQ(s.node(1).stats().malformed_frames, 1u);
}

TEST(MeshNodeIntegration, ForeignUnicastIgnored) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  int delivered_at_wrong_node = 0;
  s.node(1).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++delivered_at_wrong_node;
      });
  // 0 -> 2 passes through 1 as a relay; 1 must forward, not consume.
  s.node(0).send_datagram(s.address_of(2), bytes({5}));
  s.run_for(Duration::seconds(20));
  EXPECT_EQ(delivered_at_wrong_node, 0);
  EXPECT_EQ(s.node(2).stats().datagrams_delivered, 1u);
}

TEST(MeshNodeIntegration, TtlExhaustionDropsLoopedPackets) {
  auto cfg = fast_config();
  cfg.mesh.max_ttl = 2;  // one relay max
  MeshScenario s(cfg);
  s.add_nodes(testbed::chain(4, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  int delivered = 0;
  s.node(3).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) { ++delivered; });
  s.node(0).send_datagram(s.address_of(3), bytes({1}));  // needs 3 hops
  s.run_for(Duration::seconds(30));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(s.node(2).stats().dropped_ttl, 1u);  // died at the second relay
}

TEST(MeshNodeIntegration, GatewayRoleDiscoveredAcrossTheMesh) {
  MeshScenario s(fast_config());
  const auto positions = testbed::chain(4, kSpacing);
  s.add_node(positions[0]);
  s.add_node(positions[1]);
  s.add_node(positions[2]);
  s.add_node(positions[3], roles::kGateway);  // far end bridges to the world
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  // The opposite end discovers the gateway 3 hops away, via its neighbor.
  const auto gw = s.node(0).nearest_with_role(roles::kGateway);
  ASSERT_TRUE(gw.has_value());
  EXPECT_EQ(gw->destination, s.address_of(3));
  EXPECT_EQ(gw->metric, 3);
  EXPECT_EQ(gw->via, s.address_of(1));
  // A node with no gateway in sight reports none for other role bits.
  EXPECT_FALSE(s.node(0).nearest_with_role(roles::kSink).has_value());
  EXPECT_EQ(s.node(3).role(), roles::kGateway);
}

TEST(MeshNodeIntegration, NearerGatewayWinsDiscovery) {
  MeshScenario s(fast_config());
  const auto positions = testbed::chain(5, kSpacing);
  s.add_node(positions[0]);
  s.add_node(positions[1], roles::kGateway);
  s.add_node(positions[2]);
  s.add_node(positions[3]);
  s.add_node(positions[4], roles::kGateway);
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(10)).has_value());
  const auto gw = s.node(2).nearest_with_role(roles::kGateway);
  ASSERT_TRUE(gw.has_value());
  EXPECT_EQ(gw->destination, s.address_of(1));  // 1 hop beats 2 hops
  EXPECT_EQ(gw->metric, 1);
}

TEST(MeshNodeIntegration, ConcurrentBidirectionalTransfers) {
  // Both chain ends push a reliable payload at each other at once, while a
  // third transfer rides the same relay: sessions must not cross wires.
  MeshScenario s(fast_config(21));
  s.add_nodes(testbed::chain(3, kSpacing));
  s.start_all();
  ASSERT_TRUE(s.run_until_converged(Duration::minutes(5)).has_value());

  std::vector<std::uint8_t> a_payload(1500, 0xA1);
  std::vector<std::uint8_t> b_payload(900, 0xB2);
  std::vector<std::uint8_t> c_payload(600, 0xC3);
  int done = 0, ok = 0;
  auto cb = [&](bool success) {
    ++done;
    if (success) ++ok;
  };
  std::vector<std::uint8_t> at_2, at_0a, at_0b;
  s.node(2).set_reliable_handler(
      [&](Address, std::vector<std::uint8_t> d) { at_2 = std::move(d); });
  s.node(0).set_reliable_handler(
      [&](Address origin, std::vector<std::uint8_t> d) {
        (origin == s.address_of(2) ? at_0a : at_0b) = std::move(d);
      });

  ASSERT_TRUE(s.node(0).send_reliable(s.address_of(2), a_payload, cb));
  ASSERT_TRUE(s.node(2).send_reliable(s.address_of(0), b_payload, cb));
  ASSERT_TRUE(s.node(1).send_reliable(s.address_of(0), c_payload, cb));
  s.run_for(Duration::minutes(10));

  EXPECT_EQ(done, 3);
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(at_2, a_payload);
  EXPECT_EQ(at_0a, b_payload);
  EXPECT_EQ(at_0b, c_payload);
}

TEST(MeshNodeIntegration, RestartAfterStopRejoinsMesh) {
  MeshScenario s(fast_config());
  s.add_nodes(testbed::chain(2, kSpacing));
  s.start_all();
  s.run_for(Duration::seconds(25));
  s.node(0).stop();
  s.run_for(Duration::minutes(3));  // long enough for 1 to expire the route
  EXPECT_FALSE(s.node(1).routing_table().has_route(s.address_of(0)));

  s.node(0).start();
  s.run_for(Duration::seconds(40));
  EXPECT_TRUE(s.node(1).routing_table().has_route(s.address_of(0)));
  EXPECT_TRUE(s.node(0).routing_table().has_route(s.address_of(1)));
}

}  // namespace
}  // namespace lm::net
