#include "net/routing_table.h"

#include <gtest/gtest.h>

#include "support/assert.h"

namespace lm::net {
namespace {

constexpr Address kSelf = 0x0001;
constexpr Address kA = 0x000A;
constexpr Address kB = 0x000B;
constexpr Address kC = 0x000C;

const Duration kTimeout = Duration::minutes(10);

TimePoint at(int seconds) { return TimePoint::origin() + Duration::seconds(seconds); }

TEST(RoutingTable, StartsEmpty) {
  RoutingTable t(kSelf, kTimeout);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.has_route(kA));
  EXPECT_FALSE(t.next_hop(kA).has_value());
}

TEST(RoutingTable, LearnsSenderAsDirectNeighbor) {
  RoutingTable t(kSelf, kTimeout);
  EXPECT_TRUE(t.apply_beacon(kA, {}, at(0)));
  const auto r = t.route_to(kA);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->via, kA);
  EXPECT_EQ(r->metric, 1);
}

TEST(RoutingTable, LearnsAdvertisedRoutesPlusOneHop) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kB, 1}, {kC, 3}}, at(0));
  ASSERT_TRUE(t.route_to(kB).has_value());
  EXPECT_EQ(t.route_to(kB)->metric, 2);
  EXPECT_EQ(t.route_to(kB)->via, kA);
  EXPECT_EQ(t.route_to(kC)->metric, 4);
}

TEST(RoutingTable, IgnoresAdvertisementsOfSelf) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kSelf, 1}}, at(0));
  EXPECT_EQ(t.size(), 1u);  // only the neighbor itself
  EXPECT_FALSE(t.has_route(kSelf));
}

TEST(RoutingTable, IgnoresReservedAddresses) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kBroadcast, 1}, {kUnassigned, 1}}, at(0));
  EXPECT_EQ(t.size(), 1u);
}

TEST(RoutingTable, AdoptsStrictlyBetterRoute) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 4}}, at(0));  // C at 5 via A
  EXPECT_EQ(t.route_to(kC)->metric, 5);
  EXPECT_TRUE(t.apply_beacon(kB, {{kC, 1}}, at(1)));  // C at 2 via B: better
  EXPECT_EQ(t.route_to(kC)->metric, 2);
  EXPECT_EQ(t.route_to(kC)->via, kB);
}

TEST(RoutingTable, KeepsCurrentRouteOnEqualMetric) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 2}}, at(0));
  t.apply_beacon(kB, {{kC, 2}}, at(1));  // same metric via B: no churn
  EXPECT_EQ(t.route_to(kC)->via, kA);
}

TEST(RoutingTable, FollowsNextHopWhenItsMetricWorsens) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 1}}, at(0));
  EXPECT_EQ(t.route_to(kC)->metric, 2);
  // A now reports C further away; we must follow (bad news sticks).
  EXPECT_TRUE(t.apply_beacon(kA, {{kC, 5}}, at(1)));
  EXPECT_EQ(t.route_to(kC)->metric, 6);
}

TEST(RoutingTable, WithdrawsRouteWhenNextHopSaturates) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 2}}, at(0));
  EXPECT_TRUE(t.has_route(kC));
  EXPECT_TRUE(t.apply_beacon(kA, {{kC, kInfiniteMetric}}, at(1)));
  EXPECT_FALSE(t.has_route(kC));
}

TEST(RoutingTable, NeverInstallsSaturatedRoute) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, kInfiniteMetric - 1}}, at(0));
  // candidate = infinity: unreachable, not stored.
  EXPECT_FALSE(t.has_route(kC));
}

TEST(RoutingTable, IgnoresWorseRouteFromOtherNeighbor) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 1}}, at(0));
  EXPECT_FALSE(t.apply_beacon(kB, {{kC, 7}}, at(1)) &&
               t.route_to(kC)->via == kB);
  EXPECT_EQ(t.route_to(kC)->metric, 2);
  EXPECT_EQ(t.route_to(kC)->via, kA);
}

TEST(RoutingTable, DirectNeighborBeatsLongerPath) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kB, 1}}, at(0));  // B at 2 via A
  t.apply_beacon(kB, {}, at(1));         // B heard directly
  EXPECT_EQ(t.route_to(kB)->metric, 1);
  EXPECT_EQ(t.route_to(kB)->via, kB);
}

TEST(RoutingTable, ExpiryRemovesSilentRoutes) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 1}}, at(0));
  EXPECT_EQ(t.expire(at(0) + kTimeout - Duration::seconds(1)), 0u);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.expire(at(0) + kTimeout), 2u);
  EXPECT_EQ(t.size(), 0u);
}

TEST(RoutingTable, RefreshPostponesExpiry) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 1}}, at(0));
  t.apply_beacon(kA, {{kC, 1}}, at(300));  // refresh at +5 min
  EXPECT_EQ(t.expire(at(0) + kTimeout), 0u);
  EXPECT_TRUE(t.has_route(kC));
  EXPECT_EQ(t.expire(at(300) + kTimeout), 2u);
}

TEST(RoutingTable, OtherNeighborsAdvertisementDoesNotRefresh) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 1}}, at(0));   // C via A
  t.apply_beacon(kB, {{kC, 5}}, at(500)); // worse; must not refresh C's timer
  t.expire(at(0) + kTimeout);
  EXPECT_FALSE(t.has_route(kC));
  EXPECT_TRUE(t.has_route(kB));  // B itself was refreshed at t=500
}

TEST(RoutingTable, SilentNeighborTakesItsRoutesWithIt) {
  // Every beacon from A refreshes both A's entry and the routes via A, so
  // when A goes silent they all lapse together: next_hop() can never return
  // a neighbor that is no longer in the table.
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {}, at(0));
  t.apply_beacon(kA, {{kC, 1}}, at(100));
  const std::size_t removed = t.expire(at(100) + kTimeout);
  EXPECT_EQ(removed, 2u);
  EXPECT_FALSE(t.has_route(kC));
  EXPECT_FALSE(t.has_route(kA));
}

TEST(RoutingTable, AdvertisementListsDestinationAndMetricSorted) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kB, {{kC, 1}}, at(0));
  t.apply_beacon(kA, {}, at(0));
  const auto adv = t.advertisement();
  ASSERT_EQ(adv.size(), 4u);
  EXPECT_EQ(adv[0].address, kSelf);  // metric-0 self entry carries the role
  EXPECT_EQ(adv[0].metric, 0);
  EXPECT_EQ(adv[1].address, kA);
  EXPECT_EQ(adv[2].address, kB);
  EXPECT_EQ(adv[3].address, kC);
  EXPECT_EQ(adv[3].metric, 2);
}

TEST(RoutingTable, AdvertisementTruncatesKeepingNearestRoutes) {
  RoutingTable t(kSelf, kTimeout);
  // One direct neighbor plus kMaxRoutingEntries far routes.
  std::vector<RoutingEntry> far;
  for (std::uint16_t i = 0; i < kMaxRoutingEntries; ++i) {
    far.push_back({static_cast<Address>(0x1000 + i), 10});
  }
  t.apply_beacon(kA, far, at(0));
  EXPECT_EQ(t.size(), kMaxRoutingEntries + 1);
  const auto adv = t.advertisement();
  EXPECT_EQ(adv.size(), kMaxRoutingEntries);
  // The 1-hop neighbor survived truncation.
  bool has_neighbor = false;
  for (const auto& e : adv) {
    if (e.address == kA) has_neighbor = (e.metric == 1);
  }
  EXPECT_TRUE(has_neighbor);
}

TEST(RoutingTable, OwnBeaconEchoIgnored) {
  RoutingTable t(kSelf, kTimeout);
  EXPECT_FALSE(t.apply_beacon(kSelf, {{kA, 1}}, at(0)));
  EXPECT_EQ(t.size(), 0u);
}

TEST(RoutingTable, MetricSaturatesAtMax) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, kInfiniteMetric - 2}}, at(0));
  ASSERT_TRUE(t.has_route(kC));
  EXPECT_EQ(t.route_to(kC)->metric, kInfiniteMetric - 1);
  // One more hop would saturate: route_to treats it as unreachable.
  t.apply_beacon(kA, {{kC, kInfiniteMetric - 1}}, at(1));
  EXPECT_FALSE(t.has_route(kC));
}

TEST(RoutingTable, RejectsInvalidConstruction) {
  EXPECT_THROW(RoutingTable(kUnassigned, kTimeout), ContractViolation);
  EXPECT_THROW(RoutingTable(kBroadcast, kTimeout), ContractViolation);
  EXPECT_THROW(RoutingTable(kSelf, Duration::zero()), ContractViolation);
}

TEST(RoutingTable, RejectsZeroMetricClaimsForThirdParties) {
  // Only the sender's own self entry may carry metric 0; believing
  // (C, metric 0) from A would create a bogus 1-hop route to C via A.
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kC, 0}}, at(0));
  EXPECT_FALSE(t.has_route(kC));
  EXPECT_TRUE(t.has_route(kA));
}

TEST(RoutingTable, RolesPropagateFromAdvertisements) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kA, 0, roles::kGateway}, {kC, 1, roles::kSink}}, at(0));
  EXPECT_EQ(t.route_to(kA)->role, roles::kGateway);
  EXPECT_EQ(t.route_to(kC)->role, roles::kSink);
}

TEST(RoutingTable, RoleChangeIsAnUpdate) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kA, 0, roles::kNone}}, at(0));
  EXPECT_TRUE(t.apply_beacon(kA, {{kA, 0, roles::kGateway}}, at(1)));
  EXPECT_EQ(t.route_to(kA)->role, roles::kGateway);
  EXPECT_FALSE(t.apply_beacon(kA, {{kA, 0, roles::kGateway}}, at(2)));
}

TEST(RoutingTable, NearestWithRolePicksLowestMetric) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kA, 0, roles::kGateway}, {kC, 3, roles::kGateway}}, at(0));
  const auto gw = t.nearest_with_role(roles::kGateway);
  ASSERT_TRUE(gw.has_value());
  EXPECT_EQ(gw->destination, kA);
  EXPECT_EQ(gw->metric, 1);
  EXPECT_EQ(t.routes_with_role(roles::kGateway).size(), 2u);
}

TEST(RoutingTable, NearestWithRoleRequiresAllBits) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kA, 0, roles::kGateway}}, at(0));
  t.apply_beacon(kB,
                 {{kB, 0, static_cast<Role>(roles::kGateway | roles::kSink)}},
                 at(0));
  const auto both = t.nearest_with_role(
      static_cast<Role>(roles::kGateway | roles::kSink));
  ASSERT_TRUE(both.has_value());
  EXPECT_EQ(both->destination, kB);
  EXPECT_FALSE(t.nearest_with_role(roles::kRelayOnly).has_value());
}

TEST(RoutingTable, NearestWithRoleTieBreaksByAddress) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kB, {{kB, 0, roles::kGateway}}, at(0));
  t.apply_beacon(kA, {{kA, 0, roles::kGateway}}, at(0));
  EXPECT_EQ(t.nearest_with_role(roles::kGateway)->destination, kA);
}

TEST(RoutingTable, OwnRoleAppearsInAdvertisement) {
  RoutingTable t(kSelf, kTimeout, kInfiniteMetric, roles::kSink);
  const auto adv = t.advertisement();
  ASSERT_EQ(adv.size(), 1u);
  EXPECT_EQ(adv[0].address, kSelf);
  EXPECT_EQ(adv[0].metric, 0);
  EXPECT_EQ(adv[0].role, roles::kSink);
  EXPECT_EQ(t.own_role(), roles::kSink);
}

TEST(RoutingTable, RoleToStringRendersBits) {
  EXPECT_EQ(role_to_string(roles::kNone), "-");
  EXPECT_EQ(role_to_string(roles::kGateway), "gateway");
  EXPECT_EQ(role_to_string(static_cast<Role>(roles::kGateway | roles::kSink)),
            "gateway|sink");
}

TEST(RoutingTable, ToStringListsEntries) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kB, 1}}, at(0));
  const std::string s = t.to_string();
  EXPECT_NE(s.find("0x000A"), std::string::npos);
  EXPECT_NE(s.find("0x000B"), std::string::npos);
  EXPECT_NE(s.find("metric=2"), std::string::npos);
}

}  // namespace
}  // namespace lm::net

namespace lm::net {
namespace {

TEST(RoutingTableSnapshot, RoundTripsAcrossAReboot) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {{kA, 0, roles::kGateway}, {kC, 2}}, at(0));
  t.apply_beacon(kB, {}, at(100));
  const auto snapshot = t.serialize(at(200));

  RoutingTable rebooted(kSelf, kTimeout);
  ASSERT_TRUE(rebooted.restore(snapshot, at(1000), Duration::seconds(30)));
  ASSERT_EQ(rebooted.size(), 3u);
  EXPECT_EQ(rebooted.route_to(kA)->role, roles::kGateway);
  EXPECT_EQ(rebooted.route_to(kC)->metric, 3);
  EXPECT_EQ(rebooted.route_to(kC)->via, kA);
  // Lifetimes were re-based: kA/kC had 400 s left at snapshot time, minus
  // 30 s of downtime — they lapse exactly at t=1370 s; kB (refreshed later)
  // survives until t=1470 s.
  EXPECT_EQ(rebooted.expire(at(1369)), 0u);
  EXPECT_EQ(rebooted.expire(at(1370)), 2u);
  EXPECT_TRUE(rebooted.has_route(kB));
  EXPECT_EQ(rebooted.expire(at(1470)), 1u);
}

TEST(RoutingTableSnapshot, LapsedEntriesAreSkipped) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {}, at(0));
  const auto snapshot = t.serialize(at(0));
  RoutingTable rebooted(kSelf, kTimeout);
  // Down longer than the hold time: nothing survives (correct — the mesh
  // has moved on), but the restore itself succeeds.
  ASSERT_TRUE(rebooted.restore(snapshot, at(5000), kTimeout * 2));
  EXPECT_EQ(rebooted.size(), 0u);
}

TEST(RoutingTableSnapshot, RejectsForeignAndCorruptSnapshots) {
  RoutingTable t(kSelf, kTimeout);
  t.apply_beacon(kA, {}, at(0));
  auto snapshot = t.serialize(at(0));

  RoutingTable other(0x0099, kTimeout);
  EXPECT_FALSE(other.restore(snapshot, at(1)));  // different owner

  RoutingTable truncated_target(kSelf, kTimeout);
  auto truncated = snapshot;
  truncated.pop_back();
  EXPECT_FALSE(truncated_target.restore(truncated, at(1)));
  EXPECT_EQ(truncated_target.size(), 0u);

  auto corrupt = snapshot;
  corrupt[0] = 0x7F;  // wrong version
  EXPECT_FALSE(truncated_target.restore(corrupt, at(1)));

  // Metric byte corrupted to 0: refused wholesale.
  auto zero_metric = snapshot;
  zero_metric[9] = 0;  // metric field of the first entry
  EXPECT_FALSE(truncated_target.restore(zero_metric, at(1)));
}

TEST(RoutingTableSnapshot, EmptyTableSnapshotsFine) {
  RoutingTable t(kSelf, kTimeout);
  const auto snapshot = t.serialize(at(0));
  RoutingTable rebooted(kSelf, kTimeout);
  EXPECT_TRUE(rebooted.restore(snapshot, at(1)));
  EXPECT_EQ(rebooted.size(), 0u);
}

// The destination index backing route_to()/next_hop() must agree with a
// linear scan of entries() after every kind of table churn: installs,
// updates, withdrawals, expiry cascades, and snapshot restores.
namespace {
void expect_index_matches_entries(const RoutingTable& t) {
  // Every stored entry is found, with the right contents.
  for (const RouteEntry& e : t.entries()) {
    const auto r = t.route_to(e.destination);
    ASSERT_TRUE(r.has_value()) << "missing " << to_string(e.destination);
    EXPECT_EQ(r->via, e.via);
    EXPECT_EQ(r->metric, e.metric);
    EXPECT_EQ(r->role, e.role);
  }
  // A destination the table does not hold is not found.
  EXPECT_FALSE(t.route_to(0x7FFF).has_value());
}
}  // namespace

TEST(RoutingTableIndex, LookupMatchesLinearScanThroughChurn) {
  RoutingTable t(kSelf, kTimeout);

  // Two neighbors each advertise a block of destinations.
  std::vector<RoutingEntry> from_a, from_b;
  for (Address d = 0x0100; d < 0x0140; ++d) from_a.push_back({d, 2});
  for (Address d = 0x0120; d < 0x0160; ++d) from_b.push_back({d, 1});
  t.apply_beacon(kA, from_a, at(0));
  expect_index_matches_entries(t);
  t.apply_beacon(kB, from_b, at(1));  // overlapping block: updates + installs
  expect_index_matches_entries(t);
  EXPECT_EQ(t.size(), 2u + 0x60);

  // Overlap region adopted the better route via B.
  EXPECT_EQ(t.route_to(0x0130)->via, kB);
  EXPECT_EQ(t.route_to(0x0130)->metric, 2);
  EXPECT_EQ(t.route_to(0x0110)->via, kA);

  // Withdrawal: A saturates one of its exclusive destinations.
  t.apply_beacon(kA, {{0x0105, static_cast<std::uint8_t>(kInfiniteMetric)}},
                 at(2));
  EXPECT_FALSE(t.has_route(0x0105));
  expect_index_matches_entries(t);

  // Expiry cascade: refresh B just before A's block lapses, then expire.
  // Everything via A (including A itself) goes; everything via B stays.
  t.apply_beacon(kB, from_b, at(300));
  const std::size_t removed = t.expire(at(2) + kTimeout);
  EXPECT_GT(removed, 0u);
  EXPECT_FALSE(t.has_route(kA));
  EXPECT_FALSE(t.has_route(0x0110));
  EXPECT_TRUE(t.has_route(kB));
  EXPECT_TRUE(t.has_route(0x0130));
  expect_index_matches_entries(t);
  for (const RouteEntry& e : t.entries()) EXPECT_EQ(e.via, kB);

  // Restore path rebuilds the index too.
  const auto snapshot = t.serialize(at(400));
  RoutingTable rebooted(kSelf, kTimeout);
  ASSERT_TRUE(rebooted.restore(snapshot, at(401)));
  EXPECT_EQ(rebooted.size(), t.size());
  expect_index_matches_entries(rebooted);
  EXPECT_EQ(rebooted.next_hop(0x0130), kB);
}

}  // namespace
}  // namespace lm::net
