// TX-pipeline state machine coverage: duty-wait, ALOHA mode, forced
// transmissions under persistent interference, and backoff behaviour.
#include <gtest/gtest.h>

#include "net/mesh_node.h"
#include "phy/airtime.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/sniffer.h"
#include "testbed/topology.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;

testbed::ScenarioConfig cfg(std::uint64_t seed = 1) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.duty_cycle_limit = 1.0;
  return c;
}

TEST(TxPipeline, DutyWaitDefersButDelivers) {
  auto c = cfg();
  c.mesh.duty_cycle_limit = 0.002;  // 7.2 s per hour
  c.mesh.duty_cycle_window = Duration::hours(1);
  // Keep beacons out of the budget math: at 10 s hellos they alone would
  // oversubscribe a 0.2 % limit (a finding E3 quantifies).
  c.mesh.hello_interval = Duration::minutes(20);
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::minutes(21));  // initial beacon exchange

  int delivered = 0;
  s.node(1).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++delivered;
      });
  // ~58 ms per frame; 120 frames ≈ 7 s of airtime, right at the hourly
  // budget — the tail gets deferred, nothing gets lost.
  int accepted = 0;
  for (int i = 0; i < 120; ++i) {
    if (s.node(0).send_datagram(s.address_of(1),
                                std::vector<std::uint8_t>(50, 1))) {
      ++accepted;
    }
    s.run_for(Duration::seconds(2));
  }
  s.run_for(Duration::hours(3));  // deferred frames drain as budget returns
  EXPECT_GT(s.node(0).stats().duty_cycle_delays, 0u);
  EXPECT_EQ(delivered, accepted);  // deferral, not silent loss
  EXPECT_GT(accepted, 60);         // the queue absorbed most of the burst
}

TEST(TxPipeline, AlohaModeNeverRunsCad) {
  auto c = cfg();
  c.mesh.use_cad = false;
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::minutes(5));
  s.node(0).send_datagram(s.address_of(1), {1});
  s.run_for(Duration::seconds(5));
  EXPECT_EQ(s.radio(0).stats().cad_runs, 0u);
  EXPECT_EQ(s.radio(1).stats().cad_runs, 0u);
  EXPECT_GT(s.node(1).stats().datagrams_delivered, 0u);
}

TEST(TxPipeline, PersistentJammerForcesTransmission) {
  auto c = cfg();
  c.mesh.max_cad_retries = 3;
  c.mesh.backoff_base = Duration::milliseconds(50);
  c.mesh.backoff_max = Duration::milliseconds(200);
  MeshScenario s(c);
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));

  // A jammer that transmits continuously on the same modulation.
  radio::VirtualRadio jammer(s.simulator(), s.channel(), 77, {100.0, 0.0}, {});
  struct Rejam final : radio::RadioListener {
    radio::VirtualRadio* r;
    void on_tx_done() override {
      r->transmit(std::vector<std::uint8_t>(255, 0xAA));
    }
    void on_frame_received(const std::vector<std::uint8_t>&,
                           const radio::FrameMeta&) override {}
  };
  Rejam rejam;
  rejam.r = &jammer;
  jammer.set_listener(&rejam);
  jammer.transmit(std::vector<std::uint8_t>(255, 0xAA));

  s.node(0).send_datagram(s.address_of(1), {1});
  s.run_for(Duration::minutes(1));
  // CAD kept reporting busy; after max retries the node transmitted anyway.
  EXPECT_GE(s.node(0).stats().cad_busy_events, 3u);
  EXPECT_GE(s.node(0).stats().forced_transmissions, 1u);
}

TEST(TxPipeline, BeaconsKeepFlowingUnderLoad) {
  MeshScenario s(cfg(5));
  s.add_nodes(testbed::chain(2, 400.0));
  s.start_all();
  s.run_for(Duration::seconds(25));
  const auto beacons_before = s.node(0).stats().beacons_sent;
  // Saturate the data queue continuously for 5 minutes.
  for (int i = 0; i < 150; ++i) {
    s.node(0).send_datagram(s.address_of(1), std::vector<std::uint8_t>(100, 1));
    s.run_for(Duration::seconds(2));
  }
  // Control priority kept the routing plane alive: ~30 beacons in 5 min
  // at a 10 s hello.
  EXPECT_GE(s.node(0).stats().beacons_sent - beacons_before, 25u);
}

}  // namespace
}  // namespace lm::net
