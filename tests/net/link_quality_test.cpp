// Link-quality gating: with require_link_quality on, marginal neighbors
// (low smoothed SNR margin) never become next hops, so the mesh prefers a
// solid 2-hop path over a flaky 1-hop shortcut.
//
// Geometry: A and B sit 580 m apart — decodable on average but right at
// the sensitivity cliff, so per-packet fading loses ~half the frames.
// C sits between them with strong links to both.
//
//        C (290, 250)         A-C, C-B: ~11 dB margin (solid)
//   A (0,0)    B (580,0)      A-B:      ~1.9 dB margin (marginal)
#include "net/mesh_node.h"

#include <gtest/gtest.h>

#include "phy/path_loss.h"
#include "testbed/scenario.h"

namespace lm::net {
namespace {

using testbed::MeshScenario;
using testbed::ScenarioConfig;

ScenarioConfig triangle_config(bool gating, std::uint64_t seed = 4) {
  ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 2.0;  // the cliff does the damage
  c.mesh.hello_interval = Duration::seconds(10);
  c.mesh.maintenance_interval = Duration::seconds(2);
  c.mesh.duty_cycle_limit = 1.0;
  c.mesh.require_link_quality = gating;
  c.mesh.min_snr_margin_db = 6.0;  // survivor bias inflates measured margins
  return c;
}

void build_triangle(MeshScenario& s) {
  s.add_node({0.0, 0.0});      // A
  s.add_node({580.0, 0.0});    // B
  s.add_node({290.0, 250.0});  // C
}

double run_pdr(bool gating, std::uint64_t seed, std::uint8_t* route_metric) {
  MeshScenario s(triangle_config(gating, seed));
  build_triangle(s);
  s.start_all();
  s.run_for(Duration::minutes(5));

  int delivered = 0;
  s.node(1).set_datagram_handler(
      [&](Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        ++delivered;
      });
  int sent = 0;
  for (int i = 0; i < 100; ++i) {
    if (s.node(0).send_datagram(s.address_of(1), {1, 2, 3, 4})) ++sent;
    s.run_for(Duration::seconds(10));
  }
  const auto route = s.node(0).routing_table().route_to(s.address_of(1));
  if (route_metric != nullptr) {
    *route_metric = route ? route->metric : 0;
  }
  return sent > 0 ? static_cast<double>(delivered) / sent : 0.0;
}

TEST(LinkQuality, MarginTrackingFollowsPhysics) {
  MeshScenario s(triangle_config(false));
  build_triangle(s);
  s.start_all();
  s.run_for(Duration::minutes(5));

  const auto to_c = s.node(0).neighbor_snr_margin_db(s.address_of(2));
  ASSERT_TRUE(to_c.has_value());
  EXPECT_GT(*to_c, 7.0);  // strong link, ~8 dB true margin
  const auto to_b = s.node(0).neighbor_snr_margin_db(s.address_of(1));
  if (to_b) {
    EXPECT_LT(*to_b, 6.0);  // marginal even with survivor bias
  }
  EXPECT_FALSE(
      s.node(0).neighbor_snr_margin_db(0x7777).has_value());  // never heard
}

TEST(LinkQuality, WithoutGatingHopCountPicksTheFlakyShortcut) {
  std::uint8_t metric = 0;
  const double pdr = run_pdr(false, 4, &metric);
  EXPECT_EQ(metric, 1);     // direct marginal link chosen
  EXPECT_LT(pdr, 0.90);     // and it drops a chunk of the traffic
  EXPECT_GT(pdr, 0.20);     // but the link is not dead (it is a trap)
}

TEST(LinkQuality, GatingRoutesAroundTheMarginalLink) {
  std::uint8_t metric = 0;
  const double pdr = run_pdr(true, 4, &metric);
  EXPECT_EQ(metric, 2);     // via C
  EXPECT_GT(pdr, 0.95);
}

TEST(LinkQuality, GatingCountsIgnoredBeacons) {
  MeshScenario s(triangle_config(true));
  build_triangle(s);
  s.start_all();
  s.run_for(Duration::minutes(10));
  // A keeps hearing (some of) B's beacons but refuses them.
  EXPECT_GT(s.node(0).stats().beacons_ignored_low_quality, 0u);
  // The strong links still converged normally.
  EXPECT_TRUE(s.node(0).routing_table().has_route(s.address_of(2)));
  EXPECT_TRUE(s.node(2).routing_table().has_route(s.address_of(1)));
}

TEST(LinkQuality, DisabledByDefault) {
  MeshConfig def;
  EXPECT_FALSE(def.require_link_quality);
}

}  // namespace
}  // namespace lm::net
