#include <gtest/gtest.h>

#include <vector>

#include "phy/airtime.h"
#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"
#include "support/assert.h"

namespace lm::radio {
namespace {

struct Capture : RadioListener {
  struct Rx {
    std::vector<std::uint8_t> frame;
    FrameMeta meta;
  };
  std::vector<Rx> frames;
  int tx_done = 0;
  std::vector<bool> cad_results;

  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const FrameMeta& meta) override {
    frames.push_back({frame, meta});
  }
  void on_tx_done() override { ++tx_done; }
  void on_cad_done(bool busy) override { cad_results.push_back(busy); }
};

class RadioTest : public ::testing::Test {
 protected:
  RadioTest() : channel_(sim_, PropagationConfig::free_space(), 42) {}

  VirtualRadio& make_radio(RadioId id, double x, RadioConfig cfg = {}) {
    radios_.push_back(
        std::make_unique<VirtualRadio>(sim_, channel_, id, phy::Position{x, 0}, cfg));
    return *radios_.back();
  }

  std::vector<std::uint8_t> frame(std::size_t n = 20) {
    return std::vector<std::uint8_t>(n, 0xA5);
  }

  sim::Simulator sim_;
  Channel channel_;
  std::vector<std::unique_ptr<VirtualRadio>> radios_;
};

TEST_F(RadioTest, DeliversFrameBetweenNearbyRadios) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  const auto payload = frame(20);
  EXPECT_TRUE(a.transmit(payload));
  EXPECT_EQ(a.state(), RadioState::Tx);
  sim_.run_for(Duration::seconds(1));

  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].frame, payload);
  EXPECT_EQ(rx.frames[0].meta.transmitter, 1u);
  EXPECT_EQ(channel_.stats().receptions_delivered, 1u);
  EXPECT_EQ(a.state(), RadioState::Standby);
}

TEST_F(RadioTest, DeliveryHappensExactlyAtFrameEnd) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  a.transmit(frame(20));
  const Duration toa = phy::time_on_air(a.modulation(), 20);
  sim_.run_for(toa - Duration::microseconds(1));
  EXPECT_TRUE(rx.frames.empty());
  sim_.run_for(Duration::microseconds(1));
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].meta.end, TimePoint::origin() + toa);
}

TEST_F(RadioTest, TxDoneFiresAndAirtimeAccumulates) {
  auto& a = make_radio(1, 0);
  Capture tx;
  a.set_listener(&tx);
  a.transmit(frame(20));
  sim_.run_for(Duration::seconds(1));
  EXPECT_EQ(tx.tx_done, 1);
  EXPECT_EQ(a.stats().tx_frames, 1u);
  EXPECT_EQ(a.stats().tx_bytes, 20u);
  EXPECT_EQ(a.stats().tx_airtime, phy::time_on_air(a.modulation(), 20));
}

TEST_F(RadioTest, NotListeningMissesFrame) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  // b stays in Standby.
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_not_listening, 1u);
}

TEST_F(RadioTest, LateReceiverMissesFrame) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);

  a.transmit(frame());
  // b wakes up mid-preamble: too late to lock.
  sim_.schedule_after(Duration::milliseconds(5), [&] { b.start_receive(); });
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_not_listening, 1u);
}

TEST_F(RadioTest, SleepingRadioHearsNothing) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  b.sleep();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(RadioTest, TransmitterDoesNotHearItself) {
  auto& a = make_radio(1, 0);
  Capture cap;
  a.set_listener(&cap);
  a.start_receive();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(cap.frames.empty());
  EXPECT_EQ(cap.tx_done, 1);
}

TEST_F(RadioTest, OutOfRangeFrameIsDropped) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 200'000);  // 200 km
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_below_sensitivity, 1u);
}

TEST_F(RadioTest, BlockedLinkDropsBothDirections) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rxa, rxb;
  a.set_listener(&rxa);
  b.set_listener(&rxb);
  channel_.block_link(1, 2);

  b.start_receive();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  a.start_receive();
  b.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rxa.frames.empty());
  EXPECT_TRUE(rxb.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_blocked_link, 2u);

  channel_.unblock_link(1, 2);
  b.start_receive();
  a.standby();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_EQ(rxb.frames.size(), 1u);
}

TEST_F(RadioTest, ExtraLossAlwaysDropsAtProbabilityOne) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  channel_.set_link_extra_loss(1, 2, 1.0);
  b.start_receive();
  for (int i = 0; i < 5; ++i) {
    a.transmit(frame());
    sim_.run_for(Duration::seconds(1));
  }
  EXPECT_TRUE(rx.frames.empty());
  channel_.set_link_extra_loss(1, 2, 0.0);
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_EQ(rx.frames.size(), 1u);
}

TEST_F(RadioTest, EqualPowerCollisionDestroysBoth) {
  auto& a = make_radio(1, -100);
  auto& b = make_radio(2, 0);  // receiver in the middle
  auto& c = make_radio(3, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  a.transmit(frame(50));
  c.transmit(frame(50));  // exact overlap, equal distance and power
  sim_.run_for(Duration::seconds(2));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_collision, 2u);
}

TEST_F(RadioTest, CaptureEffectSavesTheMuchStrongerFrame) {
  auto& a = make_radio(1, 5000);  // far: weak at b
  auto& b = make_radio(2, 0);
  auto& c = make_radio(3, 50);  // near: strong at b
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  a.transmit(frame(50));
  c.transmit(frame(50));
  sim_.run_for(Duration::seconds(2));
  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].meta.transmitter, 3u);
  EXPECT_EQ(channel_.stats().dropped_collision, 1u);  // a's frame died
}

TEST_F(RadioTest, InterferenceOnlyDuringPreambleIsTolerated) {
  // Interferer i finishes before the signal's last-5-preamble-symbols
  // window opens: the receiver can still lock onto the signal.
  auto& a = make_radio(1, -100);  // signal source
  auto& b = make_radio(2, 0);     // receiver
  auto& c = make_radio(3, 100);   // interferer
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  // Interferer: 1-byte frame ~= 25.9 ms on air, starting at t=0.
  c.transmit(frame(1));
  // Signal starts at 20 ms; its vulnerable window opens at
  // 20 ms + 12.544 ms - 5 * 1.024 ms = 27.42 ms > 25.9 ms.
  sim_.schedule_after(Duration::milliseconds(20), [&] { a.transmit(frame(50)); });
  sim_.run_for(Duration::seconds(2));

  ASSERT_EQ(rx.frames.size(), 1u);
  EXPECT_EQ(rx.frames[0].meta.transmitter, 1u);
}

TEST_F(RadioTest, InterferenceDuringPayloadDestroys) {
  auto& a = make_radio(1, -100);
  auto& b = make_radio(2, 0);
  auto& c = make_radio(3, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  a.transmit(frame(50));  // ~100 ms on air
  sim_.schedule_after(Duration::milliseconds(50),
                      [&] { c.transmit(frame(1)); });  // hits the payload
  sim_.run_for(Duration::seconds(2));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_GE(channel_.stats().dropped_collision, 1u);
}

TEST_F(RadioTest, DifferentFrequencyDoesNotInteract) {
  RadioConfig other_freq;
  other_freq.frequency_hz = 869.5e6;
  auto& a = make_radio(1, 0, other_freq);
  auto& b = make_radio(2, 100);  // default 868.1 MHz
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
  // Not even counted as a drop: different channel entirely.
  EXPECT_EQ(channel_.stats().dropped_below_sensitivity, 0u);
  EXPECT_EQ(channel_.stats().dropped_not_listening, 0u);
}

TEST_F(RadioTest, ModulationMismatchCannotDecode) {
  RadioConfig sf9;
  sf9.modulation.sf = phy::SpreadingFactor::SF9;
  auto& a = make_radio(1, 0);  // SF7
  auto& b = make_radio(2, 100, sf9);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_modulation_mismatch, 1u);
}

TEST_F(RadioTest, CrossSfInterferenceAppliesQuasiOrthogonality) {
  // SF9 signal; SF7 interferer 30 dB stronger at the receiver: exceeds the
  // cross-SF rejection threshold, so the SF9 frame dies.
  RadioConfig sf9;
  sf9.modulation.sf = phy::SpreadingFactor::SF9;
  auto& a = make_radio(1, 10'000, sf9);  // weak SF9 signal
  auto& b = make_radio(2, 0, sf9);
  auto& c = make_radio(3, 30);  // loud SF7 interferer right next to b
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();

  a.transmit(frame(50));
  sim_.schedule_after(Duration::milliseconds(100), [&] { c.transmit(frame(100)); });
  sim_.run_for(Duration::seconds(5));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_GE(channel_.stats().dropped_collision, 1u);
}

TEST_F(RadioTest, CadDetectsOngoingSameSfTransmission) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture cad;
  b.set_listener(&cad);

  a.transmit(frame(100));
  sim_.schedule_after(Duration::milliseconds(10), [&] {
    EXPECT_TRUE(b.start_cad());
    EXPECT_EQ(b.state(), RadioState::Cad);
  });
  sim_.run_for(Duration::seconds(1));
  ASSERT_EQ(cad.cad_results.size(), 1u);
  EXPECT_TRUE(cad.cad_results[0]);
  EXPECT_EQ(b.state(), RadioState::Standby);
  EXPECT_EQ(b.stats().cad_runs, 1u);
  EXPECT_EQ(b.stats().cad_busy, 1u);
}

TEST_F(RadioTest, CadCatchesFrameStartingMidWindow) {
  // The detector integrates over the whole ~1.5-symbol window: a preamble
  // beginning after CAD start is still caught (this is what makes CSMA
  // close the race between two nodes arming transmissions microseconds
  // apart).
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture cad;
  b.set_listener(&cad);
  b.start_cad();  // window [0, 1.536 ms]
  sim_.schedule_after(Duration::microseconds(500), [&] { a.transmit(frame(20)); });
  sim_.run_for(Duration::seconds(1));
  ASSERT_EQ(cad.cad_results.size(), 1u);
  EXPECT_TRUE(cad.cad_results[0]);
}

TEST_F(RadioTest, CadOnIdleChannelReportsClear) {
  auto& b = make_radio(2, 100);
  Capture cad;
  b.set_listener(&cad);
  b.start_cad();
  sim_.run_for(Duration::seconds(1));
  ASSERT_EQ(cad.cad_results.size(), 1u);
  EXPECT_FALSE(cad.cad_results[0]);
}

TEST_F(RadioTest, CadIgnoresOtherSf) {
  RadioConfig sf9;
  sf9.modulation.sf = phy::SpreadingFactor::SF9;
  auto& a = make_radio(1, 0, sf9);
  auto& b = make_radio(2, 100);  // SF7 CAD
  Capture cad;
  b.set_listener(&cad);
  a.transmit(frame(100));
  sim_.schedule_after(Duration::milliseconds(10), [&] { b.start_cad(); });
  sim_.run_for(Duration::seconds(2));
  ASSERT_EQ(cad.cad_results.size(), 1u);
  EXPECT_FALSE(cad.cad_results[0]);
}

TEST_F(RadioTest, CadTakesOneAndAHalfSymbols) {
  auto& b = make_radio(2, 100);
  Capture cad;
  b.set_listener(&cad);
  b.start_cad();
  sim_.run_for(phy::cad_time(b.modulation()) - Duration::microseconds(1));
  EXPECT_TRUE(cad.cad_results.empty());
  sim_.run_for(Duration::microseconds(1));
  EXPECT_EQ(cad.cad_results.size(), 1u);
}

TEST_F(RadioTest, CadAbortsOngoingReception) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame(100));
  // Mid-frame CAD breaks RX continuity: the frame is lost.
  sim_.schedule_after(Duration::milliseconds(20), [&] {
    b.start_cad();
  });
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
  EXPECT_EQ(channel_.stats().dropped_not_listening, 1u);
}

TEST_F(RadioTest, TransmitWhileBusyReturnsFalse) {
  auto& a = make_radio(1, 0);
  EXPECT_TRUE(a.transmit(frame()));
  EXPECT_FALSE(a.transmit(frame()));  // mid-TX
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(a.start_cad());
  EXPECT_FALSE(a.transmit(frame()));  // mid-CAD
  EXPECT_FALSE(a.start_cad());
  sim_.run_for(Duration::seconds(1));
  a.sleep();
  EXPECT_FALSE(a.transmit(frame()));  // asleep
}

TEST_F(RadioTest, StateTransitionPreconditions) {
  auto& a = make_radio(1, 0);
  a.transmit(frame());
  EXPECT_THROW(a.standby(), ContractViolation);
  EXPECT_THROW(a.sleep(), ContractViolation);
  EXPECT_THROW(a.start_receive(), ContractViolation);
  sim_.run_for(Duration::seconds(1));
  a.standby();  // fine now
}

TEST_F(RadioTest, TransmitRejectsBadFrames) {
  auto& a = make_radio(1, 0);
  EXPECT_THROW(a.transmit({}), ContractViolation);
  EXPECT_THROW(a.transmit(frame(256)), ContractViolation);
}

TEST_F(RadioTest, TransmitPreemptsReception) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame(100));
  // b answers mid-reception: its own RX is toast.
  sim_.schedule_after(Duration::milliseconds(10), [&] { b.transmit(frame(5)); });
  sim_.run_for(Duration::seconds(1));
  EXPECT_TRUE(rx.frames.empty());
}

TEST_F(RadioTest, MobilityAffectsSubsequentFrames) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 100);
  Capture rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  ASSERT_EQ(rx.frames.size(), 1u);
  const double rssi_near = rx.frames[0].meta.rssi_dbm;

  a.set_position({10'000, 0});
  a.transmit(frame());
  sim_.run_for(Duration::seconds(1));
  ASSERT_EQ(rx.frames.size(), 2u);
  EXPECT_LT(rx.frames[1].meta.rssi_dbm, rssi_near - 30.0);
}

TEST_F(RadioTest, MeanRssiMatchesLinkBudget) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 1000);
  // Free space at 1 km / 868 MHz: 14 dBm - 91.2 dB = -77.2 dBm.
  EXPECT_NEAR(channel_.mean_rssi_dbm(a, b), -77.2, 0.1);
  EXPECT_NEAR(channel_.link_quality(a, b), 1.0, 1e-6);
}

TEST_F(RadioTest, LinkQualityDropsToZeroOutOfRange) {
  auto& a = make_radio(1, 0);
  auto& b = make_radio(2, 500'000);
  EXPECT_DOUBLE_EQ(channel_.link_quality(a, b), 0.0);
}

TEST_F(RadioTest, DuplicateRadioIdRejected) {
  make_radio(1, 0);
  EXPECT_THROW(make_radio(1, 50), ContractViolation);
}

TEST_F(RadioTest, ShadowingIsStablePerLink) {
  sim::Simulator sim2;
  PropagationConfig prop = PropagationConfig::campus();
  prop.fading_sigma_db = 0.0;  // isolate shadowing
  Channel shadowed(sim2, prop, 7);
  VirtualRadio a(sim2, shadowed, 1, {0, 0}, {});
  VirtualRadio b(sim2, shadowed, 2, {500, 0}, {});
  const double r1 = shadowed.mean_rssi_dbm(a, b);
  const double r2 = shadowed.mean_rssi_dbm(a, b);
  const double r3 = shadowed.mean_rssi_dbm(b, a);
  EXPECT_DOUBLE_EQ(r1, r2);  // sampled once
  EXPECT_DOUBLE_EQ(r1, r3);  // symmetric
}

}  // namespace
}  // namespace lm::radio
