// Edge cases of the shared channel: bookkeeping under long runs, radios
// leaving mid-flight, fading-cache consistency, CAD window boundaries,
// stats accounting identities.
#include <gtest/gtest.h>

#include "phy/airtime.h"
#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"

namespace lm::radio {
namespace {

struct Counter : RadioListener {
  int frames = 0;
  std::vector<bool> cads;
  void on_frame_received(const std::vector<std::uint8_t>&,
                         const FrameMeta&) override {
    ++frames;
  }
  void on_cad_done(bool busy) override { cads.push_back(busy); }
};

std::vector<std::uint8_t> frame(std::size_t n = 20) {
  return std::vector<std::uint8_t>(n, 0x11);
}

TEST(ChannelEdge, HistoryPruningSurvivesLongRuns) {
  // Thousands of transmissions over days of simulated time must not
  // accumulate channel state (the history is pruned by horizon).
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  VirtualRadio b(sim, channel, 2, {100, 0}, {});
  Counter rx;
  b.set_listener(&rx);
  b.start_receive();
  for (int i = 0; i < 2000; ++i) {
    a.transmit(frame());
    sim.run_for(Duration::minutes(1));
  }
  EXPECT_EQ(rx.frames, 2000);
  EXPECT_EQ(channel.stats().receptions_delivered, 2000u);
}

TEST(ChannelEdge, TransmitterDestroyedMidFlightStillDelivers) {
  // The frame is on the air; the sender's hardware dying cannot recall it.
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  auto a = std::make_unique<VirtualRadio>(sim, channel, 1, phy::Position{0, 0},
                                          RadioConfig{});
  VirtualRadio b(sim, channel, 2, {100, 0}, {});
  Counter rx;
  b.set_listener(&rx);
  b.start_receive();
  a->transmit(frame());
  sim.run_for(Duration::milliseconds(5));  // mid-preamble
  a.reset();                               // radio vanishes
  sim.run_for(Duration::seconds(1));
  EXPECT_EQ(rx.frames, 1);
}

TEST(ChannelEdge, ReceiverDestroyedMidFlightIsSafe) {
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  auto b = std::make_unique<VirtualRadio>(sim, channel, 2, phy::Position{100, 0},
                                          RadioConfig{});
  b->start_receive();
  a.transmit(frame());
  sim.run_for(Duration::milliseconds(5));
  b.reset();  // gone before the frame ends
  sim.run_for(Duration::seconds(1));  // must not touch the dead radio
  EXPECT_EQ(channel.stats().receptions_delivered, 0u);
}

TEST(ChannelEdge, FadingIsConsistentPerFrameAndReceiver) {
  // With fading enabled, the same transmission queried as signal and as
  // interference must see one consistent fading draw; across frames the
  // draws differ. Indirectly verified: two frames back-to-back on a
  // marginal link get independent outcomes, while one frame cannot both
  // decode and collide.
  sim::Simulator sim;
  PropagationConfig prop = PropagationConfig::free_space();
  prop.fading_sigma_db = 6.0;
  Channel channel(sim, prop, 99);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  VirtualRadio b(sim, channel, 2, {100, 0}, {});
  Counter rx;
  b.set_listener(&rx);
  b.start_receive();
  for (int i = 0; i < 50; ++i) {
    a.transmit(frame());
    sim.run_for(Duration::seconds(1));
  }
  const auto& s = channel.stats();
  // Accounting identity: every reception opportunity is counted once.
  EXPECT_EQ(s.receptions_delivered + s.dropped_snr + s.dropped_collision +
                s.dropped_below_sensitivity + s.dropped_not_listening +
                s.dropped_blocked_link + s.dropped_modulation_mismatch +
                s.dropped_out_of_range,
            50u);
  EXPECT_EQ(rx.frames, static_cast<int>(s.receptions_delivered));
}

TEST(ChannelEdge, CadWindowBoundaryIsExclusive) {
  // A transmission that starts exactly when the CAD window closed is a
  // miss; one ending exactly at window start is also a miss.
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  VirtualRadio b(sim, channel, 2, {100, 0}, {});
  Counter cad;
  b.set_listener(&cad);
  const Duration window = phy::cad_time(b.modulation());
  b.start_cad();
  // Frame starts exactly at window end: evaluation runs first (same-time
  // FIFO: CAD end was scheduled before this transmit).
  sim.schedule_at(TimePoint::origin() + window, [&] { a.transmit(frame()); });
  sim.run_for(Duration::seconds(1));
  ASSERT_EQ(cad.cads.size(), 1u);
  EXPECT_FALSE(cad.cads[0]);
}

TEST(ChannelEdge, BackToBackFramesDoNotInterfere) {
  // Frame 2 starts the instant frame 1 ends: no overlap, both deliver.
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  VirtualRadio c(sim, channel, 3, {50, 0}, {});
  VirtualRadio b(sim, channel, 2, {100, 0}, {});
  Counter rx;
  b.set_listener(&rx);
  b.start_receive();
  a.transmit(frame(20));
  const Duration toa = phy::time_on_air(a.modulation(), 20);
  sim.schedule_at(TimePoint::origin() + toa, [&] { c.transmit(frame(20)); });
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(rx.frames, 2);
  EXPECT_EQ(channel.stats().dropped_collision, 0u);
}

TEST(ChannelEdge, ThreeWayCollisionAllLost) {
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio b(sim, channel, 10, {0, 0}, {});
  VirtualRadio t1(sim, channel, 1, {100, 0}, {});
  VirtualRadio t2(sim, channel, 2, {0, 100}, {});
  VirtualRadio t3(sim, channel, 3, {-100, 0}, {});
  Counter rx;
  b.set_listener(&rx);
  b.start_receive();
  t1.transmit(frame(40));
  t2.transmit(frame(40));
  t3.transmit(frame(40));
  sim.run_for(Duration::seconds(2));
  EXPECT_EQ(rx.frames, 0);
  EXPECT_EQ(channel.stats().dropped_collision, 3u);
}

TEST(ChannelEdge, BlockedLinkStillSensedByCad) {
  // block_link models a data-plane obstruction used by experiments; CAD
  // checks detectable_by which honors blocks — verify the block applies to
  // sensing too (consistent world view).
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  VirtualRadio b(sim, channel, 2, {100, 0}, {});
  channel.block_link(1, 2);
  Counter cad;
  b.set_listener(&cad);
  a.transmit(frame(100));
  sim.schedule_after(Duration::milliseconds(10), [&] { b.start_cad(); });
  sim.run_for(Duration::seconds(1));
  ASSERT_EQ(cad.cads.size(), 1u);
  EXPECT_FALSE(cad.cads[0]);  // the obstruction hides the carrier too
}

TEST(ChannelEdge, ResetStatsClears) {
  sim::Simulator sim;
  Channel channel(sim, PropagationConfig::free_space(), 1);
  VirtualRadio a(sim, channel, 1, {0, 0}, {});
  a.transmit(frame());
  sim.run_for(Duration::seconds(1));
  EXPECT_GT(channel.stats().frames_transmitted, 0u);
  channel.reset_stats();
  EXPECT_EQ(channel.stats().frames_transmitted, 0u);
}

}  // namespace
}  // namespace lm::radio
