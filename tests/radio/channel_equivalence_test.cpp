// Property test for the spatial-index delivery path: for any scripted
// scenario, the indexed channel must produce BIT-IDENTICAL reception
// outcomes — every delivery with the same RSSI/SNR/timing, the same
// collision and SNR drops — as the O(N^2) brute-force sweep. Culling is
// only allowed to change *cost* (and the attribution of out-of-range
// receivers to the bulk dropped_out_of_range counter), never physics.
//
// Scenarios are generated from seeds: randomized static and mobile
// topologies with mixed SFs, shadowing/fading, blocked and lossy links,
// and mid-flight position changes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <algorithm>
#include <string>
#include <vector>

#include "phy/airtime.h"
#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace lm::radio {
namespace {

struct TxEvent {
  std::size_t node = 0;
  Duration at;
  std::size_t len = 0;
};

struct MoveEvent {
  std::size_t node = 0;
  Duration at;
  phy::Position to;
};

struct Script {
  PropagationConfig prop;
  std::uint64_t channel_seed = 0;
  std::vector<phy::Position> positions;
  std::vector<RadioConfig> configs;
  std::vector<TxEvent> txs;
  std::vector<MoveEvent> moves;
  std::vector<std::pair<RadioId, RadioId>> blocked;
  std::vector<std::pair<std::pair<RadioId, RadioId>, double>> lossy;
  Duration run_time = Duration::seconds(60);
};

/// One observed frame delivery, everything a driver would see.
struct Delivery {
  RadioId rx = 0;
  RadioId tx = 0;
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  std::int64_t end_ms = 0;
  std::size_t len = 0;

  friend bool operator==(const Delivery& a, const Delivery& b) {
    // Exact double compares on purpose: both paths must take the same
    // arithmetic route, not merely land close.
    return a.rx == b.rx && a.tx == b.tx && a.rssi_dbm == b.rssi_dbm &&
           a.snr_db == b.snr_db && a.end_ms == b.end_ms && a.len == b.len;
  }
};

struct Recorder : RadioListener {
  VirtualRadio* radio = nullptr;
  std::vector<Delivery>* out = nullptr;
  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const FrameMeta& meta) override {
    out->push_back(Delivery{radio->id(), meta.transmitter, meta.rssi_dbm,
                            meta.snr_db,
                            (meta.end - TimePoint::origin()).ms(),
                            frame.size()});
  }
  void on_tx_done() override { radio->start_receive(); }
};

struct RunResult {
  std::vector<Delivery> deliveries;
  ChannelStats stats;
};

RunResult run_script(const Script& s, bool indexed) {
  sim::Simulator sim;
  ChannelConfig policy;
  policy.spatial_index = indexed;
  Channel channel(sim, s.prop, policy, s.channel_seed);

  RunResult result;
  std::vector<std::unique_ptr<VirtualRadio>> radios;
  std::vector<std::unique_ptr<Recorder>> recorders;
  for (std::size_t i = 0; i < s.positions.size(); ++i) {
    radios.push_back(std::make_unique<VirtualRadio>(
        sim, channel, static_cast<RadioId>(i + 1), s.positions[i],
        s.configs[i]));
    auto rec = std::make_unique<Recorder>();
    rec->radio = radios.back().get();
    rec->out = &result.deliveries;
    radios.back()->set_listener(rec.get());
    radios.back()->start_receive();
    recorders.push_back(std::move(rec));
  }
  for (const auto& [a, b] : s.blocked) channel.block_link(a, b);
  for (const auto& [link, p] : s.lossy) {
    channel.set_link_extra_loss(link.first, link.second, p);
  }
  for (const TxEvent& e : s.txs) {
    sim.schedule_at(TimePoint::origin() + e.at, [&radios, e] {
      std::vector<std::uint8_t> payload(e.len,
                                        static_cast<std::uint8_t>(e.node));
      // May return false when the node is still mid-TX — that, too, is
      // deterministic and must agree between the two runs.
      radios[e.node]->transmit(std::move(payload));
    });
  }
  for (const MoveEvent& e : s.moves) {
    sim.schedule_at(TimePoint::origin() + e.at,
                    [&radios, e] { radios[e.node]->set_position(e.to); });
  }
  sim.run_until(TimePoint::origin() + s.run_time);
  result.stats = channel.stats();
  return result;
}

Script random_script(std::uint64_t seed, bool mobile) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xE9);
  Script s;
  s.channel_seed = seed ^ 0xCAFE;

  // Physics: alternate between free space and campus; half the campus
  // scenarios add per-packet fading on top of shadowing.
  switch (rng.uniform_int(0, 2)) {
    case 0: s.prop = PropagationConfig::free_space(); break;
    case 1:
      s.prop = PropagationConfig::campus();
      s.prop.fading_sigma_db = 0.0;
      break;
    default: s.prop = PropagationConfig::campus(); break;
  }

  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(8, 24));
  // Fields from "everyone hears everyone" up to several times the campus
  // decode radius, so the index both culls aggressively and passes
  // everything through, depending on the draw.
  const double field_m = rng.uniform(600.0, 25'000.0);
  const bool mixed_sf = rng.bernoulli(0.5);
  for (std::size_t i = 0; i < n; ++i) {
    s.positions.push_back({rng.uniform(0.0, field_m), rng.uniform(0.0, field_m)});
    RadioConfig cfg;
    cfg.tx_power_dbm = rng.uniform(2.0, 14.0);
    if (mixed_sf && rng.bernoulli(0.3)) {
      cfg.modulation.sf = phy::SpreadingFactor::SF9;  // cross-SF interference
    }
    s.configs.push_back(cfg);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(rng.uniform_int(2, 4));
    for (int j = 0; j < k; ++j) {
      s.txs.push_back(TxEvent{i, Duration::milliseconds(static_cast<std::int64_t>(
                                     rng.uniform(0.0, 40'000.0))),
                              static_cast<std::size_t>(rng.uniform_int(8, 48))});
    }
  }

  const auto pick_pair = [&rng, n]() -> std::pair<RadioId, RadioId> {
    const auto a = static_cast<RadioId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
    auto b = static_cast<RadioId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
    if (b == a) b = (b % n) + 1;
    return {a, b};
  };
  for (std::size_t i = 0; i < n / 4; ++i) s.blocked.push_back(pick_pair());
  for (std::size_t i = 0; i < n / 4; ++i) {
    s.lossy.push_back({pick_pair(), rng.uniform(0.2, 0.8)});
  }

  if (mobile) {
    for (std::size_t i = 0; i < n; ++i) {
      const int k = static_cast<int>(rng.uniform_int(0, 3));
      for (int j = 0; j < k; ++j) {
        s.moves.push_back(MoveEvent{
            i,
            Duration::milliseconds(
                static_cast<std::int64_t>(rng.uniform(0.0, 45'000.0))),
            {rng.uniform(0.0, field_m), rng.uniform(0.0, field_m)}});
      }
    }
  }
  return s;
}

/// Runs `script` under both delivery policies and requires bit-identical
/// outcomes. Returns how many reception opportunities the index culled,
/// so callers can assert the test is not vacuous.
std::uint64_t expect_equivalent(const Script& s, const char* label) {
  SCOPED_TRACE(label);
  const RunResult indexed = run_script(s, /*indexed=*/true);
  const RunResult brute = run_script(s, /*indexed=*/false);

  EXPECT_EQ(indexed.deliveries.size(), brute.deliveries.size()) << label;
  const std::size_t common =
      std::min(indexed.deliveries.size(), brute.deliveries.size());
  for (std::size_t i = 0; i < common; ++i) {
    const Delivery& a = indexed.deliveries[i];
    const Delivery& b = brute.deliveries[i];
    EXPECT_TRUE(a == b) << label << " delivery " << i << ": rx=" << a.rx
                        << "/" << b.rx << " tx=" << a.tx << "/" << b.tx
                        << " rssi=" << a.rssi_dbm << "/" << b.rssi_dbm
                        << " snr=" << a.snr_db << "/" << b.snr_db
                        << " end_ms=" << a.end_ms << "/" << b.end_ms;
  }

  // Physics counters must agree exactly. (The per-receiver drop buckets
  // below sensitivity may not: the index attributes culled receivers to
  // dropped_out_of_range in bulk.)
  EXPECT_EQ(indexed.stats.frames_transmitted, brute.stats.frames_transmitted);
  EXPECT_EQ(indexed.stats.receptions_delivered, brute.stats.receptions_delivered);
  EXPECT_EQ(indexed.stats.dropped_collision, brute.stats.dropped_collision);
  EXPECT_EQ(indexed.stats.dropped_snr, brute.stats.dropped_snr);
  EXPECT_EQ(brute.stats.dropped_out_of_range, 0u);
  return indexed.stats.dropped_out_of_range;
}

TEST(ChannelEquivalence, StaticTopologiesMatchBruteForceBitForBit) {
  std::uint64_t culled = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const Script s = random_script(seed, /*mobile=*/false);
    culled += expect_equivalent(
        s, ("static seed " + std::to_string(seed)).c_str());
  }
  // The property is only meaningful if the index actually culled work
  // somewhere across the suite.
  EXPECT_GT(culled, 0u);
}

TEST(ChannelEquivalence, MobileTopologiesMatchBruteForceBitForBit) {
  std::uint64_t culled = 0;
  for (std::uint64_t seed = 101; seed <= 112; ++seed) {
    const Script s = random_script(seed, /*mobile=*/true);
    culled += expect_equivalent(
        s, ("mobile seed " + std::to_string(seed)).c_str());
  }
  EXPECT_GT(culled, 0u);
}

// --- Targeted mobility: cell-boundary crossings mid-flight -----------------

// A receiver that moves INTO decode range while the frame is on the air
// must be found by the end-of-frame candidate query (delivery decisions use
// end-of-frame positions); one that moves OUT must not decode. Small cells
// force the moves across several cell boundaries, so a stale bucket would
// make the indexed path miss the radio entirely.
TEST(ChannelEquivalence, CellCrossingMidFlightReceivesCorrectly) {
  // Campus propagation without stochastic terms: with 2 dBm TX at SF12 the
  // decode radius is ~2 km, far smaller than the 3000 m start positions and
  // far larger than the 30 m cells.
  PropagationConfig prop = PropagationConfig::campus();
  prop.shadowing_sigma_db = 0.0;
  prop.fading_sigma_db = 0.0;

  RadioConfig cfg;
  cfg.tx_power_dbm = 2.0;
  cfg.modulation.sf = phy::SpreadingFactor::SF12;  // long frame: ~1.5 s

  Script s;
  s.prop = prop;
  s.channel_seed = 7;
  s.run_time = Duration::seconds(10);
  s.positions = {{0.0, 0.0},      // 0: transmitter
                 {3000.0, 0.0},   // 1: starts out of range, moves to 90 m
                 {90.0, 0.0}};    // 2: starts at 90 m, moves out to 3000 m
  s.configs = {cfg, cfg, cfg};

  const Duration airtime = phy::time_on_air(cfg.modulation, 40);
  ASSERT_GT(airtime, Duration::milliseconds(500));
  s.txs = {TxEvent{0, Duration::milliseconds(1000), 40}};
  const Duration mid = Duration::milliseconds(1000) + airtime / 2;
  s.moves = {MoveEvent{1, mid, {90.0, 30.0}},
             MoveEvent{2, mid, {3000.0, 30.0}}};

  for (const double cell : {30.0, 0.0}) {  // tiny cells and derived cells
    SCOPED_TRACE(cell);
    sim::Simulator sim;
    ChannelConfig policy;
    policy.spatial_index = true;
    policy.cell_size_m = cell;
    Channel channel(sim, s.prop, policy, s.channel_seed);
    std::vector<Delivery> deliveries;
    std::vector<std::unique_ptr<VirtualRadio>> radios;
    std::vector<std::unique_ptr<Recorder>> recorders;
    for (std::size_t i = 0; i < s.positions.size(); ++i) {
      radios.push_back(std::make_unique<VirtualRadio>(
          sim, channel, static_cast<RadioId>(i + 1), s.positions[i],
          s.configs[i]));
      auto rec = std::make_unique<Recorder>();
      rec->radio = radios.back().get();
      rec->out = &deliveries;
      radios.back()->set_listener(rec.get());
      radios.back()->start_receive();
      recorders.push_back(std::move(rec));
    }
    for (const TxEvent& e : s.txs) {
      sim.schedule_at(TimePoint::origin() + e.at, [&radios, e] {
        radios[e.node]->transmit(std::vector<std::uint8_t>(e.len, 0xAB));
      });
    }
    for (const MoveEvent& e : s.moves) {
      sim.schedule_at(TimePoint::origin() + e.at,
                      [&radios, e] { radios[e.node]->set_position(e.to); });
    }
    sim.run_until(TimePoint::origin() + s.run_time);

    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].rx, 2u);  // the radio that moved into range
    EXPECT_EQ(deliveries[0].tx, 1u);
    EXPECT_EQ(channel.stats().receptions_delivered, 1u);
  }

  // And the whole mini-scenario agrees with brute force bit-for-bit.
  expect_equivalent(s, "cell crossing");
}

// A receiver moving mid-flight must still LOSE a frame to interference it
// moved next to: the collision scan runs against the transmission grid at
// the receiver's end-of-frame position.
TEST(ChannelEquivalence, CellCrossingMidFlightInterferesCorrectly) {
  PropagationConfig prop = PropagationConfig::campus();
  prop.shadowing_sigma_db = 0.0;
  prop.fading_sigma_db = 0.0;

  RadioConfig cfg;
  cfg.tx_power_dbm = 2.0;
  cfg.modulation.sf = phy::SpreadingFactor::SF12;

  Script s;
  s.prop = prop;
  s.channel_seed = 9;
  s.run_time = Duration::seconds(10);
  // Receiver 3 starts near transmitter 1 (clean copy) and moves mid-flight
  // next to jammer 2, whose equal-power overlapping frame then wins on SIR.
  s.positions = {{0.0, 0.0},     // 0 -> id 1: wanted transmitter
                 {400.0, 0.0},   // 1 -> id 2: jammer (out of capture range of 1)
                 {60.0, 0.0}};   // 2 -> id 3: receiver, moves to {360, 0}
  s.configs = {cfg, cfg, cfg};
  const Duration airtime = phy::time_on_air(cfg.modulation, 40);
  s.txs = {TxEvent{0, Duration::milliseconds(1000), 40},
           TxEvent{1, Duration::milliseconds(1020), 40}};
  s.moves = {MoveEvent{2, Duration::milliseconds(1000) + airtime / 2,
                       {360.0, 0.0}}};

  const RunResult indexed = run_script(s, /*indexed=*/true);
  // Jammer sits 40 m from the receiver's final position vs 360 m for the
  // wanted signal: the wanted frame cannot clear the 6 dB co-SF capture
  // threshold and must be lost to the collision. (The jammer's own frame,
  // which outlives the overlap, may still deliver — that's capture.)
  EXPECT_GE(indexed.stats.dropped_collision, 1u);
  for (const Delivery& d : indexed.deliveries) {
    EXPECT_NE(d.tx, 1u) << "wanted frame must be jammed at the moved receiver";
  }
  expect_equivalent(s, "interference crossing");
}

}  // namespace
}  // namespace lm::radio
