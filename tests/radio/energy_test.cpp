#include "radio/energy.h"

#include <gtest/gtest.h>

#include "phy/airtime.h"
#include "radio/channel.h"
#include "sim/simulator.h"
#include "support/assert.h"

namespace lm::radio {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest() : channel_(sim_, PropagationConfig::free_space(), 1) {}

  sim::Simulator sim_;
  Channel channel_;
};

TEST_F(EnergyTest, TimeAccrualPerState) {
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  // Standby from t=0.
  sim_.run_for(Duration::seconds(10));
  r.start_receive();
  sim_.run_for(Duration::seconds(30));
  r.sleep();
  sim_.run_for(Duration::seconds(60));

  EXPECT_EQ(r.time_in_state(RadioState::Standby), Duration::seconds(10));
  EXPECT_EQ(r.time_in_state(RadioState::Rx), Duration::seconds(30));
  EXPECT_EQ(r.time_in_state(RadioState::Sleep), Duration::seconds(60));
  EXPECT_EQ(r.time_in_state(RadioState::Tx), Duration::zero());
}

TEST_F(EnergyTest, CurrentStateAccruesLive) {
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  r.start_receive();
  sim_.run_for(Duration::seconds(5));
  EXPECT_EQ(r.time_in_state(RadioState::Rx), Duration::seconds(5));
  sim_.run_for(Duration::seconds(5));
  EXPECT_EQ(r.time_in_state(RadioState::Rx), Duration::seconds(10));
}

TEST_F(EnergyTest, TxTimeMatchesAirtime) {
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  r.transmit(std::vector<std::uint8_t>(20, 1));
  sim_.run_for(Duration::seconds(2));
  EXPECT_EQ(r.time_in_state(RadioState::Tx),
            phy::time_on_air(r.modulation(), 20));
  EXPECT_EQ(r.time_in_state(RadioState::Tx), r.stats().tx_airtime);
}

TEST_F(EnergyTest, CadTimeAccrues) {
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  r.start_cad();
  sim_.run_for(Duration::seconds(1));
  EXPECT_EQ(r.time_in_state(RadioState::Cad), phy::cad_time(r.modulation()));
}

TEST_F(EnergyTest, ChargeComputation) {
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  r.start_receive();
  sim_.run_for(Duration::hours(1));
  const EnergyProfile profile = EnergyProfile::sx1276();
  // One hour of RX at 11.5 mA = 11.5 mAh.
  EXPECT_NEAR(charge_consumed_mah(r, profile), 11.5, 1e-6);
  EXPECT_NEAR(average_current_ma(r, profile), 11.5, 1e-6);
}

TEST_F(EnergyTest, MixedStateCharge) {
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  r.sleep();
  sim_.run_for(Duration::minutes(30));
  r.start_receive();
  sim_.run_for(Duration::minutes(30));
  const double mah = charge_consumed_mah(r);
  // 0.5 h sleep (~0) + 0.5 h RX (5.75 mAh).
  EXPECT_NEAR(mah, 5.75, 0.01);
  EXPECT_NEAR(average_current_ma(r), 5.75, 0.01);
}

TEST_F(EnergyTest, RxDominatesAnAlwaysOnNode) {
  // A quiet listening node spends essentially everything on RX — the
  // structural energy cost of mesh routing vs class-A LoRaWAN.
  VirtualRadio r(sim_, channel_, 1, {0, 0}, {});
  r.start_receive();
  for (int i = 0; i < 24; ++i) {
    sim_.run_for(Duration::hours(1) - Duration::seconds(1));
    r.transmit(std::vector<std::uint8_t>(30, 1));  // one beacon-ish frame
    sim_.run_for(Duration::seconds(1));
    r.start_receive();
  }
  const double total = charge_consumed_mah(r);
  const double rx_part = EnergyProfile::sx1276().rx_ma *
                         r.time_in_state(RadioState::Rx).seconds_d() / 3600.0;
  EXPECT_GT(rx_part / total, 0.99);
}

TEST_F(EnergyTest, ProfileCurrents) {
  const EnergyProfile p = EnergyProfile::sx1276();
  EXPECT_DOUBLE_EQ(p.current_for(RadioState::Rx), p.rx_ma);
  EXPECT_DOUBLE_EQ(p.current_for(RadioState::Tx), p.tx_ma);
  EXPECT_GT(p.tx_ma, p.rx_ma);
  EXPECT_GT(p.rx_ma, p.standby_ma);
  EXPECT_GT(p.standby_ma, p.sleep_ma);
}

TEST_F(EnergyTest, BatteryLife) {
  // 2500 mAh at 11.5 mA ≈ 9.05 days.
  EXPECT_NEAR(battery_life_days(11.5, 2500.0), 9.06, 0.01);
  EXPECT_THROW(battery_life_days(0.0, 2500.0), ContractViolation);
  EXPECT_THROW(battery_life_days(1.0, 0.0), ContractViolation);
}

}  // namespace
}  // namespace lm::radio
