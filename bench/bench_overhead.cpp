// E3 — control-plane overhead vs network size and hello interval.
//
// Every node periodically broadcasts its full routing table, so per-node
// control traffic grows with both beacon rate and table size (network
// size). This is the central cost of the paper's design; the hello sweep
// is the overhead/freshness ablation called out in DESIGN.md.
#include <cstdio>

#include "bench_common.h"
#include "testbed/topology.h"

using namespace lm;

int main() {
  bench::banner("E3", "control overhead vs network size and hello interval",
                "per-node beacon traffic grows with network size; the hello "
                "interval trades overhead against route freshness");

  const Duration run_time = Duration::hours(6);

  std::printf("\nper-node control overhead over %0.f h of operation "
              "(random geometric fields):\n",
              run_time.seconds_d() / 3600.0);
  bench::Table t({"nodes", "hello", "beacons/node/h", "ctrl B/node/h",
                  "ctrl airtime s/node/h", "duty used", "beacon size B"});
  for (std::size_t n : {4u, 8u, 16u, 24u}) {
    const double side = 500.0 * std::sqrt(static_cast<double>(n));
    Rng layout_rng(77 + n);
    const auto positions =
        testbed::connected_random_field(n, side, side, 550.0, layout_rng);
    for (int hello_s : {30, 60, 120, 300}) {
      auto cfg = bench::campus_config(5000 + n * 10 + static_cast<unsigned>(hello_s));
      cfg.mesh.hello_interval = Duration::seconds(hello_s);
      testbed::MeshScenario s(cfg);
      s.add_nodes(positions);
      s.start_all();
      s.run_for(run_time);

      const auto total = s.total_stats();
      const double hours = run_time.seconds_d() / 3600.0;
      const double per_node_h = 1.0 / (static_cast<double>(n) * hours);
      const double beacon_bytes =
          total.beacons_sent > 0
              ? static_cast<double>(total.control_bytes_sent) /
                    static_cast<double>(total.beacons_sent)
              : 0.0;
      double max_util = 0.0;
      for (std::size_t i = 0; i < s.size(); ++i) {
        max_util = std::max(
            max_util, s.node(i).duty_cycle().utilization(s.simulator().now()));
      }
      t.row({std::to_string(n), bench::format("%d s", hello_s),
             bench::format("%.1f", static_cast<double>(total.beacons_sent) * per_node_h),
             bench::format("%.0f", static_cast<double>(total.control_bytes_sent) * per_node_h),
             bench::format("%.2f", total.control_airtime.seconds_d() * per_node_h),
             bench::format("%.2f %%", 100.0 * max_util),
             bench::format("%.0f", beacon_bytes)});
    }
  }
  t.print();

  std::printf("\nnote: beacon size grows ~3 B per known route, so control "
              "bytes scale as N * rate * tableSize — superlinear in N.\n");
  return 0;
}
