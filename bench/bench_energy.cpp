// E10 — energy: what mesh routing costs a battery-powered node.
//
// LoRaMesher keeps the radio in continuous receive so it can route for its
// peers — the structural difference from a LoRaWAN class-A device that
// sleeps between uplinks. This bench quantifies it with the SX1276 current
// model: per-node average current and projected battery life across hello
// intervals and traffic loads, against a class-A star device baseline.
#include <cstdio>

#include "baseline/star_network.h"
#include "bench_common.h"
#include "radio/energy.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct EnergyRow {
  double avg_ma = 0.0;
  double rx_share = 0.0;
  double tx_share = 0.0;
  double life_days = 0.0;
};

EnergyRow summarize(radio::VirtualRadio& r) {
  const auto profile = radio::EnergyProfile::sx1276();
  EnergyRow row;
  row.avg_ma = radio::average_current_ma(r, profile);
  const double total = radio::charge_consumed_mah(r, profile);
  row.rx_share = profile.rx_ma *
                 r.time_in_state(radio::RadioState::Rx).seconds_d() / 3600.0 /
                 total;
  row.tx_share = profile.tx_ma *
                 r.time_in_state(radio::RadioState::Tx).seconds_d() / 3600.0 /
                 total;
  row.life_days = radio::battery_life_days(row.avg_ma, 2500.0);
  return row;
}

}  // namespace

int main() {
  bench::banner("E10", "energy cost of always-on mesh routing (SX1276 model)",
                "a mesh router must listen continuously, so RX dominates "
                "energy regardless of protocol settings; class-A star "
                "devices sleep and last orders of magnitude longer");

  std::printf("\nmesh relay node (middle of an 8-node chain, 24 h, 1 pkt/min "
              "of transit traffic), 2500 mAh battery:\n");
  bench::Table t({"hello", "avg current", "RX share", "TX share", "battery life"});
  for (int hello_s : {30, 60, 120, 300}) {
    auto cfg = bench::campus_config(60 + static_cast<unsigned>(hello_s));
    cfg.mesh.hello_interval = Duration::seconds(hello_s);
    testbed::MeshScenario s(cfg);
    s.add_nodes(testbed::chain(8, bench::kChainSpacing));
    metrics::PacketTracker tracker;
    testbed::attach_tracker(s, tracker);
    s.start_all();
    s.run_until_converged(Duration::hours(2));
    testbed::DatagramTraffic traffic(s, tracker, 0, 7,
                                     {Duration::seconds(60), 16, true}, 5);
    traffic.start();
    s.run_for(Duration::hours(24));
    traffic.stop();
    const auto row = summarize(s.radio(4));  // a middle relay
    t.row({bench::format("%d s", hello_s), bench::format("%.2f mA", row.avg_ma),
           bench::format("%.1f %%", 100 * row.rx_share),
           bench::format("%.2f %%", 100 * row.tx_share),
           bench::format("%.1f days", row.life_days)});
  }
  t.print();

  std::printf("\nclass-A star end device (one 16 B uplink per minute, sleeps "
              "otherwise), same battery:\n");
  {
    sim::Simulator sim;
    radio::Channel channel(sim, radio::PropagationConfig::free_space(), 9);
    radio::VirtualRadio gw_radio(sim, channel, 1, {0, 0}, {});
    baseline::GatewayNode gateway(gw_radio, nullptr);
    gateway.start();
    radio::VirtualRadio dev_radio(sim, channel, 2, {1000, 0}, {});
    baseline::EndDeviceNode device(sim, dev_radio, 0x0042, {}, 9);
    device.start();
    dev_radio.sleep();  // class A: asleep unless transmitting
    for (int i = 0; i < 24 * 60; ++i) {
      sim.run_for(Duration::seconds(60));
      device.send_uplink(std::vector<std::uint8_t>(16, 1));
    }
    sim.run_for(Duration::minutes(1));
    const auto row = summarize(dev_radio);
    bench::Table star({"device", "avg current", "TX share", "battery life"});
    star.row({"class-A uplink-only", bench::format("%.3f mA", row.avg_ma),
              bench::format("%.1f %%", 100 * row.tx_share),
              bench::format("%.0f days", row.life_days)});
    star.print();
  }

  std::printf("\nduty-cycled listening (naive, unsynchronized — the "
              "future-work lever implemented as rx_duty): the relay sleeps "
              "its receiver, saving energy proportionally and losing every "
              "frame that lands in a sleep window:\n");
  {
    bench::Table sleepy({"rx duty", "avg current", "battery life",
                         "relay PDR (0->7 flow)"});
    for (double duty : {1.0, 0.5, 0.2}) {
      auto cfg = bench::campus_config(321);
      cfg.mesh.hello_interval = Duration::seconds(60);
      cfg.mesh.rx_duty = duty;
      cfg.mesh.rx_cycle_period = Duration::seconds(10);
      testbed::MeshScenario s(cfg);
      s.add_nodes(testbed::chain(8, bench::kChainSpacing));
      metrics::PacketTracker tracker;
      testbed::attach_tracker(s, tracker);
      s.start_all();
      s.run_for(Duration::minutes(30));  // sleepy discovery is slow
      testbed::DatagramTraffic traffic(s, tracker, 0, 7,
                                       {Duration::seconds(60), 16, true}, 5);
      traffic.start();
      s.run_for(Duration::hours(24));
      traffic.stop();
      const auto row = summarize(s.radio(4));
      sleepy.row({bench::format("%.0f %%", 100 * duty),
                  bench::format("%.2f mA", row.avg_ma),
                  bench::format("%.1f days", row.life_days),
                  bench::format("%.1f %%", 100 * tracker.pdr())});
    }
    sleepy.print();
  }

  std::printf("\nnote: the always-on gap is structural — the mesh node's RX "
              "share is >99 %% at every beacon setting. Naive sleeping "
              "buys the energy back but collapses delivery multiplicatively "
              "per hop; closing that gap needs synchronized wake-ups or "
              "wake-up radios, exactly the future work the LoRaMesher "
              "authors point to.\n");
  return 0;
}
