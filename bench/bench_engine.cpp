// Engine microbenchmark — the perf-trajectory anchor for the simulation
// core itself (no paper experiment attached).
//
// Two measurements:
//  * raw event loop: self-rescheduling timers with no radio or protocol
//    work, isolating scheduler overhead (slab allocation, heap push/pop);
//  * 16-node mesh: a full campus-field deployment with beacons, CSMA and
//    Poisson traffic — events/sec and simulated-seconds per wall-second as
//    experienced by real experiments.
//
// Cancel-heavy churn is included in the raw loop because protocol code
// cancels timers constantly (CSMA backoff, retransmission timers).
#include <cstdio>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "sim/simulator.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct LoopResult {
  double events_per_sec = 0.0;
  double wall_s = 0.0;
};

// Raw scheduler throughput: `timers` concurrent self-rescheduling chains,
// plus one cancelled-then-rescheduled timer per firing to exercise the
// cancel path the way CSMA/backoff code does.
LoopResult raw_event_loop(std::size_t timers, std::uint64_t total_events) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<std::function<void()>> chains(timers);
  sim::TimerId victim = 0;
  for (std::size_t i = 0; i < timers; ++i) {
    chains[i] = [&, i] {
      ++fired;
      // Churn: re-arm a decoy timer and cancel the previous one, as protocol
      // retry logic does on every state change.
      sim.cancel(victim);
      victim = sim.schedule_after(Duration::hours(1), [] {});
      if (fired < total_events) {
        sim.schedule_after(Duration::milliseconds(1 + static_cast<std::int64_t>(i)),
                           chains[i]);
      }
    };
    sim.schedule_after(Duration::milliseconds(1), chains[i]);
  }
  bench::WallTimer wall;
  while (fired < total_events && sim.step()) {
  }
  LoopResult r;
  r.wall_s = wall.seconds();
  r.events_per_sec =
      r.wall_s > 0 ? static_cast<double>(sim.events_processed()) / r.wall_s : 0.0;
  return r;
}

struct MeshResult {
  double events_per_sec = 0.0;
  double sim_s_per_wall_s = 0.0;
  double wall_s = 0.0;
  std::uint64_t events = 0;
  double pdr = 0.0;
};

// The reference workload: 16-node campus field, convergence, then two hours
// of beacons + 4 Poisson flows.
MeshResult mesh_16(std::uint64_t seed) {
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(60);
  testbed::MeshScenario s(cfg);
  Rng layout_rng(1016);
  s.add_nodes(testbed::connected_random_field(16, 2000.0, 2000.0, 550.0,
                                              layout_rng));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();

  std::vector<std::unique_ptr<testbed::DatagramTraffic>> flows;
  for (std::size_t i = 0; i < 4; ++i) {
    flows.push_back(std::make_unique<testbed::DatagramTraffic>(
        s, tracker, i, 15 - i,
        testbed::TrafficConfig{Duration::seconds(30), 16, true}, seed + 10 + i));
    flows.back()->start();
  }

  const Duration span = Duration::hours(2);
  bench::WallTimer wall;
  const std::uint64_t before = s.simulator().events_processed();
  s.run_for(span);
  const std::uint64_t events = s.simulator().events_processed() - before;
  MeshResult r;
  r.wall_s = wall.seconds();
  r.events = events;
  if (r.wall_s > 0) {
    r.events_per_sec = static_cast<double>(events) / r.wall_s;
    r.sim_s_per_wall_s = span.seconds_d() / r.wall_s;
  }
  for (auto& f : flows) f->stop();
  r.pdr = tracker.pdr();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_engine", argc, argv);
  bench::banner("ENGINE", "discrete-event core throughput",
                "perf anchor: events/sec of the bare scheduler and of a "
                "16-node mesh with live traffic (no paper claim)");

  std::printf("\nraw event loop (64 self-rescheduling timers + cancel churn, "
              "1M events):\n");
  const auto raw = raw_event_loop(64, 1'000'000);
  std::printf("  %.2f s wall, %.2fM events/sec\n", raw.wall_s,
              raw.events_per_sec / 1e6);
  reporter.metric("raw.events_per_sec", raw.events_per_sec);
  reporter.point("raw_loop", raw.wall_s);

  std::printf("\n16-node mesh, 2 simulated hours of beacons + 4 Poisson "
              "flows:\n");
  const auto mesh = mesh_16(7);
  std::printf("  %.2f s wall for %llu events\n", mesh.wall_s,
              static_cast<unsigned long long>(mesh.events));
  std::printf("  %.0f events/sec, %.0f simulated-seconds per wall-second, "
              "PDR %.1f %%\n",
              mesh.events_per_sec, mesh.sim_s_per_wall_s, 100 * mesh.pdr);
  reporter.metric("mesh16.events_per_sec", mesh.events_per_sec);
  reporter.metric("mesh16.sim_s_per_wall_s", mesh.sim_s_per_wall_s);
  reporter.metric("mesh16.events", static_cast<double>(mesh.events));
  reporter.metric("mesh16.pdr", mesh.pdr);
  reporter.point("mesh16", mesh.wall_s);
  return 0;
}
