// bench_scale — channel delivery scaling: spatial index vs brute force.
//
// Fields of N = 100..3000 radios at constant density (~25 neighbors within
// the campus decode radius) exchange randomized traffic; we time the whole
// simulation with the spatial-index delivery path and with the O(N^2)
// brute-force sweep. The paper's library targets dozens of nodes, but the
// simulator must scale far past that to host the scaling experiments in
// DESIGN.md — near-linear growth for the indexed path is the acceptance
// bar (>= 5x over brute force at 1000 nodes), with identical deliveries
// between the two paths as the correctness sanity check.
//
// Brute force is skipped above 1000 nodes; it would dominate the runtime
// without adding information.
#include <cstdint>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace {

using namespace lm;

struct RearmListener : radio::RadioListener {
  radio::VirtualRadio* radio = nullptr;
  std::uint64_t frames = 0;
  void on_frame_received(const std::vector<std::uint8_t>&,
                         const radio::FrameMeta&) override {
    ++frames;
  }
  void on_tx_done() override { radio->start_receive(); }
};

struct ScaleResult {
  double wall_s = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t transmitted = 0;
  std::uint64_t culled = 0;
};

// Constant-density random field: ~1500 m mean spacing keeps each frame's
// conservative candidate disc (~6.8 km under campus propagation with the
// 4-sigma shadowing/fading margin) at a few dozen radios regardless of N.
ScaleResult run_field(std::size_t n, bool indexed) {
  sim::Simulator sim;
  radio::ChannelConfig policy;
  policy.spatial_index = indexed;
  radio::Channel channel(sim, radio::PropagationConfig::campus(), policy,
                         0xB0B5 + n);
  const double side_m = 1500.0 * std::sqrt(static_cast<double>(n));
  Rng rng(0x5CA1E * (n + 1));

  std::vector<std::unique_ptr<radio::VirtualRadio>> radios;
  std::vector<std::unique_ptr<RearmListener>> listeners;
  radios.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    radios.push_back(std::make_unique<radio::VirtualRadio>(
        sim, channel, static_cast<radio::RadioId>(i + 1),
        phy::Position{rng.uniform(0.0, side_m), rng.uniform(0.0, side_m)},
        radio::RadioConfig{}));
    auto l = std::make_unique<RearmListener>();
    l->radio = radios.back().get();
    radios.back()->set_listener(l.get());
    radios.back()->start_receive();
    listeners.push_back(std::move(l));
  }

  // Each node sends 3 frames at random times over two simulated minutes.
  constexpr int kFramesPerNode = 3;
  constexpr double kWindowMs = 120'000.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (int f = 0; f < kFramesPerNode; ++f) {
      const auto at = TimePoint::origin() +
                      Duration::milliseconds(
                          static_cast<std::int64_t>(rng.uniform(0.0, kWindowMs)));
      sim.schedule_at(at, [&radios, i] {
        radios[i]->transmit(std::vector<std::uint8_t>(20, 0x42));
      });
    }
  }

  bench::WallTimer timer;
  sim.run_until(TimePoint::origin() + Duration::milliseconds(
                                          static_cast<std::int64_t>(kWindowMs)) +
                Duration::seconds(5));
  ScaleResult r;
  r.wall_s = timer.seconds();
  r.delivered = channel.stats().receptions_delivered;
  r.transmitted = channel.stats().frames_transmitted;
  r.culled = channel.stats().dropped_out_of_range;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::banner("E14", "channel scaling: spatial index vs brute force",
                "simulator hosts 100..3000-node fields; indexed delivery "
                "scales near-linearly (>= 5x over O(N^2) at 1000 nodes)");
  bench::Reporter reporter("bench_scale", argc, argv);

  std::printf("%8s %12s %12s %10s %12s %12s\n", "nodes", "indexed s",
              "brute s", "speedup", "delivered", "culled");

  const std::size_t sizes[] = {100, 300, 1000, 3000};
  for (const std::size_t n : sizes) {
    const ScaleResult indexed = run_field(n, /*indexed=*/true);
    reporter.point(bench::format("n%zu.indexed", n), indexed.wall_s);
    reporter.metric(bench::format("n%zu.delivered", n),
                    static_cast<double>(indexed.delivered));
    reporter.metric(bench::format("n%zu.culled", n),
                    static_cast<double>(indexed.culled));

    const bool run_brute = n <= 1000;
    ScaleResult brute;
    if (run_brute) {
      brute = run_field(n, /*indexed=*/false);
      reporter.point(bench::format("n%zu.brute", n), brute.wall_s);
      if (brute.delivered != indexed.delivered ||
          brute.transmitted != indexed.transmitted) {
        std::fprintf(stderr,
                     "MISMATCH at n=%zu: indexed %llu/%llu vs brute %llu/%llu "
                     "(delivered/transmitted)\n",
                     n, static_cast<unsigned long long>(indexed.delivered),
                     static_cast<unsigned long long>(indexed.transmitted),
                     static_cast<unsigned long long>(brute.delivered),
                     static_cast<unsigned long long>(brute.transmitted));
        return 1;
      }
      const double speedup = brute.wall_s / std::max(indexed.wall_s, 1e-9);
      reporter.metric(bench::format("n%zu.speedup", n), speedup);
      std::printf("%8zu %12.3f %12.3f %9.1fx %12llu %12llu\n", n,
                  indexed.wall_s, brute.wall_s, speedup,
                  static_cast<unsigned long long>(indexed.delivered),
                  static_cast<unsigned long long>(indexed.culled));
    } else {
      std::printf("%8zu %12.3f %12s %10s %12llu %12llu\n", n, indexed.wall_s,
                  "-", "-", static_cast<unsigned long long>(indexed.delivered),
                  static_cast<unsigned long long>(indexed.culled));
    }
  }
  return 0;
}
