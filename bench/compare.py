#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json artifacts and flag perf regressions.

Usage:
  bench/compare.py BASELINE_DIR CURRENT_DIR [--threshold=0.15] [--all]

Each directory holds the BENCH_<name>.json files written by
`bench/run_all.sh --json` (one flat JSON object per bench: metric name ->
number). The tool prints per-metric deltas for every bench present in both
sets and exits 1 when any timing metric regressed by more than the
threshold (relative).

Regression direction is inferred from the metric name:
  *wall_s, *_s        higher is worse (wall time)
  *per_s*, *per_sec*  lower is worse (throughput)
  everything else     informational only (counters, config echoes)

--all also prints metrics that moved less than the threshold.

Caveat: wall-clock numbers on a busy or single-core host jitter run to run
(±35% observed for sub-second benches on the 1-core reference container),
so confirm a flagged regression by re-running the bench alone
(`bench/run_all.sh --json --only=<name>`) before acting on it; the
deterministic behavior metrics (PDR, convergence, counters) never jitter —
any delta there is a real behavior change.
"""

import json
import os
import sys

THRESHOLD_DEFAULT = 0.15
# Ignore wall-time deltas below this absolute floor: sub-100 ms differences
# are process startup + scheduler granularity, not code speed.
EPSILON_S = 0.1


def load_dir(path):
    benches = {}
    try:
        names = sorted(os.listdir(path))
    except OSError as e:
        sys.exit(f"cannot read {path}: {e}")
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        full = os.path.join(path, name)
        try:
            with open(full) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"warning: skipping unreadable {full}: {e}", file=sys.stderr)
            continue
        bench = data.get("name", name[len("BENCH_"):-len(".json")])
        benches[bench] = {
            k: v for k, v in data.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    return benches


def direction(metric):
    """Returns 'time' (higher worse), 'rate' (lower worse) or None."""
    # Rates before times: sim_s_per_wall_s is a throughput despite its
    # trailing _s.
    if "per_s" in metric or "per_sec" in metric or "_per_" in metric:
        return "rate"
    if metric.endswith("wall_s") or metric.endswith("_s"):
        return "time"
    return None


def main(argv):
    threshold = THRESHOLD_DEFAULT
    show_all = False
    dirs = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--all":
            show_all = True
        elif arg.startswith("--"):
            sys.exit(f"unknown option {arg}\n{__doc__}")
        else:
            dirs.append(arg)
    if len(dirs) != 2:
        sys.exit(__doc__)

    base, cur = load_dir(dirs[0]), load_dir(dirs[1])
    common = sorted(set(base) & set(cur))
    if not common:
        sys.exit(f"no common benches between {dirs[0]} and {dirs[1]}")
    for only, where in ((set(base) - set(cur), dirs[1]),
                        (set(cur) - set(base), dirs[0])):
        for bench in sorted(only):
            print(f"note: {bench} missing from {where}")

    regressions = []
    for bench in common:
        header_printed = False
        for metric in sorted(set(base[bench]) & set(cur[bench])):
            b, c = base[bench][metric], cur[bench][metric]
            kind = direction(metric)
            delta = c - b
            rel = delta / b if b != 0 else (0.0 if c == 0 else float("inf"))
            worse = ((kind == "time" and rel > threshold
                      and abs(delta) > EPSILON_S) or
                     (kind == "rate" and rel < -threshold))
            improved = ((kind == "time" and rel < -threshold
                         and abs(delta) > EPSILON_S) or
                        (kind == "rate" and rel > threshold))
            if not (worse or improved or show_all):
                continue
            if not header_printed:
                print(f"=== {bench} ===")
                header_printed = True
            tag = "REGRESSION" if worse else ("improved" if improved else "")
            print(f"  {metric:<44} {b:>12.4g} -> {c:>12.4g} "
                  f"({rel:+8.1%}) {tag}")
            if worse:
                regressions.append((bench, metric, rel))

    print()
    if regressions:
        print(f"{len(regressions)} regression(s) beyond {threshold:.0%}:")
        for bench, metric, rel in regressions:
            print(f"  {bench}.{metric}: {rel:+.1%}")
        return 1
    print(f"no regressions beyond {threshold:.0%} "
          f"across {len(common)} bench(es)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
