// E6 — route repair after node failure.
//
// When a relay dies, its routes stop being refreshed and age out after
// route_timeout_intervals hello periods, at which point an alternate path
// (if any) takes over. Measures both the routing-layer re-convergence time
// and the application-visible delivery gap, and ablates the timeout factor.
//
// The three timeout ablation points are independent simulations, sharded
// across a ParallelRunner.
#include <cstdio>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/parallel_runner.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct Repair {
  double reconverge_s = -1.0;   // failure -> tables correct again
  double delivery_gap_s = -1.0; // last delivery before -> first after
  double pdr_after = 0.0;       // delivery ratio in the hour after failure
  double wall_s = 0.0;
};

Repair run(int timeout_intervals, std::uint64_t seed) {
  bench::WallTimer wall;
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(60);
  cfg.mesh.route_timeout_intervals = timeout_intervals;
  testbed::MeshScenario s(cfg);
  // Diamond: 0 - {1,2} - 3; two parallel relays.
  s.add_node({0.0, 0.0});
  s.add_node({bench::kChainSpacing, 150.0});
  s.add_node({bench::kChainSpacing, -150.0});
  s.add_node({2 * bench::kChainSpacing, 0.0});
  s.start_all();
  if (!s.run_until_converged(Duration::hours(2), Duration::seconds(5), 0.9,
                             /*exact_metric=*/false)) {
    return {};
  }

  TimePoint last_delivery;
  TimePoint first_after_failure = TimePoint::max();
  std::uint64_t delivered_after = 0, sent_after = 0;
  bool failed = false;
  s.node(3).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        last_delivery = s.simulator().now();
        if (failed) {
          delivered_after++;
          if (first_after_failure == TimePoint::max()) {
            first_after_failure = s.simulator().now();
          }
        }
      });

  // Steady traffic 0 -> 3, one packet per 20 s (manual, so we can count).
  auto send_one = [&] {
    if (failed) sent_after++;
    std::vector<std::uint8_t> p(16, 0xAA);
    s.node(0).send_datagram(s.address_of(3), std::move(p));
  };
  for (int i = 0; i < 30; ++i) {  // 10 min warmup
    send_one();
    s.run_for(Duration::seconds(20));
  }

  // Kill the relay currently carrying the route.
  const auto route = s.node(0).routing_table().route_to(s.address_of(3));
  if (!route) return {};
  s.fail_node(*s.index_of(route->via));
  failed = true;
  const TimePoint failure_time = s.simulator().now();
  const TimePoint last_before = last_delivery;

  Repair r;
  for (int i = 0; i < 180; ++i) {  // 1 h of post-failure traffic
    send_one();
    s.run_for(Duration::seconds(20));
    if (r.reconverge_s < 0 && s.converged(0.9, false)) {
      r.reconverge_s = (s.simulator().now() - failure_time).seconds_d();
    }
  }
  if (first_after_failure != TimePoint::max()) {
    r.delivery_gap_s = (first_after_failure - last_before).seconds_d();
  }
  r.pdr_after = sent_after > 0 ? static_cast<double>(delivered_after) /
                                     static_cast<double>(sent_after)
                               : 0.0;
  r.wall_s = wall.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_route_repair", argc, argv);
  bench::banner("E6", "route repair after relay failure (diamond topology)",
                "routes through a dead relay age out after "
                "route_timeout_intervals hello periods, then the alternate "
                "relay takes over; smaller timeouts repair faster but risk "
                "flapping");

  const std::vector<int> timeouts{3, 5, 10};
  testbed::ParallelRunner runner(reporter.threads());
  std::printf("\nsharding %zu runs over %zu threads\n", timeouts.size(),
              runner.threads());
  const auto results = runner.map<Repair>(timeouts.size(), [&](std::size_t i) {
    return run(timeouts[i], 99);
  });

  bench::Table t({"timeout (hellos)", "expected age-out", "re-convergence",
                  "delivery gap", "PDR in hour after failure"});
  for (std::size_t i = 0; i < timeouts.size(); ++i) {
    const int intervals = timeouts[i];
    const auto& r = results[i];
    t.row({std::to_string(intervals), bench::format("%d s", intervals * 60),
           r.reconverge_s >= 0 ? bench::format("%.0f s", r.reconverge_s) : "never",
           r.delivery_gap_s >= 0 ? bench::format("%.0f s", r.delivery_gap_s) : "never",
           bench::format("%.1f %%", 100 * r.pdr_after)});
    const std::string label = bench::format("timeout_%d", intervals);
    reporter.point(label, r.wall_s);
    reporter.metric(label + ".pdr_after", r.pdr_after);
  }
  t.print();

  std::printf("\nnote: the delivery gap tracks the age-out time, since the "
              "sender keeps unicasting into the dead next hop until the "
              "route expires (the prototype has no link-failure detection).\n");
  return 0;
}
