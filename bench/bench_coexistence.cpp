// E13 — coexistence: the mesh under a co-located LoRaWAN population.
//
// The paper's mesh does not get a private band. This bench loads the
// channel with class-A ALOHA uplinks from a background deployment and
// measures mesh delivery as the interferer population grows — once with
// the interferers on the mesh's own SF (worst case, co-SF collisions) and
// once with LoRaWAN-typical mixed SFs (quasi-orthogonal: the capture
// matrix mostly rejects them).
#include <cstdio>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/background_traffic.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct CoexResult {
  double pdr = 0.0;
  double p95_ms = 0.0;
  double bg_airtime_s = 0.0;
  std::uint64_t collisions = 0;
};

CoexResult run(std::size_t interferers, bool mixed_sf, std::uint64_t seed) {
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(60);
  testbed::MeshScenario s(cfg);
  s.add_nodes(testbed::chain(4, bench::kChainSpacing));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  if (!s.run_until_converged(Duration::hours(1))) return {};

  testbed::BackgroundConfig bg;
  bg.devices = interferers;
  bg.mean_uplink_interval = Duration::minutes(2);  // chatty deployment
  bg.area_width_m = 3 * bench::kChainSpacing;
  bg.area_height_m = 800.0;
  bg.mixed_spreading_factors = mixed_sf;
  bg.radio = cfg.radio;
  std::optional<testbed::BackgroundTraffic> background;
  if (interferers > 0) {
    background.emplace(s.simulator(), s.channel(), bg, seed + 7);
    background->start();
  }

  s.channel().reset_stats();
  testbed::DatagramTraffic traffic(s, tracker, 0, 3,
                                   {Duration::seconds(30), 16, true}, seed + 1);
  traffic.start();
  s.run_for(Duration::hours(4));
  traffic.stop();
  if (background) background->stop();
  s.run_for(Duration::minutes(1));

  CoexResult r;
  r.pdr = tracker.pdr();
  r.p95_ms = 1e3 * tracker.latency().percentile(95);
  r.bg_airtime_s = background ? background->airtime_injected().seconds_d() : 0.0;
  r.collisions = s.channel().stats().dropped_collision;
  return r;
}

}  // namespace

int main() {
  bench::banner("E13", "coexistence with a co-located LoRaWAN population",
                "co-SF interferers erode mesh delivery as their number "
                "grows; mixed-SF LoRaWAN traffic is quasi-orthogonal and "
                "mostly harmless");

  bench::Table t({"interferers", "interferer SFs", "bg airtime (4 h)",
                  "collisions", "mesh PDR", "p95 latency"});
  for (std::size_t n : {0u, 5u, 15u, 40u}) {
    for (const bool mixed : {false, true}) {
      if (n == 0 && mixed) continue;  // baseline once
      const auto r = run(n, mixed, 77);
      t.row({std::to_string(n),
             n == 0 ? "-" : (mixed ? "SF7..SF12" : "same (SF7)"),
             bench::format("%.0f s", r.bg_airtime_s),
             std::to_string(r.collisions),
             bench::format("%.1f %%", 100 * r.pdr),
             bench::format("%.0f ms", r.p95_ms)});
    }
  }
  t.print();

  std::printf("\nnote: the mesh's CSMA defers to audible co-SF interferers, "
              "but background devices are ALOHA and never defer back — the "
              "hidden-terminal share of their airtime lands on the relays.\n");
  return 0;
}
