// E2 — routing-table convergence time vs network size.
//
// Distance-vector information travels one hop per beacon period, so
// convergence should grow roughly linearly with network diameter and be a
// small multiple of the hello interval. Chains stress diameter; random
// geometric fields stress realistic multi-path layouts.
#include <cstdio>

#include "bench_common.h"
#include "support/stats.h"
#include "testbed/topology.h"

using namespace lm;

namespace {

struct Result {
  double mean_s = 0.0;
  double max_s = 0.0;
  int diameter = 0;
  bool all_converged = true;
};

Result measure(const std::vector<phy::Position>& positions, Duration hello,
               const std::vector<std::uint64_t>& seeds) {
  Result r;
  lm::RunningStats stats;
  for (std::uint64_t seed : seeds) {
    auto cfg = bench::campus_config(seed);
    cfg.mesh.hello_interval = hello;
    testbed::MeshScenario s(cfg);
    s.add_nodes(positions);
    s.start_all();
    const auto hops = s.expected_hops();
    for (const auto& row : hops) {
      for (int h : row) r.diameter = std::max(r.diameter, h);
    }
    const auto elapsed = s.run_until_converged(Duration::hours(4),
                                               Duration::seconds(5));
    if (!elapsed) {
      r.all_converged = false;
      continue;
    }
    stats.add(elapsed->seconds_d());
  }
  r.mean_s = stats.mean();
  r.max_s = stats.max();
  return r;
}

}  // namespace

int main() {
  bench::banner("E2", "convergence time vs network size",
                "tables converge within a few hello periods; time grows with "
                "network diameter (one hop of information per beacon)");

  const std::vector<std::uint64_t> seeds{11, 22, 33};
  const Duration hello = Duration::seconds(60);

  std::printf("\nchain topologies (hello = 60 s, 3 seeds):\n");
  bench::Table chains({"nodes", "diameter", "mean convergence", "max",
                       "mean / hello"});
  for (std::size_t n : {2u, 4u, 8u, 12u, 16u, 20u, 24u}) {
    const auto r = measure(testbed::chain(n, bench::kChainSpacing), hello, seeds);
    if (!r.all_converged) {
      // Paths longer than kInfiniteMetric - 1 hops are unroutable by design
      // (RIP-style bounded metric), so chains beyond 16 nodes cannot fully
      // converge — the faithful behaviour of the prototype's 8-bit metric.
      chains.row({std::to_string(n), std::to_string(r.diameter),
                  "n/a (metric cap 16)", "-", "-"});
      continue;
    }
    chains.row({std::to_string(n), std::to_string(r.diameter),
                bench::format("%.0f s", r.mean_s), bench::format("%.0f s", r.max_s),
                bench::format("%.1fx", r.mean_s / hello.seconds_d())});
  }
  chains.print();

  std::printf("\nrandom geometric fields (600 m link radius budget, density "
              "held ~constant):\n");
  bench::Table fields({"nodes", "field", "diameter", "mean convergence", "max"});
  for (std::size_t n : {8u, 16u, 24u}) {
    // Grow the field with N so multi-hop structure persists.
    const double side = 500.0 * std::sqrt(static_cast<double>(n));
    Rng rng(1000 + n);
    const auto positions =
        testbed::connected_random_field(n, side, side, 550.0, rng);
    const auto r = measure(positions, hello, seeds);
    fields.row({std::to_string(n), bench::format("%.0fx%.0f m", side, side),
                std::to_string(r.diameter), bench::format("%.0f s", r.mean_s),
                bench::format("%.0f s", r.max_s)});
  }
  fields.print();

  std::printf("\nhello-interval sweep on an 8-node chain (ablation):\n");
  bench::Table sweep({"hello", "mean convergence", "mean / hello"});
  for (int hello_s : {30, 60, 120, 300}) {
    const auto r = measure(testbed::chain(8, bench::kChainSpacing),
                           Duration::seconds(hello_s), seeds);
    sweep.row({bench::format("%d s", hello_s), bench::format("%.0f s", r.mean_s),
               bench::format("%.1fx", r.mean_s / hello_s)});
  }
  sweep.print();
  return 0;
}
