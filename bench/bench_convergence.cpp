// E2 — routing-table convergence time vs network size.
//
// Distance-vector information travels one hop per beacon period, so
// convergence should grow roughly linearly with network diameter and be a
// small multiple of the hello interval. Chains stress diameter; random
// geometric fields stress realistic multi-path layouts.
//
// Every (topology, hello, seed) run is self-contained, so the whole sweep
// is sharded across a ParallelRunner; results are aggregated in input
// order, making the tables independent of thread count.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "support/stats.h"
#include "testbed/parallel_runner.h"
#include "testbed/topology.h"

using namespace lm;

namespace {

// One converge attempt; a pure function of (positions, hello, seed).
struct SingleRun {
  bool converged = false;
  double elapsed_s = 0.0;
  int diameter = 0;
};

SingleRun measure_one(const std::vector<phy::Position>& positions,
                      Duration hello, std::uint64_t seed) {
  SingleRun r;
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = hello;
  testbed::MeshScenario s(cfg);
  s.add_nodes(positions);
  s.start_all();
  for (const auto& row : s.expected_hops()) {
    for (int h : row) r.diameter = std::max(r.diameter, h);
  }
  const auto elapsed =
      s.run_until_converged(Duration::hours(4), Duration::seconds(5));
  if (elapsed) {
    r.converged = true;
    r.elapsed_s = elapsed->seconds_d();
  }
  return r;
}

// Aggregate over the per-seed runs of one sweep point.
struct Result {
  double mean_s = 0.0;
  double max_s = 0.0;
  int diameter = 0;
  bool all_converged = true;
};

Result aggregate(const std::vector<SingleRun>& runs) {
  Result r;
  lm::RunningStats stats;
  for (const SingleRun& run : runs) {
    r.diameter = std::max(r.diameter, run.diameter);
    if (!run.converged) {
      r.all_converged = false;
      continue;
    }
    stats.add(run.elapsed_s);
  }
  r.mean_s = stats.mean();
  r.max_s = stats.max();
  return r;
}

struct Job {
  std::vector<phy::Position> positions;
  Duration hello;
  std::uint64_t seed;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_convergence", argc, argv);
  bench::banner("E2", "convergence time vs network size",
                "tables converge within a few hello periods; time grows with "
                "network diameter (one hop of information per beacon)");

  const std::vector<std::uint64_t> seeds{11, 22, 33};
  const Duration hello = Duration::seconds(60);
  const std::vector<std::size_t> chain_sizes{2, 4, 8, 12, 16, 20, 24};
  const std::vector<std::size_t> field_sizes{8, 16, 24};
  const std::vector<int> hello_sweep_s{30, 60, 120, 300};

  // Flatten every (topology, hello, seed) combination into one job list and
  // shard it; jobs are grouped per sweep point in input order so the
  // aggregation below just walks contiguous stripes of `seeds.size()`.
  std::vector<Job> jobs;
  for (std::size_t n : chain_sizes) {
    for (std::uint64_t seed : seeds) {
      jobs.push_back({testbed::chain(n, bench::kChainSpacing), hello, seed});
    }
  }
  for (std::size_t n : field_sizes) {
    const double side = 500.0 * std::sqrt(static_cast<double>(n));
    Rng rng(1000 + n);
    const auto positions =
        testbed::connected_random_field(n, side, side, 550.0, rng);
    for (std::uint64_t seed : seeds) jobs.push_back({positions, hello, seed});
  }
  for (int hello_s : hello_sweep_s) {
    for (std::uint64_t seed : seeds) {
      jobs.push_back({testbed::chain(8, bench::kChainSpacing),
                      Duration::seconds(hello_s), seed});
    }
  }

  testbed::ParallelRunner runner(reporter.threads());
  std::printf("\nsharding %zu runs over %zu threads\n", jobs.size(),
              runner.threads());
  bench::WallTimer sweep_timer;
  const auto runs = runner.map<SingleRun>(jobs.size(), [&](std::size_t i) {
    return measure_one(jobs[i].positions, jobs[i].hello, jobs[i].seed);
  });
  reporter.point("all_runs", sweep_timer.seconds());
  reporter.metric("runs", static_cast<double>(jobs.size()));

  std::size_t next = 0;
  auto take = [&] {
    std::vector<SingleRun> group(runs.begin() + static_cast<std::ptrdiff_t>(next),
                                 runs.begin() + static_cast<std::ptrdiff_t>(
                                                    next + seeds.size()));
    next += seeds.size();
    return aggregate(group);
  };

  std::printf("\nchain topologies (hello = 60 s, %zu seeds):\n", seeds.size());
  bench::Table chains({"nodes", "diameter", "mean convergence", "max",
                       "mean / hello"});
  for (std::size_t n : chain_sizes) {
    const auto r = take();
    if (!r.all_converged) {
      // Paths longer than kInfiniteMetric - 1 hops are unroutable by design
      // (RIP-style bounded metric), so chains beyond 16 nodes cannot fully
      // converge — the faithful behaviour of the prototype's 8-bit metric.
      chains.row({std::to_string(n), std::to_string(r.diameter),
                  "n/a (metric cap 16)", "-", "-"});
      continue;
    }
    chains.row({std::to_string(n), std::to_string(r.diameter),
                bench::format("%.0f s", r.mean_s), bench::format("%.0f s", r.max_s),
                bench::format("%.1fx", r.mean_s / hello.seconds_d())});
    reporter.metric(bench::format("chain_%zu.mean_convergence_s", n), r.mean_s);
  }
  chains.print();

  std::printf("\nrandom geometric fields (600 m link radius budget, density "
              "held ~constant):\n");
  bench::Table fields({"nodes", "field", "diameter", "mean convergence", "max"});
  for (std::size_t n : field_sizes) {
    const double side = 500.0 * std::sqrt(static_cast<double>(n));
    const auto r = take();
    fields.row({std::to_string(n), bench::format("%.0fx%.0f m", side, side),
                std::to_string(r.diameter), bench::format("%.0f s", r.mean_s),
                bench::format("%.0f s", r.max_s)});
    reporter.metric(bench::format("field_%zu.mean_convergence_s", n), r.mean_s);
  }
  fields.print();

  std::printf("\nhello-interval sweep on an 8-node chain (ablation):\n");
  bench::Table sweep({"hello", "mean convergence", "mean / hello"});
  for (int hello_s : hello_sweep_s) {
    const auto r = take();
    sweep.row({bench::format("%d s", hello_s), bench::format("%.0f s", r.mean_s),
               bench::format("%.1fx", r.mean_s / hello_s)});
    reporter.metric(bench::format("hello_%d.mean_convergence_s", hello_s),
                    r.mean_s);
  }
  sweep.print();
  return 0;
}
