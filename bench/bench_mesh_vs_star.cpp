// E7 — coverage: LoRaMesher mesh vs LoRaWAN-style single-gateway star.
//
// The paper's motivation: a star only serves nodes in direct radio range of
// the gateway; a mesh extends coverage by relaying. We place devices at
// increasing distance along a line of relays and measure delivery to the
// sink/gateway under both architectures.
#include <cstdio>

#include "baseline/star_network.h"
#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

// One device at chain position `idx` sends periodic uplinks to the node at
// position 0 (gateway/sink). Returns the delivery ratio.
double star_pdr(std::size_t idx, std::uint64_t seed) {
  sim::Simulator sim;
  radio::PropagationConfig prop;
  prop.path_loss = phy::make_log_distance(3.5, 40.0);
  radio::Channel channel(sim, prop, seed);
  radio::VirtualRadio gw_radio(sim, channel, 1, {0, 0}, {});
  radio::VirtualRadio dev_radio(
      sim, channel, 2,
      {static_cast<double>(idx) * bench::kChainSpacing, 0.0}, {});

  std::uint64_t received = 0;
  baseline::GatewayNode gateway(
      gw_radio, [&](net::Address, std::uint16_t,
                    const std::vector<std::uint8_t>&) { received++; });
  gateway.start();
  baseline::EndDeviceNode device(sim, dev_radio, 0x0042, {}, seed + 1);
  device.start();

  const int uplinks = 50;
  for (int i = 0; i < uplinks; ++i) {
    device.send_uplink(std::vector<std::uint8_t>(16, 0x55));
    sim.run_for(Duration::seconds(30));
  }
  return static_cast<double>(received) / uplinks;
}

// The same device position, but with the full relay chain running
// LoRaMesher; delivery to node 0.
double mesh_pdr(std::size_t idx, std::uint64_t seed) {
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(60);
  testbed::MeshScenario s(cfg);
  s.add_nodes(testbed::chain(idx + 1, bench::kChainSpacing));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  if (!s.run_until_converged(Duration::hours(2))) return 0.0;

  testbed::DatagramTraffic traffic(s, tracker, idx, 0,
                                   {Duration::seconds(30), 16, false}, seed + 2);
  traffic.start();
  s.run_for(Duration::seconds(30) * 50);
  traffic.stop();
  s.run_for(Duration::minutes(1));
  return tracker.pdr();
}

}  // namespace

int main() {
  bench::banner("E7", "coverage: mesh vs LoRaWAN-style star",
                "beyond single-hop radio range the star delivers nothing, "
                "while the mesh keeps delivering by relaying through "
                "intermediate nodes");

  bench::Table t({"device distance", "hops needed", "star PDR", "mesh PDR"});
  for (std::size_t idx : {1u, 2u, 3u, 4u, 6u}) {
    const double star = star_pdr(idx, 10);
    const double mesh = mesh_pdr(idx, 10);
    t.row({bench::format("%.0f m", static_cast<double>(idx) * bench::kChainSpacing),
           std::to_string(idx), bench::format("%.1f %%", 100 * star),
           bench::format("%.1f %%", 100 * mesh)});
  }
  t.print();

  std::printf("\nnote: with log-distance n=3.5 the single-hop budget runs "
              "out between 400 m and 800 m; the crossover is exactly where "
              "the paper's mesh argument starts to pay.\n");
  return 0;
}
