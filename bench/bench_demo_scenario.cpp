// E1 — the paper's demo: a small testbed of LoRa nodes forms a mesh via
// periodic routing beacons, then two end nodes exchange data packets while
// the intermediate nodes act as routers.
//
// Regenerates: the demo walkthrough (paper Fig. 3 testbed behaviour) —
// routing-table growth over time, the converged tables, and an end-to-end
// exchange between the two chain ends through two routers.
#include <cstdio>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

int main() {
  bench::banner("E1", "LoRaMesher demo scenario (4-node testbed)",
                "routing tables converge within a few hello periods; the two "
                "end nodes then exchange packets with the middle nodes "
                "forwarding");

  auto cfg = bench::campus_config(2022);
  cfg.mesh.hello_interval = Duration::seconds(60);  // the demo's setting
  testbed::MeshScenario s(cfg);
  s.add_nodes(testbed::chain(4, bench::kChainSpacing));
  s.start_all();

  std::printf("\nmesh formation (hello interval 60 s):\n");
  bench::Table formation({"time", "node1 routes", "node2 routes", "node3 routes",
                          "node4 routes", "converged"});
  for (int minute = 1; minute <= 8; ++minute) {
    s.run_for(Duration::minutes(1));
    formation.row({bench::format("%d min", minute),
                   std::to_string(s.node(0).routing_table().size()),
                   std::to_string(s.node(1).routing_table().size()),
                   std::to_string(s.node(2).routing_table().size()),
                   std::to_string(s.node(3).routing_table().size()),
                   s.converged() ? "yes" : "no"});
    if (s.converged() && minute >= 4) break;
  }
  formation.print();

  std::printf("\nconverged routing tables:\n%s\n", s.dump_routing_tables().c_str());

  // Two end nodes exchange datagrams; 0x0002/0x0003 act as routers.
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  testbed::DatagramTraffic a_to_b(s, tracker, 0, 3,
                                  {Duration::seconds(20), 16, true}, 7);
  testbed::DatagramTraffic b_to_a(s, tracker, 3, 0,
                                  {Duration::seconds(20), 16, true}, 8);
  a_to_b.start();
  b_to_a.start();
  s.run_for(Duration::minutes(20));
  a_to_b.stop();
  b_to_a.stop();

  std::printf("end-to-end exchange between %s and %s (20 min, ~1 pkt/20 s "
              "each way):\n",
              net::to_string(s.address_of(0)).c_str(),
              net::to_string(s.address_of(3)).c_str());
  bench::Table exchange({"metric", "value"});
  exchange.row({"datagrams sent", std::to_string(tracker.attempted())});
  exchange.row({"delivered", std::to_string(tracker.delivered())});
  exchange.row({"PDR", bench::format("%.1f %%", 100.0 * tracker.pdr())});
  exchange.row({"median latency", bench::format("%.0f ms",
                                                1e3 * tracker.latency().median())});
  exchange.row({"p95 latency", bench::format("%.0f ms",
                                             1e3 * tracker.latency().percentile(95))});
  exchange.row({"hops (median)", bench::format("%.0f", tracker.hops().median())});
  exchange.row({"frames forwarded by routers",
                std::to_string(s.node(1).stats().packets_forwarded +
                               s.node(2).stats().packets_forwarded)});
  exchange.print();

  const auto total = s.total_stats();
  std::printf("\ncontrol plane: %llu beacons, %llu control bytes, "
              "%.2f s control airtime total\n",
              static_cast<unsigned long long>(total.beacons_sent),
              static_cast<unsigned long long>(total.control_bytes_sent),
              total.control_airtime.seconds_d());
  return 0;
}
