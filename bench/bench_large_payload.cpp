// E5 — reliable large-payload transfers ("XL packets"): goodput and
// retransmission cost vs payload size and link loss, over a 3-hop chain.
//
// The first three tables characterize the ARQ itself (duty-cycle limiter
// disabled): fragmentation, streaming, and LOST/POLL repair. The last table
// re-enables the EU868 1 % duty cycle, which is the real-world ceiling for
// XL transfers at SF7 — every relay also spends the airtime, so a multi-hop
// transfer consumes the budget of the whole path.
#include <cstdio>

#include "bench_common.h"
#include "support/stats.h"
#include "testbed/topology.h"

using namespace lm;

namespace {

struct Outcome {
  bool completed = false;
  double seconds = 0.0;
  double goodput_bps = 0.0;
  std::uint64_t fragments = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t duty_delays = 0;
};

Outcome run_transfer(std::size_t payload_bytes, double loss,
                     Duration fragment_spacing, double duty_limit,
                     std::uint64_t seed) {
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(120);  // keep the channel quiet
  cfg.mesh.fragment_spacing = fragment_spacing;
  cfg.mesh.reliable_retry_timeout = Duration::seconds(20);
  cfg.mesh.receiver_gap_timeout = Duration::seconds(25);
  cfg.mesh.receiver_session_timeout = Duration::hours(3);
  cfg.mesh.poll_max_retries = 30;  // duty-cycle pauses can stretch minutes
  cfg.mesh.sync_max_retries = 15;  // 30 % per-link loss cubes over 3 hops
  cfg.mesh.duty_cycle_limit = duty_limit;
  testbed::MeshScenario s(cfg);
  s.add_nodes(testbed::chain(4, bench::kChainSpacing));
  s.start_all();
  if (!s.run_until_converged(Duration::hours(2))) return {};
  for (radio::RadioId id = 1; id <= 3; ++id) {
    s.channel().set_link_extra_loss(id, id + 1, loss);
  }

  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  bool match = false;
  s.node(3).set_reliable_handler(
      [&](net::Address, std::vector<std::uint8_t> data) { match = data == payload; });

  Outcome o;
  const TimePoint start = s.simulator().now();
  int result = -1;
  if (!s.node(0).send_reliable(s.address_of(3), payload,
                               [&](bool ok) { result = ok ? 1 : 0; })) {
    return o;
  }
  TimePoint finished = start;
  while (result == -1 && s.simulator().now() - start < Duration::hours(6)) {
    s.run_for(Duration::seconds(5));
    if (result == -1) finished = s.simulator().now();
  }
  o.completed = result == 1 && match;
  o.seconds = (finished - start).seconds_d();
  if (o.completed && o.seconds > 0) {
    o.goodput_bps = 8.0 * static_cast<double>(payload_bytes) / o.seconds;
  }
  o.fragments = s.node(0).stats().fragments_sent;
  o.retransmitted = s.node(0).stats().fragments_retransmitted;
  o.duty_delays = s.total_stats().duty_cycle_delays;
  return o;
}

}  // namespace

int main() {
  bench::banner("E5", "reliable large-payload transfer over a 3-hop chain",
                "arbitrary-size payloads are fragmented, streamed and "
                "repaired via LOST/DONE; goodput degrades gracefully with "
                "link loss, and the regional duty cycle is the hard ceiling");

  const double kNoDuty = 1.0;

  std::printf("\npayload size sweep (clean links, no duty limit, spacing "
              "100 ms):\n");
  bench::Table sizes({"payload", "fragments", "time", "goodput", "retx", "ok"});
  for (std::size_t bytes : {512u, 2048u, 8192u, 16384u}) {
    const auto o = run_transfer(bytes, 0.0, Duration::milliseconds(100), kNoDuty, 3);
    sizes.row({bench::format("%zu B", bytes), std::to_string(o.fragments),
               bench::format("%.0f s", o.seconds),
               bench::format("%.0f bit/s", o.goodput_bps),
               std::to_string(o.retransmitted), o.completed ? "yes" : "NO"});
  }
  sizes.print();

  std::printf("\nlink-loss sweep (8 KiB payload, no duty limit):\n");
  bench::Table losses({"per-link loss", "time", "goodput", "fragments sent",
                       "retx", "ok"});
  for (double loss : {0.0, 0.1, 0.2, 0.3}) {
    const auto o =
        run_transfer(8192, loss, Duration::milliseconds(100), kNoDuty, 4);
    losses.row({bench::format("%.0f %%", 100 * loss),
                bench::format("%.0f s", o.seconds),
                bench::format("%.0f bit/s", o.goodput_bps),
                std::to_string(o.fragments), std::to_string(o.retransmitted),
                o.completed ? "yes" : "NO"});
  }
  losses.print();

  std::printf("\nfragment-pacing ablation (8 KiB, 10 %% loss, no duty "
              "limit): the CSMA gate already paces the sender behind its "
              "first-hop relay, so added spacing mostly shifts fragments "
              "into the hidden second relay's transmission slots — more "
              "repair rounds, lower goodput.\n");
  bench::Table pacing({"spacing", "time", "goodput", "retx", "ok"});
  for (int spacing_ms : {0, 100, 400, 800}) {
    const auto o = run_transfer(8192, 0.1, Duration::milliseconds(spacing_ms),
                                kNoDuty, 5);
    pacing.row({bench::format("%d ms", spacing_ms),
                bench::format("%.0f s", o.seconds),
                bench::format("%.0f bit/s", o.goodput_bps),
                std::to_string(o.retransmitted), o.completed ? "yes" : "NO"});
  }
  pacing.print();

  std::printf("\nsingle-packet reliability: acked datagram (NEED_ACK) vs a "
              "1-fragment XL transfer, 100 B over 3 hops, 10 %% loss:\n");
  {
    bench::Table single({"mechanism", "confirmed", "median confirm time",
                         "frames on air"});
    for (const bool use_acked : {true, false}) {
      auto cfg = bench::campus_config(11);
      cfg.mesh.hello_interval = Duration::seconds(120);
      cfg.mesh.duty_cycle_limit = 1.0;
      cfg.mesh.acked_retry_timeout = Duration::seconds(8);
      cfg.mesh.reliable_retry_timeout = Duration::seconds(8);
      cfg.mesh.receiver_gap_timeout = Duration::seconds(10);
      cfg.mesh.sync_max_retries = 10;
      testbed::MeshScenario s(cfg);
      s.add_nodes(testbed::chain(4, bench::kChainSpacing));
      s.start_all();
      if (!s.run_until_converged(Duration::hours(1))) continue;
      for (radio::RadioId id = 1; id <= 3; ++id) {
        s.channel().set_link_extra_loss(id, id + 1, 0.1);
      }
      const auto frames_before = s.channel().stats().frames_transmitted;
      int confirmed = 0;
      lm::Histogram confirm_s;
      for (int i = 0; i < 50; ++i) {
        const TimePoint sent = s.simulator().now();
        int outcome = -1;
        auto cb = [&](bool ok) {
          outcome = ok ? 1 : 0;
          if (ok) confirm_s.add((s.simulator().now() - sent).seconds_d());
        };
        const std::vector<std::uint8_t> payload(100, 0x42);
        if (use_acked) {
          s.node(0).send_acked(s.address_of(3), payload, cb);
        } else {
          s.node(0).send_reliable(s.address_of(3), payload, cb);
        }
        while (outcome == -1) s.run_for(Duration::seconds(5));
        if (outcome == 1) ++confirmed;
        s.run_for(Duration::seconds(10));
      }
      const auto frames =
          s.channel().stats().frames_transmitted - frames_before;
      single.row({use_acked ? "acked datagram" : "XL transfer",
                  bench::format("%d / 50", confirmed),
                  bench::format("%.1f s", confirm_s.median()),
                  bench::format("%llu", static_cast<unsigned long long>(frames))});
    }
    single.print();
  }

  std::printf("\nEU868 1 %% duty cycle (clean links): every relay pays the "
              "same airtime, so the whole path's budget gates the transfer.\n");
  bench::Table duty({"payload", "time", "goodput", "duty-cycle deferrals", "ok"});
  for (std::size_t bytes : {2048u, 8192u, 32768u}) {
    const auto o = run_transfer(bytes, 0.0, Duration::milliseconds(100), 0.01, 6);
    duty.row({bench::format("%zu B", bytes), bench::format("%.0f s", o.seconds),
              bench::format("%.0f bit/s", o.goodput_bps),
              std::to_string(o.duty_delays), o.completed ? "yes" : "NO"});
  }
  duty.print();
  return 0;
}
