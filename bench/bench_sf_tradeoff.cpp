// E11 — spreading-factor trade-off across the same deployment.
//
// LoRaMesher inherits LoRa's central dial: higher SF buys link budget
// (longer links → fewer hops, maybe no relaying at all) at an exponential
// airtime cost. Over one fixed 2 km chain of nodes we sweep the SF every
// node runs: at SF7 the ends need 5 hops; by SF10 they are in direct
// range. The interesting question is which regime delivers better — and
// what it costs in airtime and duty-cycle headroom.
//
// Each (SF, hello) case is one self-contained simulation; the five cases
// run concurrently on a ParallelRunner.
#include <cstdio>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/parallel_runner.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct SfResult {
  int hops_needed = -1;
  double convergence_s = -1.0;
  double pdr = 0.0;
  double p50_ms = 0.0;
  double airtime_per_pkt_s = 0.0;
  double worst_duty = 0.0;
  double wall_s = 0.0;
};

SfResult run(phy::SpreadingFactor sf, Duration hello, std::uint64_t seed) {
  bench::WallTimer wall;
  auto cfg = bench::campus_config(seed);
  cfg.radio.modulation.sf = sf;
  cfg.mesh.hello_interval = hello;
  testbed::MeshScenario s(cfg);
  // Fixed geometry: 6 nodes spanning 2 km.
  s.add_nodes(testbed::chain(6, bench::kChainSpacing));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();

  SfResult r;
  const auto hops = s.expected_hops();
  r.hops_needed = hops[0][5];
  const auto elapsed = s.run_until_converged(Duration::hours(4));
  if (!elapsed) return r;
  r.convergence_s = elapsed->seconds_d();

  testbed::DatagramTraffic traffic(s, tracker, 0, 5,
                                   {Duration::seconds(60), 16, true}, seed + 1);
  traffic.start();
  const auto data_before = s.total_stats().data_airtime;
  s.run_for(Duration::hours(4));
  traffic.stop();
  s.run_for(Duration::minutes(2));

  r.pdr = tracker.pdr();
  r.p50_ms = 1e3 * tracker.latency().median();
  if (tracker.delivered() > 0) {
    r.airtime_per_pkt_s = (s.total_stats().data_airtime - data_before).seconds_d() /
                          static_cast<double>(tracker.delivered());
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    r.worst_duty = std::max(
        r.worst_duty, s.node(i).duty_cycle().utilization(s.simulator().now()));
  }
  r.wall_s = wall.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_sf_tradeoff", argc, argv);
  bench::banner("E11", "spreading factor: range vs airtime over a 2 km chain",
                "higher SF shortens the path (more link budget) but each "
                "frame costs exponentially more airtime; the sweet spot "
                "depends on the deployment's geometry");

  struct Case {
    phy::SpreadingFactor sf;
    int hello_s;
  };
  // SF10 at a 60 s beacon period spends ~1 %/h on beacons alone — exactly
  // the duty budget — so it is shown both raw (saturated) and with the
  // beacon period deployments actually use at high SF.
  const std::vector<Case> cases{{phy::SpreadingFactor::SF7, 60},
                                {phy::SpreadingFactor::SF8, 60},
                                {phy::SpreadingFactor::SF9, 60},
                                {phy::SpreadingFactor::SF10, 60},
                                {phy::SpreadingFactor::SF10, 300}};

  testbed::ParallelRunner runner(reporter.threads());
  std::printf("\nsharding %zu runs over %zu threads\n", cases.size(),
              runner.threads());
  const auto results = runner.map<SfResult>(cases.size(), [&](std::size_t i) {
    return run(cases[i].sf, Duration::seconds(cases[i].hello_s), 31);
  });

  bench::Table t({"SF", "hello", "hops 0->5", "convergence", "PDR",
                  "p50 latency", "data airtime/pkt", "worst duty"});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case c = cases[i];
    const auto& r = results[i];
    t.row({phy::to_string(c.sf), bench::format("%d s", c.hello_s),
           r.hops_needed > 0 ? std::to_string(r.hops_needed) : "-",
           r.convergence_s >= 0 ? bench::format("%.0f s", r.convergence_s) : "n/a",
           bench::format("%.1f %%", 100 * r.pdr),
           bench::format("%.0f ms", r.p50_ms),
           bench::format("%.3f s", r.airtime_per_pkt_s),
           bench::format("%.2f %%", 100 * r.worst_duty)});
    const std::string label =
        bench::format("%s_hello%d", phy::to_string(c.sf), c.hello_s);
    reporter.point(label, r.wall_s);
    reporter.metric(label + ".pdr", r.pdr);
  }
  t.print();

  std::printf("\nnote: SF9 collapses the path from 5 to 3 hops and still "
              "fits the duty budget; SF10 at the same beacon rate saturates "
              "it (full-table beacons are ~0.6 s of airtime each) and "
              "collapses until the beacon period is stretched. Beyond the "
              "point where the destination is in direct range, further SF "
              "only costs.\n");
  return 0;
}
