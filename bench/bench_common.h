// Shared helpers for the experiment harnesses (bench_*).
//
// Each bench binary regenerates one table/figure from DESIGN.md's
// experiment index and prints it as an aligned text table, plus the
// paper-claim context so EXPERIMENTS.md can record paper-vs-measured.
//
// Perf trajectory: every bench constructs a Reporter, which times the whole
// binary and each sweep point, always prints one machine-readable
// BENCH_SUMMARY line, and — when invoked with --json — writes
// BENCH_<name>.json so successive PRs can diff wall time and events/sec
// without re-parsing prose output.
#pragma once

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "phy/path_loss.h"
#include "support/thread_pool.h"
#include "testbed/scenario.h"

namespace lm::bench {

/// Prints the experiment banner.
inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf into a std::string.
inline std::string format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// Monotonic wall-clock stopwatch (the simulation itself never sees this —
/// it only feeds perf reporting).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects named metrics for one bench run; prints a single
/// `BENCH_SUMMARY {...}` JSON line on finish() and, with --json, writes the
/// same object to BENCH_<name>.json in the working directory.
class Reporter {
 public:
  Reporter(const char* name, int argc, char** argv) : name_(name) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) json_ = true;
      else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
        const long parsed = std::strtol(argv[i] + 10, nullptr, 10);
        if (parsed > 0) threads_ = static_cast<std::size_t>(parsed);
      }
    }
    if (threads_ == 0) threads_ = ThreadPool::default_thread_count();
  }

  ~Reporter() { finish(); }

  bool json() const { return json_; }

  /// Worker count a bench should use: --threads=N, else LM_THREADS, else
  /// hardware concurrency.
  std::size_t threads() const { return threads_; }

  void metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }

  /// Records one sweep point's wall time and prints it inline, so slow
  /// points are attributable without any external timing.
  void point(const std::string& label, double wall_s) {
    metric("point." + label + ".wall_s", wall_s);
    std::printf("[point] %-32s %8.2f s wall\n", label.c_str(), wall_s);
  }

  /// Emits the summary (idempotent; also run by the destructor).
  void finish() {
    if (finished_) return;
    finished_ = true;
    metric("wall_s", timer_.seconds());
    metric("threads", static_cast<double>(threads_));
    const std::string body = to_json();
    std::printf("BENCH_SUMMARY %s\n", body.c_str());
    if (json_) {
      const std::string path = "BENCH_" + name_ + ".json";
      if (std::FILE* f = std::fopen(path.c_str(), "w")) {
        std::fprintf(f, "%s\n", body.c_str());
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
      } else {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
      }
    }
  }

 private:
  std::string to_json() const {
    std::string out = "{\"name\":\"" + name_ + "\"";
    for (const auto& [key, value] : metrics_) {
      out += ",\"" + key + "\":" + format("%.6g", value);
    }
    out += "}";
    return out;
  }

  std::string name_;
  bool json_ = false;
  bool finished_ = false;
  std::size_t threads_ = 0;
  WallTimer timer_;
  std::vector<std::pair<std::string, double>> metrics_;
};

/// Fixed-width table printer: feed a header row then data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        if (r[i].size() > width[i]) width[i] = r[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(width[i]), r[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::string rule;
    for (std::size_t i = 0; i < header_.size(); ++i) {
      rule += std::string(width[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// The standard "campus testbed" scenario configuration used across
/// experiments: log-distance n=3.5 so that 400 m chain neighbors decode
/// cleanly while 800 m does not (multi-hop topologies emerge from physics),
/// deterministic links unless a bench opts into shadowing/fading.
inline testbed::ScenarioConfig campus_config(std::uint64_t seed) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  return c;
}

/// Chain spacing (m) under campus_config where adjacent nodes decode and
/// two-hop neighbors sit below sensitivity.
constexpr double kChainSpacing = 400.0;

}  // namespace lm::bench
