// Shared helpers for the experiment harnesses (bench_*).
//
// Each bench binary regenerates one table/figure from DESIGN.md's
// experiment index and prints it as an aligned text table, plus the
// paper-claim context so EXPERIMENTS.md can record paper-vs-measured.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "phy/path_loss.h"
#include "testbed/scenario.h"

namespace lm::bench {

/// Prints the experiment banner.
inline void banner(const char* id, const char* title, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

/// printf into a std::string.
inline std::string format(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

/// Fixed-width table printer: feed a header row then data rows.
class Table {
 public:
  explicit Table(std::vector<std::string> header) : header_(std::move(header)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> width(header_.size());
    for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i) {
        if (r[i].size() > width[i]) width[i] = r[i].size();
      }
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(width[i]), r[i].c_str());
      }
      std::printf("\n");
    };
    print_row(header_);
    std::string rule;
    for (std::size_t i = 0; i < header_.size(); ++i) {
      rule += std::string(width[i], '-') + "  ";
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// The standard "campus testbed" scenario configuration used across
/// experiments: log-distance n=3.5 so that 400 m chain neighbors decode
/// cleanly while 800 m does not (multi-hop topologies emerge from physics),
/// deterministic links unless a bench opts into shadowing/fading.
inline testbed::ScenarioConfig campus_config(std::uint64_t seed) {
  testbed::ScenarioConfig c;
  c.seed = seed;
  c.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  c.propagation.shadowing_sigma_db = 0.0;
  c.propagation.fading_sigma_db = 0.0;
  return c;
}

/// Chain spacing (m) under campus_config where adjacent nodes decode and
/// two-hop neighbors sit below sensitivity.
constexpr double kChainSpacing = 400.0;

}  // namespace lm::bench
