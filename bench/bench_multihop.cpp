// E4 — multi-hop delivery: PDR and latency vs hop count, LoRaMesher vs the
// controlled-flooding baseline.
//
// Routing delivers with airtime proportional to path length; flooding
// reaches everything but spends the whole network's airtime per packet.
// Per-link loss compounds per hop for the mesh (no link retries in the
// prototype), while flooding's redundancy partially masks loss.
#include <cstdio>

#include "baseline/flooding_node.h"
#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/flood_scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct Outcome {
  double pdr = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double airtime_s = 0.0;  // total network airtime spent
};

Outcome run_mesh(std::size_t hops, double loss, std::uint64_t seed) {
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(60);
  testbed::MeshScenario s(cfg);
  s.add_nodes(testbed::chain(hops + 1, bench::kChainSpacing));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  if (!s.run_until_converged(Duration::hours(2))) return {};
  for (std::size_t i = 0; i + 1 <= hops; ++i) {
    s.channel().set_link_extra_loss(static_cast<radio::RadioId>(i + 1),
                                    static_cast<radio::RadioId>(i + 2), loss);
  }
  const Duration before = s.total_stats().control_airtime + s.total_stats().data_airtime;
  testbed::DatagramTraffic traffic(s, tracker, 0, hops,
                                   {Duration::seconds(30), 16, true}, seed + 1);
  traffic.start();
  s.run_for(Duration::hours(2));  // ~240 packets
  traffic.stop();
  s.run_for(Duration::minutes(1));

  Outcome o;
  o.pdr = tracker.pdr();
  o.p50_ms = 1e3 * tracker.latency().median();
  o.p95_ms = 1e3 * tracker.latency().percentile(95);
  const auto total = s.total_stats();
  o.airtime_s = (total.control_airtime + total.data_airtime - before).seconds_d();
  return o;
}

Outcome run_flood(std::size_t hops, double loss, std::uint64_t seed) {
  testbed::FloodScenarioConfig cfg;
  cfg.seed = seed;
  cfg.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  cfg.propagation.shadowing_sigma_db = 0.0;
  cfg.propagation.fading_sigma_db = 0.0;
  testbed::FloodScenario s(cfg);
  s.add_nodes(testbed::chain(hops + 1, bench::kChainSpacing));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  for (std::size_t i = 0; i + 1 <= hops; ++i) {
    s.channel().set_link_extra_loss(static_cast<radio::RadioId>(i + 1),
                                    static_cast<radio::RadioId>(i + 2), loss);
  }
  testbed::FloodTraffic traffic(s, tracker, 0, hops,
                                {Duration::seconds(30), 16, true}, seed + 1);
  traffic.start();
  s.run_for(Duration::hours(2));
  traffic.stop();
  s.run_for(Duration::minutes(1));

  Outcome o;
  o.pdr = tracker.pdr();
  o.p50_ms = 1e3 * tracker.latency().median();
  o.p95_ms = 1e3 * tracker.latency().percentile(95);
  o.airtime_s = s.total_airtime().seconds_d();
  return o;
}

}  // namespace

int main() {
  bench::banner("E4", "multi-hop PDR & latency: mesh routing vs flooding",
                "routing sustains delivery over multiple hops at a fraction "
                "of flooding's airtime; per-link loss compounds with hops");

  bench::Table t({"hops", "link loss", "protocol", "PDR", "p50 latency",
                  "p95 latency", "network airtime"});
  for (std::size_t hops : {1u, 2u, 4u, 6u, 8u}) {
    for (double loss : {0.0, 0.1, 0.2}) {
      const auto m = run_mesh(hops, loss, 42);
      const auto f = run_flood(hops, loss, 42);
      t.row({std::to_string(hops), bench::format("%.0f %%", 100 * loss), "mesh",
             bench::format("%.1f %%", 100 * m.pdr),
             bench::format("%.0f ms", m.p50_ms), bench::format("%.0f ms", m.p95_ms),
             bench::format("%.1f s", m.airtime_s)});
      t.row({std::to_string(hops), bench::format("%.0f %%", 100 * loss), "flood",
             bench::format("%.1f %%", 100 * f.pdr),
             bench::format("%.0f ms", f.p50_ms), bench::format("%.0f ms", f.p95_ms),
             bench::format("%.1f s", f.airtime_s)});
    }
  }
  t.print();
  std::printf("\nnote: on a chain, flooding relays as often as routing "
              "forwards, so airtime is comparable (mesh additionally pays "
              "for beacons). The flooding penalty appears in *wide* "
              "networks, where every node relays every packet:\n\n");

  // Dense-field comparison: a 16-node random field, 3 concurrent flows.
  const std::size_t n = 16;
  const double side = 500.0 * std::sqrt(static_cast<double>(n));
  Rng layout_rng(321);
  const auto field = testbed::connected_random_field(n, side, side, 550.0,
                                                     layout_rng);
  bench::Table wide({"protocol", "PDR", "data airtime / delivered pkt"});
  {
    auto cfg = bench::campus_config(77);
    cfg.mesh.hello_interval = Duration::seconds(60);
    testbed::MeshScenario s(cfg);
    s.add_nodes(field);
    metrics::PacketTracker tracker;
    testbed::attach_tracker(s, tracker);
    s.start_all();
    s.run_until_converged(Duration::hours(2), Duration::seconds(10), 0.9, false);
    std::vector<std::unique_ptr<testbed::DatagramTraffic>> flows;
    for (std::size_t f = 0; f < 3; ++f) {
      flows.push_back(std::make_unique<testbed::DatagramTraffic>(
          s, tracker, f, n - 1 - f,
          testbed::TrafficConfig{Duration::seconds(60), 16, true}, 900 + f));
      flows.back()->start();
    }
    s.run_for(Duration::hours(2));
    for (auto& f : flows) f->stop();
    s.run_for(Duration::minutes(1));
    const double per_pkt =
        tracker.delivered() > 0
            ? s.total_stats().data_airtime.seconds_d() /
                  static_cast<double>(tracker.delivered())
            : 0.0;
    wide.row({"mesh", bench::format("%.1f %%", 100 * tracker.pdr()),
              bench::format("%.2f s", per_pkt)});
  }
  {
    testbed::FloodScenarioConfig cfg;
    cfg.seed = 77;
    cfg.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
    cfg.propagation.shadowing_sigma_db = 0.0;
    cfg.propagation.fading_sigma_db = 0.0;
    testbed::FloodScenario s(cfg);
    s.add_nodes(field);
    metrics::PacketTracker tracker;
    testbed::attach_tracker(s, tracker);
    s.start_all();
    std::vector<std::unique_ptr<testbed::FloodTraffic>> flows;
    for (std::size_t f = 0; f < 3; ++f) {
      flows.push_back(std::make_unique<testbed::FloodTraffic>(
          s, tracker, f, n - 1 - f,
          testbed::TrafficConfig{Duration::seconds(60), 16, true}, 900 + f));
      flows.back()->start();
    }
    s.run_for(Duration::hours(2));
    for (auto& f : flows) f->stop();
    s.run_for(Duration::minutes(1));
    const double per_pkt =
        tracker.delivered() > 0
            ? s.total_airtime().seconds_d() /
                  static_cast<double>(tracker.delivered())
            : 0.0;
    wide.row({"flood", bench::format("%.1f %%", 100 * tracker.pdr()),
              bench::format("%.2f s", per_pkt)});
  }
  wide.print();
  return 0;
}
