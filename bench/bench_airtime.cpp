// E8 — airtime model validation table plus codec micro-benchmarks.
//
// The table reproduces the Semtech AN1200.13 calculator values the whole
// simulation's timing rests on. The google-benchmark section measures the
// hot paths a real node would run per packet (airtime computation, packet
// encode/decode), demonstrating they are negligible next to radio time.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_common.h"
#include "net/packet.h"
#include "net/routing_table.h"
#include "phy/airtime.h"
#include "sim/simulator.h"
#include "support/rng.h"

using namespace lm;

namespace {

void print_airtime_table() {
  bench::banner("E8", "LoRa time-on-air (CR 4/5, preamble 8, CRC, explicit hdr)",
                "matches the Semtech airtime calculator; SF12 frames cost "
                "~60x SF7 frames");
  bench::Table t({"payload", "SF7", "SF8", "SF9", "SF10", "SF11", "SF12"});
  for (std::size_t bytes : {10u, 51u, 120u, 222u}) {
    std::vector<std::string> row{bench::format("%zu B", bytes)};
    for (int sf = 7; sf <= 12; ++sf) {
      phy::Modulation m;
      m.sf = static_cast<phy::SpreadingFactor>(sf);
      row.push_back(
          bench::format("%.1f ms", phy::time_on_air(m, bytes).seconds_d() * 1e3));
    }
    t.row(row);
  }
  t.print();
  std::printf("\n");
}

void BM_TimeOnAir(benchmark::State& state) {
  phy::Modulation m;
  m.sf = phy::SpreadingFactor::SF9;
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes = (bytes + 17) % 255;
    benchmark::DoNotOptimize(phy::time_on_air(m, bytes));
  }
}
BENCHMARK(BM_TimeOnAir);

void BM_EncodeDataPacket(benchmark::State& state) {
  net::DataPacket p;
  p.link = net::LinkHeader{0x0002, 0x0001, net::PacketType::Data};
  p.route.final_dst = 0x0005;
  p.route.origin = 0x0001;
  p.route.ttl = 16;
  p.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode(net::Packet{p}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeDataPacket)->Arg(16)->Arg(242);

void BM_DecodeDataPacket(benchmark::State& state) {
  net::DataPacket p;
  p.link = net::LinkHeader{0x0002, 0x0001, net::PacketType::Data};
  p.payload.assign(static_cast<std::size_t>(state.range(0)), 0xAB);
  const auto frame = net::encode(net::Packet{p});
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::decode(frame));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeDataPacket)->Arg(16)->Arg(242);

void BM_ApplyBeacon(benchmark::State& state) {
  // Distance-vector update cost with a table of `range` destinations —
  // the per-beacon CPU price a node pays.
  net::RoutingTable table(0x0001, Duration::hours(1));
  TimePoint now;
  std::vector<net::RoutingEntry> entries;
  for (int i = 0; i < state.range(0); ++i) {
    entries.push_back({static_cast<net::Address>(0x0100 + i),
                       static_cast<std::uint8_t>(i % 12 + 1)});
  }
  net::Address neighbor = 0x0002;
  for (auto _ : state) {
    now += Duration::seconds(1);
    neighbor = static_cast<net::Address>(0x0002 + (neighbor + 1) % 7);
    benchmark::DoNotOptimize(table.apply_beacon(neighbor, entries, now));
  }
}
BENCHMARK(BM_ApplyBeacon)->Arg(4)->Arg(16)->Arg(62);

void BM_SimulatorEventChurn(benchmark::State& state) {
  // Scheduler throughput: schedule + fire, with a live cancellation mix —
  // the pattern protocol timers produce. Simulated hours per wall second
  // is the simulator's headline number.
  sim::Simulator sim;
  Rng rng(1);
  std::vector<sim::TimerId> cancellable;
  for (auto _ : state) {
    const auto id = sim.schedule_after(
        Duration::microseconds(rng.uniform_int(1, 1000)), [] {});
    if (rng.bernoulli(0.3)) {
      cancellable.push_back(id);
    }
    if (cancellable.size() > 64) {
      sim.cancel(cancellable.back());
      cancellable.pop_back();
    }
    if (sim.pending() > 128) sim.step();
  }
  sim.run();
}
BENCHMARK(BM_SimulatorEventChurn);

void BM_EncodeRoutingBeacon(benchmark::State& state) {
  net::RoutingPacket p;
  p.link = net::LinkHeader{net::kBroadcast, 0x0001, net::PacketType::Routing};
  for (int i = 0; i < state.range(0); ++i) {
    p.entries.push_back({static_cast<net::Address>(i + 2),
                         static_cast<std::uint8_t>(i % 15 + 1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::encode(net::Packet{p}));
  }
}
BENCHMARK(BM_EncodeRoutingBeacon)->Arg(4)->Arg(32)->Arg(62);

}  // namespace

int main(int argc, char** argv) {
  print_airtime_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
