// E12 — link-quality gating ablation.
//
// Hop-count routing has a classic failure mode: a marginal 1-hop link beats
// a solid 2-hop path on metric, then drops a chunk of the traffic. The
// gating extension (smoothed received-SNR threshold, LoRaMesher v2's
// received-SNR tracking) refuses to route through weak neighbors. This
// bench measures the trade on the canonical trap topology and on a larger
// field with fading.
#include <cstdio>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct Result {
  double pdr = 0.0;
  double p50_ms = 0.0;
  double mean_hops = 0.0;
};

testbed::ScenarioConfig make_config(bool gating, std::uint64_t seed) {
  auto cfg = bench::campus_config(seed);
  cfg.propagation.fading_sigma_db = 2.0;
  cfg.mesh.hello_interval = Duration::seconds(30);
  cfg.mesh.require_link_quality = gating;
  cfg.mesh.min_snr_margin_db = 6.0;
  return cfg;
}

Result run_triangle(bool gating, std::uint64_t seed) {
  testbed::MeshScenario s(make_config(gating, seed));
  s.add_node({0.0, 0.0});
  s.add_node({580.0, 0.0});    // marginal direct link to node 0
  s.add_node({290.0, 250.0});  // solid relay
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  s.run_for(Duration::minutes(10));

  testbed::DatagramTraffic traffic(s, tracker, 0, 1,
                                   {Duration::seconds(20), 16, true}, seed + 1);
  traffic.start();
  s.run_for(Duration::hours(2));
  traffic.stop();
  s.run_for(Duration::minutes(1));
  return {tracker.pdr(), 1e3 * tracker.latency().median(), tracker.hops().mean()};
}

Result run_field(bool gating, std::uint64_t seed) {
  testbed::MeshScenario s(make_config(gating, seed));
  // A sparse field: plenty of ~550-620 m marginal shortcuts to fall for.
  Rng layout(seed);
  s.add_nodes(testbed::connected_random_field(14, 1800, 1800, 500, layout));
  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  s.run_for(Duration::minutes(15));

  std::vector<std::unique_ptr<testbed::DatagramTraffic>> flows;
  for (std::size_t f = 0; f < 4; ++f) {
    flows.push_back(std::make_unique<testbed::DatagramTraffic>(
        s, tracker, f, 13 - f,
        testbed::TrafficConfig{Duration::seconds(40), 16, true}, seed + 2 + f));
    flows.back()->start();
  }
  s.run_for(Duration::hours(3));
  for (auto& f : flows) f->stop();
  s.run_for(Duration::minutes(1));
  return {tracker.pdr(), 1e3 * tracker.latency().median(), tracker.hops().mean()};
}

}  // namespace

int main() {
  bench::banner("E12", "link-quality gating vs plain hop count",
                "refusing marginal neighbors trades a slightly longer path "
                "for much higher delivery on fading links");

  bench::Table t({"scenario", "gating", "PDR", "p50 latency", "mean hops"});
  for (const bool gating : {false, true}) {
    const auto r = run_triangle(gating, 42);
    t.row({"trap triangle", gating ? "on" : "off",
           bench::format("%.1f %%", 100 * r.pdr),
           bench::format("%.0f ms", r.p50_ms),
           bench::format("%.2f", r.mean_hops)});
  }
  for (const bool gating : {false, true}) {
    const auto r = run_field(gating, 42);
    t.row({"14-node field", gating ? "on" : "off",
           bench::format("%.1f %%", 100 * r.pdr),
           bench::format("%.0f ms", r.p50_ms),
           bench::format("%.2f", r.mean_hops)});
  }
  t.print();

  std::printf("\nnote: the gate holds routes to links with >= 6 dB smoothed "
              "SNR margin; paths get longer (mean hops up) and delivery "
              "recovers. On clean deployments the two configurations "
              "behave identically.\n");
  return 0;
}
