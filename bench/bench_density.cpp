// E9 — dense single-broadcast-domain scaling: collision behaviour of the
// beacon flood, with and without CAD listen-before-talk (the channel-access
// ablation from DESIGN.md).
//
// All nodes hear each other, so every beacon contends with every other.
// CAD + backoff should keep collisions low as N grows; pure ALOHA decays.
//
// Each (N, channel-access) cell is one self-contained simulation, sharded
// across a ParallelRunner and printed in input order.
#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "metrics/packet_tracker.h"
#include "testbed/parallel_runner.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct DensityResult {
  double collision_rate = 0.0;  // collided receptions / reception attempts
  double traffic_pdr = 0.0;
  std::uint64_t forced_tx = 0;
  double wall_s = 0.0;
};

DensityResult run(std::size_t n, bool use_cad, std::uint64_t seed) {
  bench::WallTimer wall;
  auto cfg = bench::campus_config(seed);
  cfg.mesh.hello_interval = Duration::seconds(60);
  cfg.mesh.use_cad = use_cad;
  testbed::MeshScenario s(cfg);
  // 50 m grid spacing: everyone decodes everyone (single broadcast domain).
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(n))));
  auto positions = testbed::grid(side, side, 50.0);
  positions.resize(n);
  s.add_nodes(positions);

  metrics::PacketTracker tracker;
  testbed::attach_tracker(s, tracker);
  s.start_all();
  s.run_for(Duration::minutes(5));

  // Poisson datagrams between random fixed pairs to add data-plane load.
  std::vector<std::unique_ptr<testbed::DatagramTraffic>> flows;
  Rng pair_rng(seed + 1);
  for (std::size_t i = 0; i < n / 2; ++i) {
    const std::size_t src = pair_rng.index(n);
    std::size_t dst = pair_rng.index(n);
    while (dst == src) dst = pair_rng.index(n);
    flows.push_back(std::make_unique<testbed::DatagramTraffic>(
        s, tracker, src, dst,
        testbed::TrafficConfig{Duration::seconds(60), 16, true}, seed + 10 + i));
    flows.back()->start();
  }
  s.channel().reset_stats();
  s.run_for(Duration::hours(2));
  for (auto& f : flows) f->stop();

  const auto& cs = s.channel().stats();
  const auto total = s.total_stats();
  DensityResult r;
  const double attempts = static_cast<double>(
      cs.receptions_delivered + cs.dropped_collision + cs.dropped_snr);
  r.collision_rate =
      attempts > 0 ? static_cast<double>(cs.dropped_collision) / attempts : 0.0;
  r.traffic_pdr = tracker.pdr();
  r.forced_tx = total.forced_transmissions;
  r.wall_s = wall.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter reporter("bench_density", argc, argv);
  bench::banner("E9", "dense broadcast-domain scaling: CAD vs ALOHA",
                "listen-before-talk keeps the beacon flood mostly "
                "collision-free as density grows; without it collisions "
                "climb with N");

  struct Cell {
    std::size_t n;
    bool cad;
  };
  std::vector<Cell> cells;
  for (std::size_t n : {8u, 16u, 32u, 48u}) {
    for (bool cad : {true, false}) cells.push_back({n, cad});
  }

  testbed::ParallelRunner runner(reporter.threads());
  std::printf("\nsharding %zu runs over %zu threads\n", cells.size(),
              runner.threads());
  const auto results = runner.map<DensityResult>(
      cells.size(),
      [&](std::size_t i) { return run(cells[i].n, cells[i].cad, 500 + cells[i].n); });

  bench::Table t({"nodes", "channel access", "collision rate", "traffic PDR",
                  "forced TX"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& cell = cells[i];
    const auto& r = results[i];
    t.row({std::to_string(cell.n), cell.cad ? "CAD+backoff" : "ALOHA",
           bench::format("%.2f %%", 100 * r.collision_rate),
           bench::format("%.1f %%", 100 * r.traffic_pdr),
           std::to_string(r.forced_tx)});
    const std::string label =
        bench::format("n%zu_%s", cell.n, cell.cad ? "cad" : "aloha");
    reporter.point(label, r.wall_s);
    reporter.metric(label + ".collision_rate", r.collision_rate);
    reporter.metric(label + ".pdr", r.traffic_pdr);
  }
  t.print();

  std::printf("\nnote: collision rate counts receptions destroyed by "
              "overlapping frames at any receiver, over all reception "
              "attempts above sensitivity.\n");
  return 0;
}
