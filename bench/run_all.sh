#!/usr/bin/env bash
# Runs every bench binary in sequence and (with --json) collects one
# BENCH_<name>.json per bench for perf-trajectory diffing across PRs.
#
# Usage:
#   bench/run_all.sh [--json] [--threads=N] [--build-dir=DIR] [--only=NAME]
#
#   --json          each bench writes BENCH_<name>.json into the current
#                   directory (benches that predate the Reporter get a
#                   minimal JSON written here from their wall time)
#   --threads=N     forwarded to benches that shard over a ParallelRunner
#                   (equivalent to LM_THREADS=N)
#   --build-dir=DIR where the bench binaries live (default: build)
#   --only=NAME     run a single bench, e.g. --only=bench_engine
#
# Every bench prints a machine-readable `BENCH_SUMMARY {...}` line; this
# script additionally tees full output to bench_output.txt.
set -u

BUILD_DIR=build
JSON=0
FWD_ARGS=()
ONLY=""
for arg in "$@"; do
  case "$arg" in
    --json) JSON=1; FWD_ARGS+=("--json") ;;
    --threads=*) FWD_ARGS+=("$arg") ;;
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --only=*) ONLY="${arg#--only=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found; run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# bench_airtime is a google-benchmark binary with its own flag syntax, so it
# runs without the forwarded Reporter flags.
REPORTER_BENCHES=(
  bench_engine
  bench_scale
  bench_convergence
  bench_density
  bench_sf_tradeoff
  bench_route_repair
)
PLAIN_BENCHES=(
  bench_demo_scenario
  bench_overhead
  bench_multihop
  bench_large_payload
  bench_mesh_vs_star
  bench_airtime
  bench_energy
  bench_link_quality
  bench_coexistence
)

: > bench_output.txt
failures=0

run_one() {
  local name="$1"; shift
  local bin="$BUILD_DIR/bench/$name"
  if [ ! -x "$bin" ]; then
    echo "SKIP $name (binary not built)" | tee -a bench_output.txt
    return
  fi
  echo "=== $name ===" | tee -a bench_output.txt
  local start end rc
  start=$(date +%s.%N)
  "$bin" "$@" 2>&1 | tee -a bench_output.txt
  rc=${PIPESTATUS[0]}
  end=$(date +%s.%N)
  if [ "$rc" -ne 0 ]; then
    echo "FAIL $name (exit $rc)" | tee -a bench_output.txt
    failures=$((failures + 1))
    return
  fi
  # Benches without a Reporter don't write their own JSON; synthesize a
  # minimal artifact so the perf trajectory covers every binary.
  if [ "$JSON" -eq 1 ] && [ ! -s "BENCH_${name}.json" ]; then
    printf '{"name":"%s","wall_s":%s}\n' "$name" \
      "$(echo "$end $start" | awk '{printf "%.2f", $1 - $2}')" \
      > "BENCH_${name}.json"
    echo "wrote BENCH_${name}.json (wall time only)"
  fi
}

for name in "${REPORTER_BENCHES[@]}"; do
  [ -n "$ONLY" ] && [ "$name" != "$ONLY" ] && continue
  rm -f "BENCH_${name}.json"
  run_one "$name" ${FWD_ARGS[@]+"${FWD_ARGS[@]}"}
done
for name in "${PLAIN_BENCHES[@]}"; do
  [ -n "$ONLY" ] && [ "$name" != "$ONLY" ] && continue
  rm -f "BENCH_${name}.json"
  run_one "$name"
done

echo
if [ "$failures" -ne 0 ]; then
  echo "$failures bench(es) failed; see bench_output.txt"
  exit 1
fi
echo "all benches done; full log in bench_output.txt"
if [ "$JSON" -eq 1 ]; then
  echo "JSON artifacts:"
  ls -1 BENCH_*.json 2>/dev/null || true
fi
