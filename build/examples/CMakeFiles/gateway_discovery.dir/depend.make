# Empty dependencies file for gateway_discovery.
# This may be replaced when dependencies are built.
