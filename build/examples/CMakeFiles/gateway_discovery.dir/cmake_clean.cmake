file(REMOVE_RECURSE
  "CMakeFiles/gateway_discovery.dir/gateway_discovery.cpp.o"
  "CMakeFiles/gateway_discovery.dir/gateway_discovery.cpp.o.d"
  "gateway_discovery"
  "gateway_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
