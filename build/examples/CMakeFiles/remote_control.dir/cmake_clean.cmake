file(REMOVE_RECURSE
  "CMakeFiles/remote_control.dir/remote_control.cpp.o"
  "CMakeFiles/remote_control.dir/remote_control.cpp.o.d"
  "remote_control"
  "remote_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
