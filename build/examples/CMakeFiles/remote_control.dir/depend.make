# Empty dependencies file for remote_control.
# This may be replaced when dependencies are built.
