file(REMOVE_RECURSE
  "CMakeFiles/test_testbed.dir/testbed/baseline_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/baseline_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/chaos_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/chaos_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/scale_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/scale_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/scenario_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/scenario_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/soak_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/soak_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/tools_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/tools_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/topology_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/topology_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/trace_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/trace_test.cpp.o.d"
  "CMakeFiles/test_testbed.dir/testbed/tracker_test.cpp.o"
  "CMakeFiles/test_testbed.dir/testbed/tracker_test.cpp.o.d"
  "test_testbed"
  "test_testbed.pdb"
  "test_testbed[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
