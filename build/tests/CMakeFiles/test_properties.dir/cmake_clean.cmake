file(REMOVE_RECURSE
  "CMakeFiles/test_properties.dir/properties/adversarial_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/adversarial_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/codec_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/codec_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/duty_cycle_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/duty_cycle_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/mesh_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/mesh_properties_test.cpp.o.d"
  "CMakeFiles/test_properties.dir/properties/routing_properties_test.cpp.o"
  "CMakeFiles/test_properties.dir/properties/routing_properties_test.cpp.o.d"
  "test_properties"
  "test_properties.pdb"
  "test_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
