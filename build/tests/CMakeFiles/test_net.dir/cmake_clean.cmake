file(REMOVE_RECURSE
  "CMakeFiles/test_net.dir/net/duty_cycle_test.cpp.o"
  "CMakeFiles/test_net.dir/net/duty_cycle_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/dwell_test.cpp.o"
  "CMakeFiles/test_net.dir/net/dwell_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/packet_test.cpp.o"
  "CMakeFiles/test_net.dir/net/packet_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/pipeline_test.cpp.o"
  "CMakeFiles/test_net.dir/net/pipeline_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/port_mux_test.cpp.o"
  "CMakeFiles/test_net.dir/net/port_mux_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/protocol_behavior_test.cpp.o"
  "CMakeFiles/test_net.dir/net/protocol_behavior_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/reliable_test.cpp.o"
  "CMakeFiles/test_net.dir/net/reliable_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/routing_table_test.cpp.o"
  "CMakeFiles/test_net.dir/net/routing_table_test.cpp.o.d"
  "CMakeFiles/test_net.dir/net/rx_duty_test.cpp.o"
  "CMakeFiles/test_net.dir/net/rx_duty_test.cpp.o.d"
  "test_net"
  "test_net.pdb"
  "test_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
