file(REMOVE_RECURSE
  "CMakeFiles/test_mesh_integration.dir/net/acked_datagram_test.cpp.o"
  "CMakeFiles/test_mesh_integration.dir/net/acked_datagram_test.cpp.o.d"
  "CMakeFiles/test_mesh_integration.dir/net/link_quality_test.cpp.o"
  "CMakeFiles/test_mesh_integration.dir/net/link_quality_test.cpp.o.d"
  "CMakeFiles/test_mesh_integration.dir/net/mesh_node_test.cpp.o"
  "CMakeFiles/test_mesh_integration.dir/net/mesh_node_test.cpp.o.d"
  "CMakeFiles/test_mesh_integration.dir/net/mock_radio_test.cpp.o"
  "CMakeFiles/test_mesh_integration.dir/net/mock_radio_test.cpp.o.d"
  "test_mesh_integration"
  "test_mesh_integration.pdb"
  "test_mesh_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
