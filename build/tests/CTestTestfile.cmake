# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_phy[1]_include.cmake")
include("/root/repo/build/tests/test_radio[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_integration[1]_include.cmake")
include("/root/repo/build/tests/test_testbed[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
