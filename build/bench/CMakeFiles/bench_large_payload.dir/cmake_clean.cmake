file(REMOVE_RECURSE
  "CMakeFiles/bench_large_payload.dir/bench_large_payload.cpp.o"
  "CMakeFiles/bench_large_payload.dir/bench_large_payload.cpp.o.d"
  "bench_large_payload"
  "bench_large_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_large_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
