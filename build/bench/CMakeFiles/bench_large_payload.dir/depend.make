# Empty dependencies file for bench_large_payload.
# This may be replaced when dependencies are built.
