# Empty dependencies file for bench_airtime.
# This may be replaced when dependencies are built.
