file(REMOVE_RECURSE
  "CMakeFiles/bench_airtime.dir/bench_airtime.cpp.o"
  "CMakeFiles/bench_airtime.dir/bench_airtime.cpp.o.d"
  "bench_airtime"
  "bench_airtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_airtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
