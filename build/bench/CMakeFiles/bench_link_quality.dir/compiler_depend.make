# Empty compiler generated dependencies file for bench_link_quality.
# This may be replaced when dependencies are built.
