file(REMOVE_RECURSE
  "CMakeFiles/bench_link_quality.dir/bench_link_quality.cpp.o"
  "CMakeFiles/bench_link_quality.dir/bench_link_quality.cpp.o.d"
  "bench_link_quality"
  "bench_link_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
