file(REMOVE_RECURSE
  "CMakeFiles/bench_sf_tradeoff.dir/bench_sf_tradeoff.cpp.o"
  "CMakeFiles/bench_sf_tradeoff.dir/bench_sf_tradeoff.cpp.o.d"
  "bench_sf_tradeoff"
  "bench_sf_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sf_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
