# Empty dependencies file for bench_sf_tradeoff.
# This may be replaced when dependencies are built.
