# Empty compiler generated dependencies file for bench_mesh_vs_star.
# This may be replaced when dependencies are built.
