file(REMOVE_RECURSE
  "CMakeFiles/bench_mesh_vs_star.dir/bench_mesh_vs_star.cpp.o"
  "CMakeFiles/bench_mesh_vs_star.dir/bench_mesh_vs_star.cpp.o.d"
  "bench_mesh_vs_star"
  "bench_mesh_vs_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_vs_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
