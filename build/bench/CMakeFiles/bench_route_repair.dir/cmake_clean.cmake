file(REMOVE_RECURSE
  "CMakeFiles/bench_route_repair.dir/bench_route_repair.cpp.o"
  "CMakeFiles/bench_route_repair.dir/bench_route_repair.cpp.o.d"
  "bench_route_repair"
  "bench_route_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_route_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
