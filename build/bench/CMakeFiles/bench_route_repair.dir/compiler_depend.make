# Empty compiler generated dependencies file for bench_route_repair.
# This may be replaced when dependencies are built.
