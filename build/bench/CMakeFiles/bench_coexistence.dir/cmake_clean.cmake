file(REMOVE_RECURSE
  "CMakeFiles/bench_coexistence.dir/bench_coexistence.cpp.o"
  "CMakeFiles/bench_coexistence.dir/bench_coexistence.cpp.o.d"
  "bench_coexistence"
  "bench_coexistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coexistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
