# Empty dependencies file for bench_coexistence.
# This may be replaced when dependencies are built.
