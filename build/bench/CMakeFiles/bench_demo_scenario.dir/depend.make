# Empty dependencies file for bench_demo_scenario.
# This may be replaced when dependencies are built.
