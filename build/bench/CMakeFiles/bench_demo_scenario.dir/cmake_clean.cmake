file(REMOVE_RECURSE
  "CMakeFiles/bench_demo_scenario.dir/bench_demo_scenario.cpp.o"
  "CMakeFiles/bench_demo_scenario.dir/bench_demo_scenario.cpp.o.d"
  "bench_demo_scenario"
  "bench_demo_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_demo_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
