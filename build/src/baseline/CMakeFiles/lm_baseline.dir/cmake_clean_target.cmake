file(REMOVE_RECURSE
  "liblm_baseline.a"
)
