
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/flooding_node.cpp" "src/baseline/CMakeFiles/lm_baseline.dir/flooding_node.cpp.o" "gcc" "src/baseline/CMakeFiles/lm_baseline.dir/flooding_node.cpp.o.d"
  "/root/repo/src/baseline/star_network.cpp" "src/baseline/CMakeFiles/lm_baseline.dir/star_network.cpp.o" "gcc" "src/baseline/CMakeFiles/lm_baseline.dir/star_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/lm_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/lm_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
