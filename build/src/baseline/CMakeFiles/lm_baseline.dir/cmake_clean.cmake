file(REMOVE_RECURSE
  "CMakeFiles/lm_baseline.dir/flooding_node.cpp.o"
  "CMakeFiles/lm_baseline.dir/flooding_node.cpp.o.d"
  "CMakeFiles/lm_baseline.dir/star_network.cpp.o"
  "CMakeFiles/lm_baseline.dir/star_network.cpp.o.d"
  "liblm_baseline.a"
  "liblm_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
