# Empty dependencies file for lm_baseline.
# This may be replaced when dependencies are built.
