file(REMOVE_RECURSE
  "liblm_radio.a"
)
