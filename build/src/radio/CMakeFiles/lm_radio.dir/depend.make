# Empty dependencies file for lm_radio.
# This may be replaced when dependencies are built.
