file(REMOVE_RECURSE
  "CMakeFiles/lm_radio.dir/channel.cpp.o"
  "CMakeFiles/lm_radio.dir/channel.cpp.o.d"
  "CMakeFiles/lm_radio.dir/energy.cpp.o"
  "CMakeFiles/lm_radio.dir/energy.cpp.o.d"
  "CMakeFiles/lm_radio.dir/virtual_radio.cpp.o"
  "CMakeFiles/lm_radio.dir/virtual_radio.cpp.o.d"
  "liblm_radio.a"
  "liblm_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
