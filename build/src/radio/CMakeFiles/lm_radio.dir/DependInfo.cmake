
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/radio/channel.cpp" "src/radio/CMakeFiles/lm_radio.dir/channel.cpp.o" "gcc" "src/radio/CMakeFiles/lm_radio.dir/channel.cpp.o.d"
  "/root/repo/src/radio/energy.cpp" "src/radio/CMakeFiles/lm_radio.dir/energy.cpp.o" "gcc" "src/radio/CMakeFiles/lm_radio.dir/energy.cpp.o.d"
  "/root/repo/src/radio/virtual_radio.cpp" "src/radio/CMakeFiles/lm_radio.dir/virtual_radio.cpp.o" "gcc" "src/radio/CMakeFiles/lm_radio.dir/virtual_radio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/phy/CMakeFiles/lm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
