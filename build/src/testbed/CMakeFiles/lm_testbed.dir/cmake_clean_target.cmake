file(REMOVE_RECURSE
  "liblm_testbed.a"
)
