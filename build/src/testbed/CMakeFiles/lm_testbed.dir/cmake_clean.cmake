file(REMOVE_RECURSE
  "CMakeFiles/lm_testbed.dir/background_traffic.cpp.o"
  "CMakeFiles/lm_testbed.dir/background_traffic.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/chaos.cpp.o"
  "CMakeFiles/lm_testbed.dir/chaos.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/flood_scenario.cpp.o"
  "CMakeFiles/lm_testbed.dir/flood_scenario.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/mobility.cpp.o"
  "CMakeFiles/lm_testbed.dir/mobility.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/scenario.cpp.o"
  "CMakeFiles/lm_testbed.dir/scenario.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/sniffer.cpp.o"
  "CMakeFiles/lm_testbed.dir/sniffer.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/topology.cpp.o"
  "CMakeFiles/lm_testbed.dir/topology.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/trace.cpp.o"
  "CMakeFiles/lm_testbed.dir/trace.cpp.o.d"
  "CMakeFiles/lm_testbed.dir/traffic.cpp.o"
  "CMakeFiles/lm_testbed.dir/traffic.cpp.o.d"
  "liblm_testbed.a"
  "liblm_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
