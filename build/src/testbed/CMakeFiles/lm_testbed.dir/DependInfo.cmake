
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/testbed/background_traffic.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/background_traffic.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/background_traffic.cpp.o.d"
  "/root/repo/src/testbed/chaos.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/chaos.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/chaos.cpp.o.d"
  "/root/repo/src/testbed/flood_scenario.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/flood_scenario.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/flood_scenario.cpp.o.d"
  "/root/repo/src/testbed/mobility.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/mobility.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/mobility.cpp.o.d"
  "/root/repo/src/testbed/scenario.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/scenario.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/scenario.cpp.o.d"
  "/root/repo/src/testbed/sniffer.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/sniffer.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/sniffer.cpp.o.d"
  "/root/repo/src/testbed/topology.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/topology.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/topology.cpp.o.d"
  "/root/repo/src/testbed/trace.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/trace.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/trace.cpp.o.d"
  "/root/repo/src/testbed/traffic.cpp" "src/testbed/CMakeFiles/lm_testbed.dir/traffic.cpp.o" "gcc" "src/testbed/CMakeFiles/lm_testbed.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/lm_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/lm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/radio/CMakeFiles/lm_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lm_support.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/lm_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
