# Empty dependencies file for lm_testbed.
# This may be replaced when dependencies are built.
