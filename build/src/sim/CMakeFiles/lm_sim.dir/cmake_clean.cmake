file(REMOVE_RECURSE
  "CMakeFiles/lm_sim.dir/simulator.cpp.o"
  "CMakeFiles/lm_sim.dir/simulator.cpp.o.d"
  "liblm_sim.a"
  "liblm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
