file(REMOVE_RECURSE
  "liblm_sim.a"
)
