# Empty dependencies file for lm_sim.
# This may be replaced when dependencies are built.
