# Empty dependencies file for lm_support.
# This may be replaced when dependencies are built.
