file(REMOVE_RECURSE
  "CMakeFiles/lm_support.dir/byte_codec.cpp.o"
  "CMakeFiles/lm_support.dir/byte_codec.cpp.o.d"
  "CMakeFiles/lm_support.dir/log.cpp.o"
  "CMakeFiles/lm_support.dir/log.cpp.o.d"
  "CMakeFiles/lm_support.dir/rng.cpp.o"
  "CMakeFiles/lm_support.dir/rng.cpp.o.d"
  "CMakeFiles/lm_support.dir/stats.cpp.o"
  "CMakeFiles/lm_support.dir/stats.cpp.o.d"
  "CMakeFiles/lm_support.dir/time.cpp.o"
  "CMakeFiles/lm_support.dir/time.cpp.o.d"
  "liblm_support.a"
  "liblm_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
