file(REMOVE_RECURSE
  "liblm_support.a"
)
