
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/airtime.cpp" "src/phy/CMakeFiles/lm_phy.dir/airtime.cpp.o" "gcc" "src/phy/CMakeFiles/lm_phy.dir/airtime.cpp.o.d"
  "/root/repo/src/phy/lora_params.cpp" "src/phy/CMakeFiles/lm_phy.dir/lora_params.cpp.o" "gcc" "src/phy/CMakeFiles/lm_phy.dir/lora_params.cpp.o.d"
  "/root/repo/src/phy/path_loss.cpp" "src/phy/CMakeFiles/lm_phy.dir/path_loss.cpp.o" "gcc" "src/phy/CMakeFiles/lm_phy.dir/path_loss.cpp.o.d"
  "/root/repo/src/phy/reception.cpp" "src/phy/CMakeFiles/lm_phy.dir/reception.cpp.o" "gcc" "src/phy/CMakeFiles/lm_phy.dir/reception.cpp.o.d"
  "/root/repo/src/phy/region.cpp" "src/phy/CMakeFiles/lm_phy.dir/region.cpp.o" "gcc" "src/phy/CMakeFiles/lm_phy.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/lm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
