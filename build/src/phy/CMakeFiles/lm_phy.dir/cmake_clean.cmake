file(REMOVE_RECURSE
  "CMakeFiles/lm_phy.dir/airtime.cpp.o"
  "CMakeFiles/lm_phy.dir/airtime.cpp.o.d"
  "CMakeFiles/lm_phy.dir/lora_params.cpp.o"
  "CMakeFiles/lm_phy.dir/lora_params.cpp.o.d"
  "CMakeFiles/lm_phy.dir/path_loss.cpp.o"
  "CMakeFiles/lm_phy.dir/path_loss.cpp.o.d"
  "CMakeFiles/lm_phy.dir/reception.cpp.o"
  "CMakeFiles/lm_phy.dir/reception.cpp.o.d"
  "CMakeFiles/lm_phy.dir/region.cpp.o"
  "CMakeFiles/lm_phy.dir/region.cpp.o.d"
  "liblm_phy.a"
  "liblm_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
