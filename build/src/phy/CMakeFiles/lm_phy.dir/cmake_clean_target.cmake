file(REMOVE_RECURSE
  "liblm_phy.a"
)
