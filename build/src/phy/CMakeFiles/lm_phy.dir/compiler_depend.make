# Empty compiler generated dependencies file for lm_phy.
# This may be replaced when dependencies are built.
