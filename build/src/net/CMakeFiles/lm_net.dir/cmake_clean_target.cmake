file(REMOVE_RECURSE
  "liblm_net.a"
)
