
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address_util.cpp" "src/net/CMakeFiles/lm_net.dir/address_util.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/address_util.cpp.o.d"
  "/root/repo/src/net/duty_cycle.cpp" "src/net/CMakeFiles/lm_net.dir/duty_cycle.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/duty_cycle.cpp.o.d"
  "/root/repo/src/net/mesh_node.cpp" "src/net/CMakeFiles/lm_net.dir/mesh_node.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/mesh_node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/lm_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/port_mux.cpp" "src/net/CMakeFiles/lm_net.dir/port_mux.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/port_mux.cpp.o.d"
  "/root/repo/src/net/reliable_receiver.cpp" "src/net/CMakeFiles/lm_net.dir/reliable_receiver.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/reliable_receiver.cpp.o.d"
  "/root/repo/src/net/reliable_sender.cpp" "src/net/CMakeFiles/lm_net.dir/reliable_sender.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/reliable_sender.cpp.o.d"
  "/root/repo/src/net/routing_table.cpp" "src/net/CMakeFiles/lm_net.dir/routing_table.cpp.o" "gcc" "src/net/CMakeFiles/lm_net.dir/routing_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/radio/CMakeFiles/lm_radio.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/lm_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lm_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
