# Empty compiler generated dependencies file for lm_net.
# This may be replaced when dependencies are built.
