file(REMOVE_RECURSE
  "CMakeFiles/lm_net.dir/address_util.cpp.o"
  "CMakeFiles/lm_net.dir/address_util.cpp.o.d"
  "CMakeFiles/lm_net.dir/duty_cycle.cpp.o"
  "CMakeFiles/lm_net.dir/duty_cycle.cpp.o.d"
  "CMakeFiles/lm_net.dir/mesh_node.cpp.o"
  "CMakeFiles/lm_net.dir/mesh_node.cpp.o.d"
  "CMakeFiles/lm_net.dir/packet.cpp.o"
  "CMakeFiles/lm_net.dir/packet.cpp.o.d"
  "CMakeFiles/lm_net.dir/port_mux.cpp.o"
  "CMakeFiles/lm_net.dir/port_mux.cpp.o.d"
  "CMakeFiles/lm_net.dir/reliable_receiver.cpp.o"
  "CMakeFiles/lm_net.dir/reliable_receiver.cpp.o.d"
  "CMakeFiles/lm_net.dir/reliable_sender.cpp.o"
  "CMakeFiles/lm_net.dir/reliable_sender.cpp.o.d"
  "CMakeFiles/lm_net.dir/routing_table.cpp.o"
  "CMakeFiles/lm_net.dir/routing_table.cpp.o.d"
  "liblm_net.a"
  "liblm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
