file(REMOVE_RECURSE
  "CMakeFiles/lm_metrics.dir/packet_tracker.cpp.o"
  "CMakeFiles/lm_metrics.dir/packet_tracker.cpp.o.d"
  "liblm_metrics.a"
  "liblm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
