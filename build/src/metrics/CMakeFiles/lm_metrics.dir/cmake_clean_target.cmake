file(REMOVE_RECURSE
  "liblm_metrics.a"
)
