# Empty compiler generated dependencies file for lm_metrics.
# This may be replaced when dependencies are built.
