// LinkLayer — the radio-facing half of the node, the paper's "service loop"
// arbitrating one half-duplex LoRa transceiver.
//
// Owns everything between a queued Packet and the antenna:
//  * the two-priority transmit queue (control before data);
//  * soft carrier sense + CAD listen-before-talk with exponential random
//    backoff, and the forced transmission after max_cad_retries;
//  * the sliding-window duty-cycle budget (DutyCycleLimiter) that defers
//    over-budget transmissions;
//  * the US915-style dwell cap on frame size;
//  * RX-default radio control, including duty-cycled listening (rx_duty);
//  * per-neighbor smoothed SNR margin, fed by every decoded frame.
//
// The layer knows nothing about routing or sessions: next hops are resolved
// through Callbacks::resolve_next_hop and inbound packets are handed up via
// Callbacks::on_packet, keeping all includes pointing downward.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/duty_cycle.h"
#include "net/layer_context.h"
#include "net/packet.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"

namespace lm::net {

class LinkLayer final : public radio::RadioListener {
 public:
  /// Upcalls into the rest of the stack. std::function (rather than an
  /// interface) lets the facade wire layers together without upward
  /// includes; all four are invoked on the simulator thread only.
  struct Callbacks {
    /// Late next-hop resolution for packets queued with dst == kUnassigned.
    /// nullopt drops the packet (route lost while queued).
    std::function<std::optional<Address>(const RouteHeader&)> resolve_next_hop;
    /// A decoded, addressed-to-us (or broadcast) packet arrived.
    std::function<void(Packet)> on_packet;
    /// A frame finished transmitting (fragment pacing, session GC).
    std::function<void(const Packet&)> on_sent;
    /// A queued packet was dropped before the air (queue full, route lost).
    std::function<void(const Packet&)> on_dropped;
  };

  /// Installs itself as the radio's listener; applies the max_dwell_time
  /// frame cap to ctx.config.max_fragment_payload.
  LinkLayer(LayerContext& ctx, radio::Radio& radio, Callbacks callbacks);
  ~LinkLayer() override;

  LinkLayer(const LinkLayer&) = delete;
  LinkLayer& operator=(const LinkLayer&) = delete;

  // --- Lifecycle (driven by the owning facade) -------------------------------
  /// Opens the receive window and starts listening.
  void enter_receive();
  /// Starts the duty-cycled listening alternation (no-op at rx_duty == 1).
  void schedule_rx_cycle();
  /// Cancels pipeline/rx-cycle timers (facade stop()).
  void cancel_timers();
  /// Drops all queued traffic (facade stop()).
  void clear_queues();
  /// Parks the radio after stop(): mid-TX/CAD radios settle in their
  /// completion callbacks instead.
  void settle_radio();

  // --- TX entry point --------------------------------------------------------
  /// Queues one packet with the given priority. False when stopped or the
  /// queue is full (the drop is traced and reported via on_dropped).
  bool enqueue(Packet packet, bool control);

  // --- Introspection ---------------------------------------------------------
  std::size_t queued_packets() const {
    return control_queue_.size() + data_queue_.size();
  }
  /// Dwell-capped frame size (kMaxPhyPayload when no dwell limit is set).
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }
  const DutyCycleLimiter& duty_cycle() const { return duty_; }
  /// Smoothed SNR margin (dB above the demodulation floor) of frames heard
  /// from `neighbor`; nullopt before the first frame.
  std::optional<double> snr_margin_db(Address neighbor) const;

  // --- RadioListener ---------------------------------------------------------
  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const radio::FrameMeta& meta) override;
  void on_tx_done() override;
  void on_cad_done(bool channel_active) override;

 private:
  enum class TxPhase : std::uint8_t {
    Idle,         // nothing being transmitted
    WaitingDuty,  // head-of-line packet deferred by the duty-cycle limiter
    Cad,          // listen-before-talk in progress
    Backoff,      // channel was busy; waiting a random interval
    Transmitting, // frame on the air
  };

  struct Outgoing {
    Packet packet;
    int cad_attempts = 0;
  };

  void pump();
  void channel_busy_backoff();
  void transmit_now();
  void resume_radio();

  LayerContext& ctx_;
  radio::Radio& radio_;
  Callbacks callbacks_;
  DutyCycleLimiter duty_;

  TxPhase tx_phase_ = TxPhase::Idle;
  std::deque<Packet> control_queue_;
  std::deque<Packet> data_queue_;
  std::optional<Outgoing> current_;
  sim::TimerId pipeline_timer_ = 0;  // duty-wait or backoff wakeup
  sim::TimerId rx_cycle_timer_ = 0;  // duty-cycled listening toggles
  bool rx_window_open_ = true;       // whether the schedule says "listen"
  std::size_t max_frame_bytes_ = 255;  // dwell-capped frame size

  std::map<Address, double> neighbor_snr_margin_;  // EWMA, dB above floor
};

}  // namespace lm::net
