// Node roles, advertised with every routing entry.
//
// LoRaMesher nodes are peers, but deployments still contain special nodes —
// typically one or two mesh-to-Internet gateways. The released library
// attaches a role byte to each routing-table entry (NetworkNode::role) so
// that any node can ask "where is the nearest gateway?" without knowing the
// deployment layout; this reproduction does the same. Roles are a bitmask,
// so a node can be several things at once.
#pragma once

#include <cstdint>
#include <string>

namespace lm::net {

using Role = std::uint8_t;

namespace roles {
constexpr Role kNone = 0;
constexpr Role kGateway = 1u << 0;  // bridges the mesh to the outside world
constexpr Role kSink = 1u << 1;     // data collection point
constexpr Role kRelayOnly = 1u << 2;  // forwards but hosts no application
}  // namespace roles

/// "gateway|sink"-style rendering for logs; "-" for kNone.
std::string role_to_string(Role role);

}  // namespace lm::net
