// Mesh-layer addressing.
//
// LoRaMesher derives a 16-bit node address from the device MAC; here the
// testbed assigns them. 0x0000 is reserved as "unassigned" and 0xFFFF is the
// link-local broadcast address (routing beacons).
#pragma once

#include <cstdint>
#include <string>

namespace lm::net {

using Address = std::uint16_t;

constexpr Address kUnassigned = 0x0000;
constexpr Address kBroadcast = 0xFFFF;

/// "0x00A3"-style rendering for logs.
std::string to_string(Address a);

}  // namespace lm::net
