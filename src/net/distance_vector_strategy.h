// DistanceVectorStrategy — the LoRaMesher prototype's routing protocol:
// periodic full-table broadcast beacons (jittered, optionally SNR-gated),
// RIP-style merge into the shared RoutingTable, and hop-by-hop unicast
// forwarding with TTL accounting and late next-hop resolution.
#pragma once

#include "net/routing_strategy.h"
#include "sim/simulator.h"

namespace lm::net {

class DistanceVectorStrategy final : public RoutingStrategy {
 public:
  ~DistanceVectorStrategy() override;

  void start() override;
  void stop() override;
  const char* name() const override { return "distance-vector"; }

  bool has_route(Address dst) const override { return table_->has_route(dst); }

  void on_routing(const RoutingPacket& packet) override;
  void handle(Packet packet) override;
  std::optional<Address> resolve_next_hop(const RouteHeader& route) override {
    return table_->next_hop(route.final_dst);
  }

 private:
  void schedule_next_beacon(bool first);
  void send_beacon();
  void forward(Packet packet);

  sim::TimerId beacon_timer_ = 0;
};

}  // namespace lm::net
