// Interface the reliable-transfer sessions use to emit packets through
// their owning node, breaking the MeshNode <-> session include cycle.
#pragma once

#include "net/address.h"
#include "net/packet.h"

namespace lm::net {

class PacketSink {
 public:
  virtual ~PacketSink() = default;

  /// Enqueues a control packet (SYNC/SYNC_ACK/LOST/DONE/POLL) for
  /// transmission with control priority. The node fills the link header's
  /// next hop at transmit time.
  virtual void submit_control(Packet packet) = 0;

  /// Enqueues a data-plane packet (FRAGMENT) with data priority.
  virtual void submit_data(Packet packet) = 0;

  /// This node's mesh address.
  virtual Address self_address() const = 0;

  /// A fresh route header originated here and bound for `final_dst`
  /// (fills origin, ttl, packet_id).
  virtual RouteHeader make_route(Address final_dst) = 0;
};

}  // namespace lm::net
