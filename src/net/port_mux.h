// Application multiplexing over one MeshNode.
//
// LoRaMesher hands the application a single datagram stream; real
// deployments run several services on one device (telemetry, commands,
// time sync...). PortMux prefixes each payload with a 1-byte port and
// demultiplexes inbound datagrams to per-port handlers — the same pattern
// UDP ports serve, scaled down to a 1-byte space and a 241-byte MTU.
//
// The mux installs itself as the node's datagram handler; at most one
// PortMux per node, and services must not replace the node's handler while
// a mux is attached.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "net/mesh_node.h"

namespace lm::net {

/// MTU of a port-addressed datagram (one byte goes to the port).
constexpr std::size_t kMaxPortPayload = kMaxDataPayload - 1;

class PortMux {
 public:
  /// (origin, payload, hops) — payload excludes the port byte.
  using Handler = std::function<void(Address origin,
                                     const std::vector<std::uint8_t>& payload,
                                     std::uint8_t hops)>;

  /// Attaches to `node` (replaces its datagram handler). The node must
  /// outlive the mux.
  explicit PortMux(MeshNode& node);
  ~PortMux();

  PortMux(const PortMux&) = delete;
  PortMux& operator=(const PortMux&) = delete;

  /// Registers a service on `port`; replaces any previous handler.
  void open(std::uint8_t port, Handler handler);
  /// Unregisters; inbound datagrams for the port are then counted dropped.
  void close(std::uint8_t port);
  bool is_open(std::uint8_t port) const;

  /// Sends `payload` to the same port on `destination`.
  /// Same failure modes as MeshNode::send_datagram, plus payload-size
  /// checks against kMaxPortPayload.
  bool send(Address destination, std::uint8_t port,
            std::vector<std::uint8_t> payload);

  std::uint64_t delivered(std::uint8_t port) const { return delivered_[port]; }
  std::uint64_t dropped_unknown_port() const { return dropped_unknown_port_; }
  std::uint64_t dropped_empty() const { return dropped_empty_; }

 private:
  void dispatch(Address origin, const std::vector<std::uint8_t>& payload,
                std::uint8_t hops);

  MeshNode& node_;
  std::array<Handler, 256> handlers_{};
  std::array<std::uint64_t, 256> delivered_{};
  std::uint64_t dropped_unknown_port_ = 0;
  std::uint64_t dropped_empty_ = 0;
};

}  // namespace lm::net
