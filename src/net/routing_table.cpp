#include "net/routing_table.h"

#include <algorithm>
#include <cstdio>

#include "support/assert.h"
#include "support/byte_codec.h"

namespace lm::net {

RoutingTable::RoutingTable(Address self, Duration route_timeout,
                           std::uint8_t max_metric, Role own_role)
    : self_(self),
      route_timeout_(route_timeout),
      max_metric_(max_metric),
      own_role_(own_role) {
  LM_REQUIRE(self != kUnassigned && self != kBroadcast);
  LM_REQUIRE(route_timeout > Duration::zero());
  LM_REQUIRE(max_metric >= 2);
}

RouteEntry* RoutingTable::find(Address destination) {
  const auto it = by_destination_.find(destination);
  if (it == by_destination_.end()) return nullptr;
  return &entries_[it->second];
}

const RouteEntry* RoutingTable::find(Address destination) const {
  return const_cast<RoutingTable*>(this)->find(destination);
}

void RoutingTable::append(RouteEntry entry) {
  by_destination_.emplace(entry.destination, entries_.size());
  entries_.push_back(entry);
}

void RoutingTable::reindex() {
  by_destination_.clear();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    by_destination_.emplace(entries_[i].destination, i);
  }
}

bool RoutingTable::apply_beacon(Address neighbor,
                                const std::vector<RoutingEntry>& entries,
                                TimePoint now) {
  LM_REQUIRE(neighbor != kBroadcast && neighbor != kUnassigned);
  if (neighbor == self_) return false;  // own beacon echoed back — ignore
  bool changed = false;
  const TimePoint deadline = now + route_timeout_;

  // (a) The sender itself is a 1-hop neighbor. Its role arrives with its
  // metric-0 self entry in step (b); keep whatever we know meanwhile.
  if (RouteEntry* direct = find(neighbor)) {
    if (direct->metric != 1 || direct->via != neighbor) {
      direct->metric = 1;
      direct->via = neighbor;
      changed = true;
      notify(*direct);
    }
    direct->expires_at = deadline;
  } else {
    append(RouteEntry{neighbor, neighbor, 1, roles::kNone, deadline});
    changed = true;
    notify(entries_.back());
  }

  // (b) Bellman-Ford on the advertised entries. The sender's own metric-0
  // entry lands here too (adv.address == neighbor): it refreshes the direct
  // route and carries the sender's role.
  for (const RoutingEntry& adv : entries) {
    if (adv.address == self_ || adv.address == kBroadcast ||
        adv.address == kUnassigned) {
      continue;
    }
    // Only the sender may claim metric 0 (its self entry); a zero metric
    // for anyone else is a malformed or spoofed advertisement.
    if (adv.metric == 0 && adv.address != neighbor) continue;
    const std::uint8_t candidate = static_cast<std::uint8_t>(
        std::min<int>(adv.metric + 1, max_metric_));
    RouteEntry* cur = find(adv.address);
    if (cur == nullptr) {
      if (candidate < max_metric_) {
        append(RouteEntry{adv.address, neighbor, candidate, adv.role, deadline});
        changed = true;
        notify(entries_.back());
      }
      continue;
    }
    if (cur->via == neighbor) {
      // Our next hop re-advertised the route: follow it unconditionally
      // (bad news must stick), withdrawing on saturation.
      if (candidate >= max_metric_ && adv.address != neighbor) {
        std::erase_if(entries_, [&](const RouteEntry& e) {
          return e.destination == adv.address;
        });
        reindex();
        changed = true;
        continue;
      }
      if (cur->metric != candidate && adv.address != neighbor) {
        cur->metric = candidate;
        changed = true;
      }
      if (cur->role != adv.role) {
        cur->role = adv.role;
        changed = true;
      }
      cur->expires_at = deadline;
    } else if (candidate < cur->metric) {
      cur->via = neighbor;
      cur->metric = candidate;
      cur->role = adv.role;
      cur->expires_at = deadline;
      changed = true;
      notify(*cur);
    }
  }
  return changed;
}

std::size_t RoutingTable::expire(TimePoint now) {
  // Direct casualties: hold timer lapsed.
  std::size_t removed = std::erase_if(
      entries_, [now](const RouteEntry& e) { return e.expires_at <= now; });
  if (removed == 0) return 0;
  reindex();
  // Cascade: a route is only usable while its next hop is a live neighbor.
  // (Entries via a dead neighbor stop being refreshed and would lapse on
  // their own within one timeout; removing them now keeps the table
  // internally consistent — next_hop() never returns a vanished neighbor.)
  // Each pass tests membership against the index snapshot from before the
  // pass (the vector is in flux inside erase_if), iterating to fixed point.
  for (;;) {
    const std::size_t cascade = std::erase_if(entries_, [this](const RouteEntry& e) {
      return e.via != e.destination && !by_destination_.contains(e.via);
    });
    reindex();
    if (cascade == 0) break;
    removed += cascade;
  }
  return removed;
}

std::optional<RouteEntry> RoutingTable::route_to(Address destination) const {
  const RouteEntry* e = find(destination);
  if (e == nullptr || e->metric >= max_metric_) return std::nullopt;
  return *e;
}

std::optional<Address> RoutingTable::next_hop(Address destination) const {
  const auto r = route_to(destination);
  if (!r) return std::nullopt;
  return r->via;
}

std::vector<RouteEntry> RoutingTable::routes_with_role(Role role_mask) const {
  std::vector<RouteEntry> out;
  for (const RouteEntry& e : entries_) {
    if (e.metric < max_metric_ && (e.role & role_mask) == role_mask) {
      out.push_back(e);
    }
  }
  return out;
}

std::optional<RouteEntry> RoutingTable::nearest_with_role(Role role_mask) const {
  std::optional<RouteEntry> best;
  for (const RouteEntry& e : routes_with_role(role_mask)) {
    if (!best || e.metric < best->metric ||
        (e.metric == best->metric && e.destination < best->destination)) {
      best = e;
    }
  }
  return best;
}

std::vector<RoutingEntry> RoutingTable::advertisement() const {
  std::vector<RoutingEntry> adv;
  adv.reserve(entries_.size() + 1);
  adv.push_back(RoutingEntry{self_, 0, own_role_});  // carries our role
  for (const RouteEntry& e : entries_) {
    adv.push_back(RoutingEntry{e.destination, e.metric, e.role});
  }
  std::sort(adv.begin(), adv.end(), [](const RoutingEntry& a, const RoutingEntry& b) {
    if (a.metric != b.metric) return a.metric < b.metric;
    return a.address < b.address;
  });
  if (adv.size() > kMaxRoutingEntries) adv.resize(kMaxRoutingEntries);
  std::sort(adv.begin(), adv.end(), [](const RoutingEntry& a, const RoutingEntry& b) {
    return a.address < b.address;
  });
  return adv;
}

namespace {
constexpr std::uint8_t kSnapshotVersion = 1;
}

std::vector<std::uint8_t> RoutingTable::serialize(TimePoint now) const {
  ByteWriter w;
  w.u8(kSnapshotVersion);
  w.u16(self_);
  w.u16(static_cast<std::uint16_t>(entries_.size()));
  for (const RouteEntry& e : entries_) {
    w.u16(e.destination);
    w.u16(e.via);
    w.u8(e.metric);
    w.u8(e.role);
    const Duration remaining = e.expires_at - now;
    w.u32(static_cast<std::uint32_t>(
        std::max<std::int64_t>(0, remaining.ms())));
  }
  return w.take();
}

bool RoutingTable::restore(std::span<const std::uint8_t> snapshot, TimePoint now,
                           Duration downtime) {
  LM_REQUIRE(entries_.empty());
  LM_REQUIRE(!downtime.is_negative());
  ByteReader r(snapshot);
  if (r.u8() != kSnapshotVersion) return false;
  if (r.u16() != self_) return false;  // snapshot belongs to another node
  const std::uint16_t count = r.u16();
  std::vector<RouteEntry> restored;
  for (std::uint16_t i = 0; i < count; ++i) {
    RouteEntry e;
    e.destination = r.u16();
    e.via = r.u16();
    e.metric = r.u8();
    e.role = r.u8();
    const Duration remaining = Duration::milliseconds(r.u32()) - downtime;
    if (!r.ok()) return false;
    if (remaining <= Duration::zero()) continue;  // lapsed while powered off
    if (e.destination == self_ || e.destination == kBroadcast ||
        e.destination == kUnassigned || e.metric == 0 ||
        e.metric > max_metric_) {
      return false;  // corrupt snapshot: refuse it wholesale
    }
    e.expires_at = now + remaining;
    restored.push_back(e);
  }
  if (!r.exhausted()) return false;
  entries_ = std::move(restored);
  reindex();
  for (const RouteEntry& e : entries_) notify(e);
  return true;
}

std::string RoutingTable::to_string() const {
  std::string out = "routing table of " + lm::net::to_string(self_) + " (" +
                    std::to_string(entries_.size()) + " entries)\n";
  std::vector<RouteEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const RouteEntry& a, const RouteEntry& b) {
              return a.destination < b.destination;
            });
  char line[128];
  for (const RouteEntry& e : sorted) {
    std::snprintf(line, sizeof line, "  dst=%s via=%s metric=%u role=%s\n",
                  lm::net::to_string(e.destination).c_str(),
                  lm::net::to_string(e.via).c_str(), e.metric,
                  role_to_string(e.role).c_str());
    out += line;
  }
  return out;
}

}  // namespace lm::net
