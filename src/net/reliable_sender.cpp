#include "net/reliable_sender.h"

#include <algorithm>

#include "support/assert.h"
#include "support/log.h"

namespace lm::net {

ReliableSender::ReliableSender(sim::Simulator& sim, PacketSink& sink,
                               const MeshConfig& config, Address destination,
                               std::uint8_t seq, std::vector<std::uint8_t> payload,
                               Completion completion, std::uint64_t seed,
                               trace::Tracer* tracer, std::uint16_t trace_node)
    : sim_(sim),
      sink_(sink),
      config_(config),
      destination_(destination),
      seq_(seq),
      payload_(std::move(payload)),
      completion_(std::move(completion)),
      rng_(seed),
      tracer_(tracer),
      trace_node_(trace_node) {
  LM_REQUIRE(!payload_.empty());
  LM_REQUIRE(destination_ != kBroadcast && destination_ != kUnassigned);
  fragment_capacity_ = config_.max_fragment_payload;
  LM_REQUIRE(fragment_capacity_ >= 1 && fragment_capacity_ <= kMaxFragmentPayload);
  const std::size_t count =
      (payload_.size() + fragment_capacity_ - 1) / fragment_capacity_;
  LM_REQUIRE(count <= 0xFFFF);
  fragment_count_ = static_cast<std::uint16_t>(count);
  send_sync();
}

ReliableSender::~ReliableSender() { cancel_timer(); }

void ReliableSender::arm_timer(Duration timeout, void (ReliableSender::*handler)()) {
  cancel_timer();
  timer_ = sim_.schedule_after(timeout, [this, handler] { (this->*handler)(); });
}

void ReliableSender::cancel_timer() {
  if (timer_ != 0) {
    sim_.cancel(timer_);
    timer_ = 0;
  }
}

void ReliableSender::trace_transfer(trace::EventKind kind, std::uint32_t bytes) {
  trace::TraceEvent e;
  e.t_us = sim_.now().us();
  e.node = trace_node_;
  e.kind = kind;
  e.packet_type = static_cast<std::uint8_t>(PacketType::Sync);
  e.origin = trace_node_;
  e.final_dst = destination_;
  e.packet_id = seq_;
  e.bytes = bytes;
  tracer_->emit(e);
}

Duration ReliableSender::jittered_retry_timeout() {
  // Randomized retransmission timers: two senders that start (or lose
  // frames) simultaneously must not keep retrying in lockstep.
  return config_.reliable_retry_timeout * rng_.uniform(0.9, 1.4);
}

void ReliableSender::send_sync() {
  ++sync_attempts_;
  if (tracer_ != nullptr && sync_attempts_ > 1) {
    trace_transfer(trace::EventKind::TransferSyncRetry,
                   static_cast<std::uint32_t>(sync_attempts_));
  }
  SyncPacket p;
  p.link.type = PacketType::Sync;
  p.link.src = sink_.self_address();
  p.route = sink_.make_route(destination_);
  p.seq = seq_;
  p.fragment_count = fragment_count_;
  p.total_bytes = static_cast<std::uint32_t>(payload_.size());
  sink_.submit_control(Packet{p});
  arm_timer(jittered_retry_timeout(), &ReliableSender::on_sync_timeout);
}

void ReliableSender::on_sync_timeout() {
  timer_ = 0;
  LM_ASSERT(state_ == State::WaitSyncAck);
  if (sync_attempts_ >= config_.sync_max_retries) {
    LM_DEBUG("reliable", "sync to %s gave up after %d attempts",
             to_string(destination_).c_str(), sync_attempts_);
    finish(false);
    return;
  }
  send_sync();
}

void ReliableSender::abort() {
  if (state_ != State::Finished) finish(false);
}

void ReliableSender::on_sync_ack() {
  if (state_ != State::WaitSyncAck) return;  // duplicate ack
  cancel_timer();
  state_ = State::Streaming;
  pending_.clear();
  for (std::uint16_t i = 0; i < fragment_count_; ++i) pending_.push_back(i);
  send_next_fragment();
}

FragmentPacket ReliableSender::make_fragment(std::uint16_t index) {
  FragmentPacket p;
  p.link.type = PacketType::Fragment;
  p.link.src = sink_.self_address();
  p.route = sink_.make_route(destination_);
  p.seq = seq_;
  p.index = index;
  const std::size_t begin = static_cast<std::size_t>(index) * fragment_capacity_;
  const std::size_t end = std::min(begin + fragment_capacity_, payload_.size());
  LM_ASSERT(begin < payload_.size());
  p.payload.assign(payload_.begin() + static_cast<std::ptrdiff_t>(begin),
                   payload_.begin() + static_cast<std::ptrdiff_t>(end));
  return p;
}

void ReliableSender::send_next_fragment() {
  LM_ASSERT(state_ == State::Streaming);
  if (pending_.empty()) {
    state_ = State::WaitStatus;
    poll_attempts_ = 0;
    arm_timer(jittered_retry_timeout(), &ReliableSender::on_status_timeout);
    return;
  }
  if (fragment_in_flight_) return;  // wait for on_fragment_transmitted
  const std::uint16_t index = pending_.front();
  pending_.pop_front();
  fragment_in_flight_ = true;
  ++fragments_sent_;
  sink_.submit_data(Packet{make_fragment(index)});
}

void ReliableSender::on_fragment_transmitted(std::uint16_t /*index*/) {
  if (state_ == State::Finished) return;
  fragment_in_flight_ = false;
  if (state_ != State::Streaming) return;
  if (config_.fragment_spacing.is_zero()) {
    send_next_fragment();
    return;
  }
  // Randomized pacing (0.5x..1.5x): deterministic spacing phase-locks two
  // hidden senders behind a shared relay into colliding at it every round.
  const Duration delay = config_.fragment_spacing * rng_.uniform(0.5, 1.5);
  arm_timer(delay, &ReliableSender::send_next_fragment);
}

void ReliableSender::on_lost(const std::vector<std::uint16_t>& missing) {
  if (state_ == State::Finished || state_ == State::WaitSyncAck) return;
  cancel_timer();
  poll_attempts_ = 0;
  for (std::uint16_t idx : missing) {
    if (idx >= fragment_count_) continue;  // malformed request
    if (std::find(pending_.begin(), pending_.end(), idx) == pending_.end()) {
      pending_.push_back(idx);
      ++fragments_retransmitted_;
    }
  }
  state_ = State::Streaming;
  send_next_fragment();
}

void ReliableSender::on_done() {
  if (state_ == State::Finished) return;
  finish(true);
}

void ReliableSender::on_status_timeout() {
  timer_ = 0;
  LM_ASSERT(state_ == State::WaitStatus);
  if (poll_attempts_ >= config_.poll_max_retries) {
    LM_DEBUG("reliable", "transfer %u to %s gave up after %d polls", seq_,
             to_string(destination_).c_str(), poll_attempts_);
    finish(false);
    return;
  }
  send_poll();
}

void ReliableSender::send_poll() {
  ++poll_attempts_;
  if (tracer_ != nullptr) {
    trace_transfer(trace::EventKind::TransferPoll,
                   static_cast<std::uint32_t>(poll_attempts_));
  }
  PollPacket p;
  p.link.type = PacketType::Poll;
  p.link.src = sink_.self_address();
  p.route = sink_.make_route(destination_);
  p.seq = seq_;
  sink_.submit_control(Packet{p});
  arm_timer(jittered_retry_timeout(), &ReliableSender::on_status_timeout);
}

void ReliableSender::finish(bool success) {
  cancel_timer();
  state_ = State::Finished;
  if (tracer_ != nullptr) {
    trace_transfer(trace::EventKind::TransferEnd, success ? 1 : 0);
  }
  if (completion_) {
    // Move out first: the callback may destroy this session.
    Completion cb = std::move(completion_);
    completion_ = nullptr;
    cb(success);
  }
}

}  // namespace lm::net
