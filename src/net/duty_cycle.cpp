#include "net/duty_cycle.h"

#include "support/assert.h"

namespace lm::net {

DutyCycleLimiter::DutyCycleLimiter(double limit_fraction, Duration window)
    : limit_(limit_fraction), window_(window), budget_(window * limit_fraction) {
  LM_REQUIRE(limit_fraction > 0.0);
  LM_REQUIRE(window > Duration::zero());
}

void DutyCycleLimiter::prune(TimePoint now) const {
  while (!emissions_.empty() && emissions_.front().first + window_ <= now) {
    emissions_.pop_front();
  }
}

Duration DutyCycleLimiter::consumed(TimePoint now) const {
  prune(now);
  Duration sum = Duration::zero();
  for (const auto& [start, airtime] : emissions_) sum += airtime;
  return sum;
}

bool DutyCycleLimiter::allowed(TimePoint now, Duration airtime) const {
  if (!enforced()) return true;
  return consumed(now) + airtime <= budget_;
}

TimePoint DutyCycleLimiter::next_allowed(TimePoint now, Duration airtime) const {
  if (!enforced()) return now;
  LM_REQUIRE(airtime <= budget_);
  prune(now);
  Duration sum = Duration::zero();
  for (const auto& [start, spent] : emissions_) sum += spent;
  if (sum + airtime <= budget_) return now;
  // Walk forward through expirations until enough budget frees up.
  for (const auto& [start, spent] : emissions_) {
    sum -= spent;
    if (sum + airtime <= budget_) return start + window_;
  }
  LM_ASSERT(false);  // unreachable: airtime <= budget_ and sum reaches zero
}

void DutyCycleLimiter::record(TimePoint now, Duration airtime) {
  LM_REQUIRE(airtime >= Duration::zero());
  if (!enforced()) return;
  LM_REQUIRE(emissions_.empty() || emissions_.back().first <= now);
  emissions_.emplace_back(now, airtime);
}

double DutyCycleLimiter::utilization(TimePoint now) const {
  return consumed(now) / window_;
}

}  // namespace lm::net
