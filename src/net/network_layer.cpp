#include "net/network_layer.h"

#include "support/assert.h"

namespace lm::net {

NetworkLayer::NetworkLayer(LayerContext& ctx, LinkLayer& link,
                           std::unique_ptr<RoutingStrategy> strategy,
                           RoutingStrategy::DeliverFn deliver)
    : ctx_(ctx),
      link_(link),
      table_(ctx.address,
             ctx.config.hello_interval *
                 static_cast<std::int64_t>(ctx.config.route_timeout_intervals),
             kInfiniteMetric, ctx.config.role),
      strategy_(std::move(strategy)) {
  LM_REQUIRE(strategy_ != nullptr);
  strategy_->attach(ctx_, link_, table_, std::move(deliver));
}

RouteHeader NetworkLayer::make_route(Address final_dst) {
  RouteHeader r;
  r.final_dst = final_dst;
  r.origin = ctx_.address;
  r.ttl = ctx_.config.max_ttl;
  r.hops = 0;
  r.packet_id = next_packet_id_++;
  return r;
}

bool NetworkLayer::send_datagram(Address destination,
                                 std::vector<std::uint8_t> payload,
                                 trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (ctx_.tracer != nullptr) {
      ctx_.trace_refusal(PacketType::Data, destination, payload.size(), reason);
    }
    return false;
  };
  if (!ctx_.running) return refuse(trace::DropReason::NotRunning);
  if (destination == ctx_.address || destination == kUnassigned ||
      (destination == kBroadcast && !strategy_->allows_broadcast_destination())) {
    return refuse(trace::DropReason::InvalidDestination);
  }
  if (payload.size() > max_datagram_payload()) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  if (!strategy_->has_route(destination)) {
    ctx_.stats.dropped_no_route++;
    return refuse(trace::DropReason::NoRoute);
  }
  DataPacket p;
  p.link = LinkHeader{kUnassigned, ctx_.address, PacketType::Data};
  p.route = make_route(destination);
  p.payload = std::move(payload);
  Packet packet{std::move(p)};
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::AppSubmit, packet);
  }
  if (!link_.enqueue(std::move(packet), /*control=*/false)) {
    if (why != nullptr) *why = trace::DropReason::QueueFull;
    return false;
  }
  ctx_.stats.datagrams_sent++;
  return true;
}

bool NetworkLayer::send_broadcast(std::vector<std::uint8_t> payload,
                                  trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (ctx_.tracer != nullptr) {
      ctx_.trace_refusal(PacketType::Data, kBroadcast, payload.size(), reason);
    }
    return false;
  };
  if (!ctx_.running) return refuse(trace::DropReason::NotRunning);
  if (payload.size() > max_datagram_payload()) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  DataPacket p;
  p.link = LinkHeader{kBroadcast, ctx_.address, PacketType::Data};
  p.route.final_dst = kBroadcast;
  p.route.origin = ctx_.address;
  p.route.ttl = 1;  // single hop by design
  p.route.packet_id = next_packet_id_++;
  p.payload = std::move(payload);
  Packet packet{std::move(p)};
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::AppSubmit, packet);
  }
  if (!link_.enqueue(std::move(packet), /*control=*/false)) {
    if (why != nullptr) *why = trace::DropReason::QueueFull;
    return false;
  }
  ctx_.stats.broadcasts_sent++;
  return true;
}

void NetworkLayer::on_packet(Packet packet) {
  if (const auto* routing = std::get_if<RoutingPacket>(&packet)) {
    ctx_.stats.beacons_received++;
    strategy_->on_routing(*routing);
    return;
  }
  strategy_->handle(std::move(packet));
}

}  // namespace lm::net
