#include "net/flooding_strategy.h"

#include <algorithm>

#include "support/assert.h"

namespace lm::net {

bool FloodingStrategy::seen_before(Address origin, std::uint16_t packet_id) {
  const auto key = std::pair{origin, packet_id};
  if (seen_.contains(key)) return true;
  seen_.insert(key);
  seen_order_.push_back(key);
  while (seen_order_.size() > config_.dedup_cache) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

void FloodingStrategy::handle(Packet packet) {
  RouteHeader* route = route_of(packet);
  LM_ASSERT(route != nullptr);
  if (route->origin == ctx_->address) return;  // our own flood relayed back
  if (seen_before(route->origin, route->packet_id)) {
    duplicates_suppressed_++;
    if (ctx_->tracer != nullptr) {
      ctx_->trace_packet(trace::EventKind::Drop, packet,
                         trace::DropReason::Duplicate);
    }
    return;
  }
  if (route->final_dst == ctx_->address) {
    deliver_(std::move(packet));  // unicast reached its target: stop here
    return;
  }
  if (route->final_dst == kBroadcast) {
    deliver_(Packet{packet});  // deliver a copy, then keep flooding
  }
  if (route->ttl <= 1) {
    ctx_->stats.dropped_ttl++;
    if (ctx_->tracer != nullptr) {
      ctx_->trace_packet(trace::EventKind::Drop, packet,
                         trace::DropReason::TtlExpired);
    }
    return;
  }
  route->ttl--;
  route->hops++;
  LinkHeader& link = link_of(packet);
  link.src = ctx_->address;
  link.dst = kBroadcast;
  ctx_->stats.packets_forwarded++;
  if (ctx_->tracer != nullptr) {
    ctx_->trace_packet(trace::EventKind::Forward, packet);
  }
  const bool control = is_control_plane(packet);
  const Duration jitter = Duration::from_seconds(ctx_->rng.uniform(
      0.0, std::max(config_.rebroadcast_jitter.seconds_d(), 1e-4)));
  ctx_->sim.schedule_after(jitter,
                           [this, control, p = std::move(packet)]() mutable {
                             if (ctx_->running) link_->enqueue(std::move(p), control);
                           });
}

}  // namespace lm::net
