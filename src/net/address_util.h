// Address derivation, matching how LoRaMesher assigns node addresses on
// real hardware: the 16-bit address is folded from the device's unique MAC
// (the ESP32 efuse MAC in the original). Folding can collide — deployments
// must check, which is why the helpers are separated from assignment.
#pragma once

#include <cstdint>

#include "net/address.h"

namespace lm::net {

/// Folds a 48/64-bit hardware identifier into a usable mesh address,
/// never producing kUnassigned or kBroadcast.
Address address_from_mac(std::uint64_t mac);

/// True for addresses usable as a node identity.
constexpr bool is_valid_node_address(Address a) {
  return a != kUnassigned && a != kBroadcast;
}

}  // namespace lm::net
