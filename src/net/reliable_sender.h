// Sender side of the reliable large-payload transfer ("XL packets").
//
// Protocol (receiver-driven selective repeat):
//   1. SYNC(seq, fragment_count, total_bytes) — retried until SYNC_ACK.
//   2. Stream FRAGMENT(seq, index) packets, paced one-at-a-time: the next
//      fragment is enqueued only after the node reports the previous one on
//      the air, plus `fragment_spacing` (relays get a chance to drain and
//      the duty-cycle limiter can interleave).
//   3. After the last fragment, wait for DONE (success) or LOST (retransmit
//      the listed fragments and wait again). Silence is resolved by POLL:
//      the receiver answers with DONE or its current LOST list.
//   4. Give up after sync_max_retries unanswered SYNCs or poll_max_retries
//      unanswered POLLs; report the outcome through the completion callback.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/config.h"
#include "net/packet.h"
#include "net/packet_sink.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "trace/trace_sink.h"

namespace lm::net {

class ReliableSender {
 public:
  using Completion = std::function<void(bool success)>;

  /// Starts immediately (sends the first SYNC through `sink`).
  /// `payload` must be non-empty and at most kMaxFragmentPayload * 65535.
  /// `seed` randomizes the fragment pacing: two hidden senders sharing a
  /// relay would otherwise phase-lock — both waiting for the relay's
  /// forward, then colliding at it, forever.
  /// `tracer`/`trace_node` attach the owning node's flight recorder; the
  /// session reports SYNC retries, POLLs and the final outcome under the
  /// node's address.
  ReliableSender(sim::Simulator& sim, PacketSink& sink, const MeshConfig& config,
                 Address destination, std::uint8_t seq,
                 std::vector<std::uint8_t> payload, Completion completion,
                 std::uint64_t seed = 0, trace::Tracer* tracer = nullptr,
                 std::uint16_t trace_node = 0);
  ~ReliableSender();

  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  // --- Events fed by the owning node ---------------------------------------
  /// Fails the transfer immediately (node shutdown). Fires the completion
  /// callback with false unless already finished.
  void abort();
  void on_sync_ack();
  void on_lost(const std::vector<std::uint16_t>& missing);
  void on_done();
  /// The node transmitted one of this session's fragments.
  void on_fragment_transmitted(std::uint16_t index);

  // --- Introspection ---------------------------------------------------------
  bool finished() const { return state_ == State::Finished; }
  std::uint8_t seq() const { return seq_; }
  Address destination() const { return destination_; }
  std::uint16_t fragment_count() const { return fragment_count_; }
  std::uint64_t fragments_sent() const { return fragments_sent_; }
  std::uint64_t fragments_retransmitted() const { return fragments_retransmitted_; }

 private:
  enum class State {
    WaitSyncAck,   // SYNC sent, awaiting SYNC_ACK
    Streaming,     // emitting fragments in order / from the repair list
    WaitStatus,    // all requested fragments on the air, awaiting DONE/LOST
    Finished,
  };

  Duration jittered_retry_timeout();
  void trace_transfer(trace::EventKind kind, std::uint32_t bytes);
  void send_sync();
  void send_poll();
  void send_next_fragment();
  void arm_timer(Duration timeout, void (ReliableSender::*handler)());
  void cancel_timer();
  void on_sync_timeout();
  void on_status_timeout();
  void finish(bool success);
  FragmentPacket make_fragment(std::uint16_t index);

  sim::Simulator& sim_;
  PacketSink& sink_;
  const MeshConfig& config_;
  const Address destination_;
  const std::uint8_t seq_;
  const std::vector<std::uint8_t> payload_;
  std::size_t fragment_capacity_ = kMaxFragmentPayload;
  std::uint16_t fragment_count_ = 0;

  State state_ = State::WaitSyncAck;
  std::deque<std::uint16_t> pending_;   // fragment indices still to emit
  bool fragment_in_flight_ = false;     // emitted to the node, not yet on air
  int sync_attempts_ = 0;
  int poll_attempts_ = 0;
  std::uint64_t fragments_sent_ = 0;
  std::uint64_t fragments_retransmitted_ = 0;
  sim::TimerId timer_ = 0;
  Completion completion_;
  Rng rng_;
  trace::Tracer* tracer_ = nullptr;
  std::uint16_t trace_node_ = 0;
};

}  // namespace lm::net
