// TransportLayer — end-to-end delivery machinery above routing: acked
// datagrams (NEED_ACK: end-to-end ACK + retransmission + dedup) and
// reliable large-payload transfers (the paper's "XL packets":
// SYNC/SYNC_ACK/FRAGMENT/LOST/DONE/POLL), with ReliableSender /
// ReliableReceiver instances managed in one session table.
//
// Implements PacketSink so sessions emit through it: control and data
// packets go straight to the link queues, route headers are minted by the
// network layer (keeping the node's packet-id sequence global).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "net/layer_context.h"
#include "net/link_layer.h"
#include "net/network_layer.h"
#include "net/packet.h"
#include "net/packet_sink.h"
#include "net/reliable_receiver.h"
#include "net/reliable_sender.h"
#include "sim/simulator.h"
#include "trace/trace_event.h"

namespace lm::net {

class TransportLayer final : public PacketSink {
 public:
  /// Transfer/send outcome callback.
  using SendCallback = std::function<void(bool success)>;

  /// Application-facing delivery upcalls, wired by the facade.
  struct Delivery {
    /// An acked datagram was consumed here (deduplicated).
    std::function<void(Address origin, const std::vector<std::uint8_t>& payload,
                       std::uint8_t hops)> datagram;
    /// A reliable transfer fully reassembled.
    std::function<void(Address origin, std::vector<std::uint8_t> payload)>
        reliable;
  };

  TransportLayer(LayerContext& ctx, LinkLayer& link, NetworkLayer& network,
                 Delivery delivery);
  ~TransportLayer() override;

  TransportLayer(const TransportLayer&) = delete;
  TransportLayer& operator=(const TransportLayer&) = delete;

  // --- Origination -----------------------------------------------------------
  bool send_acked(Address destination, std::vector<std::uint8_t> payload,
                  SendCallback done, trace::DropReason* why);
  bool send_reliable(Address destination, std::vector<std::uint8_t> payload,
                     SendCallback done, trace::DropReason* why);

  // --- RX (routed packets addressed to us, from the network layer) ------------
  /// Consumes any non-DATA routed packet (ARQ control, fragments, acked
  /// datagrams). Plain DATA delivery stays in the facade.
  void on_deliver(Packet packet);

  // --- Link-layer progress hooks ----------------------------------------------
  /// A fragment left the air (or was dropped): unblock its sender session.
  void notify_fragment_progress(const Packet& packet);
  /// Reaps finished/expired sessions.
  void gc_sessions();

  /// Facade stop(): aborts transmit sessions, drops receive sessions and
  /// fails every pending acked datagram.
  void shutdown();

  // --- PacketSink (for reliable sessions) --------------------------------------
  void submit_control(Packet packet) override;
  void submit_data(Packet packet) override;
  Address self_address() const override { return ctx_.address; }
  RouteHeader make_route(Address final_dst) override {
    return network_.make_route(final_dst);
  }

 private:
  using SessionKey = std::pair<Address, std::uint8_t>;  // (peer, seq)

  struct PendingAck {
    AckedDataPacket packet;  // link.dst left unresolved for each attempt
    int attempts = 0;
    sim::TimerId timer = 0;
    SendCallback done;
  };

  void dispatch_to_sender(Address peer, std::uint8_t seq,
                          const std::function<void(ReliableSender&)>& fn);
  void transmit_acked_attempt(std::uint16_t packet_id);
  void on_acked_timeout(std::uint16_t packet_id);
  void finish_acked(std::uint16_t packet_id, bool success);
  bool acked_seen_before(Address origin, std::uint16_t packet_id);

  LayerContext& ctx_;
  LinkLayer& link_;
  NetworkLayer& network_;
  Delivery delivery_;

  std::uint8_t next_transfer_seq_ = 0;
  std::map<SessionKey, std::unique_ptr<ReliableSender>> tx_sessions_;
  std::map<SessionKey, std::unique_ptr<ReliableReceiver>> rx_sessions_;
  std::map<std::uint16_t, PendingAck> pending_acks_;  // by our packet_id
  std::set<std::pair<Address, std::uint16_t>> acked_seen_;
  std::deque<std::pair<Address, std::uint16_t>> acked_seen_order_;
};

}  // namespace lm::net
