// LayerContext — the per-node state shared by every layer of the protocol
// stack (link / network / transport) and the MeshNode facade that owns them.
//
// The stack is deliberately built around ONE context object instead of
// per-layer copies: a node has exactly one RNG stream (so jitter and backoff
// draws interleave deterministically regardless of which layer draws), one
// stats block, one config, one running flag and one tracer hook. Splitting
// any of these per layer would change RNG draw order or stats attribution
// and break byte-identical replay against the golden traces.
#pragma once

#include <cstdint>

#include "net/address.h"
#include "net/config.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "trace/trace_sink.h"

namespace lm::net {

/// Cumulative per-node protocol counters.
struct NodeStats {
  // Control plane.
  std::uint64_t beacons_sent = 0;
  std::uint64_t beacons_received = 0;
  std::uint64_t routing_changes = 0;  // beacons that changed the table
  // Data plane.
  std::uint64_t datagrams_sent = 0;       // originated here
  std::uint64_t datagrams_delivered = 0;  // consumed here as final destination
  std::uint64_t broadcasts_sent = 0;
  std::uint64_t broadcasts_delivered = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t foreign_frames = 0;  // overheard unicast for someone else
  std::uint64_t beacons_ignored_low_quality = 0;  // link-quality gating
  // Channel access.
  std::uint64_t cad_busy_events = 0;
  std::uint64_t forced_transmissions = 0;  // CAD retries exhausted
  std::uint64_t duty_cycle_delays = 0;
  // Byte/airtime accounting, split by plane (E3 overhead decomposition):
  // control = ROUTING + ARQ control; data = DATA + FRAGMENT.
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t data_bytes_sent = 0;
  Duration control_airtime;
  Duration data_airtime;
  // Acked datagrams.
  std::uint64_t acked_sent = 0;          // originated here
  std::uint64_t acked_confirmed = 0;     // ACK came back
  std::uint64_t acked_failed = 0;        // retries exhausted
  std::uint64_t acked_retransmissions = 0;
  std::uint64_t acked_delivered = 0;     // consumed here (deduplicated)
  std::uint64_t acked_duplicates = 0;    // retransmissions we had already seen
  std::uint64_t acks_sent = 0;
  // Reliable transfers.
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t transfers_received = 0;
  std::uint64_t rx_sessions_rejected = 0;  // SYNCs refused at the session cap
  std::uint64_t fragments_sent = 0;
  std::uint64_t fragments_retransmitted = 0;
};

struct LayerContext {
  sim::Simulator& sim;
  const Address address;
  /// Owned copy: the link layer shrinks max_fragment_payload to the dwell
  /// cap at construction, and every layer reads the same adjusted values.
  MeshConfig config;
  /// The node's single randomness stream (jitter, backoff, retry fuzz,
  /// session seeds). All layers draw from here, in event order.
  Rng rng;
  NodeStats stats;
  /// Flight recorder; null = detached. Instrumentation sites guard on this
  /// pointer so the untraced hot path never evaluates arguments.
  trace::Tracer* tracer = nullptr;
  bool running = false;

  // Flight-recorder plumbing shared by all layers. Callers guard on
  // tracer != nullptr.
  void trace_packet(trace::EventKind kind, const Packet& packet,
                    trace::DropReason reason = trace::DropReason::None,
                    std::int64_t aux_us = 0, double value = 0.0);
  void trace_refusal(PacketType type, Address dst, std::size_t bytes,
                     trace::DropReason reason);
  /// NodeUp / NodeDown lifecycle marks.
  void trace_lifecycle(trace::EventKind kind);
};

}  // namespace lm::net
