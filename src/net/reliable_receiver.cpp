#include "net/reliable_receiver.h"

#include "support/assert.h"
#include "support/log.h"

namespace lm::net {

ReliableReceiver::ReliableReceiver(sim::Simulator& sim, PacketSink& sink,
                                   const MeshConfig& config, Address origin,
                                   const SyncPacket& sync, Delivery delivery,
                                   trace::Tracer* tracer,
                                   std::uint16_t trace_node)
    : sim_(sim),
      sink_(sink),
      config_(config),
      origin_(origin),
      seq_(sync.seq),
      fragment_count_(sync.fragment_count),
      total_bytes_(sync.total_bytes),
      delivery_(std::move(delivery)),
      tracer_(tracer),
      trace_node_(trace_node) {
  LM_REQUIRE(fragment_count_ > 0);
  fragments_.resize(fragment_count_);
  have_.assign(fragment_count_, false);
  session_timer_ = sim_.schedule_after(config_.receiver_session_timeout,
                                       [this] { on_session_timeout(); });
  if (tracer_ != nullptr) {
    trace_session(trace::EventKind::TransferRxStart, fragment_count_);
  }
  send_sync_ack();
  restart_gap_timer();
}

void ReliableReceiver::trace_session(trace::EventKind kind,
                                     std::uint32_t bytes) {
  trace::TraceEvent e;
  e.t_us = sim_.now().us();
  e.node = trace_node_;
  e.kind = kind;
  e.packet_type = static_cast<std::uint8_t>(PacketType::Sync);
  e.origin = origin_;
  e.final_dst = trace_node_;
  e.packet_id = seq_;
  e.bytes = bytes;
  tracer_->emit(e);
}

ReliableReceiver::~ReliableReceiver() {
  if (gap_timer_ != 0) sim_.cancel(gap_timer_);
  if (session_timer_ != 0) sim_.cancel(session_timer_);
}

void ReliableReceiver::send_sync_ack() {
  SyncAckPacket p;
  p.link.type = PacketType::SyncAck;
  p.link.src = sink_.self_address();
  p.route = sink_.make_route(origin_);
  p.seq = seq_;
  sink_.submit_control(Packet{p});
}

void ReliableReceiver::on_sync(const SyncPacket& sync) {
  if (expired_) return;
  // The sender retried: our SYNC_ACK was lost. Sanity-check consistency —
  // a mismatching retry is a stale/confused sender and is ignored.
  if (sync.fragment_count != fragment_count_ || sync.total_bytes != total_bytes_) {
    LM_WARN("reliable", "inconsistent SYNC retry from %s (seq %u)",
            to_string(origin_).c_str(), seq_);
    return;
  }
  send_sync_ack();
  restart_gap_timer();
}

void ReliableReceiver::on_fragment(const FragmentPacket& fragment) {
  if (expired_) return;
  if (fragment.index >= fragment_count_) {
    LM_WARN("reliable", "fragment index %u out of range (count %u)",
            fragment.index, fragment_count_);
    return;
  }
  if (delivered_) {
    // Late duplicate after completion: the sender missed our DONE.
    send_done();
    return;
  }
  if (have_[fragment.index]) {
    ++duplicate_fragments_;
    restart_gap_timer();
    return;
  }
  have_[fragment.index] = true;
  fragments_[fragment.index] = fragment.payload;
  ++received_count_;
  if (complete()) {
    complete_transfer();
  } else {
    restart_gap_timer();
  }
}

void ReliableReceiver::on_poll() {
  if (expired_) return;
  if (delivered_) {
    send_done();
    return;
  }
  send_lost();
  restart_gap_timer();
}

void ReliableReceiver::restart_gap_timer() {
  if (gap_timer_ != 0) sim_.cancel(gap_timer_);
  gap_timer_ = sim_.schedule_after(config_.receiver_gap_timeout,
                                   [this] { on_gap_timeout(); });
}

void ReliableReceiver::on_gap_timeout() {
  gap_timer_ = 0;
  if (expired_ || delivered_) return;
  // The stream went quiet with fragments missing: request repair. The
  // sender's POLL serves the same purpose from the other side; whichever
  // timer fires first drives the exchange.
  send_lost();
  restart_gap_timer();
}

void ReliableReceiver::send_lost() {
  ++lost_requests_sent_;
  LostPacket p;
  if (tracer_ != nullptr) {
    trace_session(trace::EventKind::LostRequest,
                  static_cast<std::uint32_t>(missing_indices(kMaxLostIndices).size()));
  }
  p.link.type = PacketType::Lost;
  p.link.src = sink_.self_address();
  p.route = sink_.make_route(origin_);
  p.seq = seq_;
  p.missing = missing_indices(kMaxLostIndices);
  sink_.submit_control(Packet{std::move(p)});
}

std::vector<std::uint16_t> ReliableReceiver::missing_indices(std::size_t cap) const {
  std::vector<std::uint16_t> out;
  for (std::uint16_t i = 0; i < fragment_count_ && out.size() < cap; ++i) {
    if (!have_[i]) out.push_back(i);
  }
  return out;
}

void ReliableReceiver::send_done() {
  DonePacket p;
  p.link.type = PacketType::Done;
  p.link.src = sink_.self_address();
  p.route = sink_.make_route(origin_);
  p.seq = seq_;
  sink_.submit_control(Packet{p});
}

void ReliableReceiver::complete_transfer() {
  LM_ASSERT(complete());
  delivered_ = true;
  if (gap_timer_ != 0) {
    sim_.cancel(gap_timer_);
    gap_timer_ = 0;
  }
  send_done();
  std::vector<std::uint8_t> payload;
  payload.reserve(total_bytes_);
  for (const auto& frag : fragments_) {
    payload.insert(payload.end(), frag.begin(), frag.end());
  }
  if (payload.size() != total_bytes_) {
    LM_WARN("reliable", "reassembled %zu bytes, SYNC announced %u",
            payload.size(), total_bytes_);
  }
  // Keep the session alive (delivered_ state) until the session timer
  // expires, so late POLLs and duplicate fragments still draw a DONE.
  if (delivery_) delivery_(origin_, std::move(payload));
}

void ReliableReceiver::on_session_timeout() {
  session_timer_ = 0;
  expired_ = true;
  if (!delivered_) {
    LM_DEBUG("reliable", "receive session from %s (seq %u) abandoned at %u/%u",
             to_string(origin_).c_str(), seq_, received_count_, fragment_count_);
  }
}

}  // namespace lm::net
