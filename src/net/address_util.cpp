#include "net/address_util.h"

namespace lm::net {

Address address_from_mac(std::uint64_t mac) {
  // SplitMix64-style avalanche so vendor-prefixed MACs (identical high
  // bits) spread across the address space, then fold to 16 bits.
  std::uint64_t z = mac + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  auto address = static_cast<Address>(z ^ (z >> 16) ^ (z >> 32) ^ (z >> 48));
  if (address == kUnassigned) address = 0x0001;
  if (address == kBroadcast) address = 0xFFFE;
  return address;
}

}  // namespace lm::net
