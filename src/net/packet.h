// The LoRaMesher over-the-air packet family.
//
// Every frame starts with a 5-byte link header addressing the next hop.
// Unicast packets additionally carry an 8-byte route header addressing the
// final destination, so intermediate nodes can forward without touching the
// payload. The reliable large-payload machinery (paper: "XL packets") adds
// small control packets: SYNC announces a transfer, SYNC_ACK accepts it,
// FRAGMENT carries one piece, LOST requests retransmissions, DONE confirms
// completion and POLL asks the receiver for its status.
//
// Wire layout (little-endian):
//   LinkHeader:  link_dst:u16  link_src:u16  type:u8
//   RouteHeader: final_dst:u16 origin:u16 ttl:u8 hops:u8 packet_id:u16
//
// Frame size is capped by the SX127x 255-byte FIFO; kMaxDataPayload /
// kMaxFragmentPayload expose the resulting application MTUs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/address.h"
#include "net/role.h"

namespace lm::net {

enum class PacketType : std::uint8_t {
  Routing = 1,    // broadcast distance-vector table
  Data = 2,       // unreliable routed datagram
  Sync = 3,       // reliable transfer: announcement
  SyncAck = 4,    // reliable transfer: receiver ready
  Fragment = 5,   // reliable transfer: one payload piece
  Lost = 6,       // reliable transfer: retransmission request
  Done = 7,       // reliable transfer: completion confirmation
  Poll = 8,       // reliable transfer: sender status query
  AckedData = 9,  // single datagram wanting an end-to-end ACK ("NEED_ACK")
  Ack = 10,       // end-to-end acknowledgment of one AckedData
};

const char* to_string(PacketType t);

/// Addresses the next hop on the air. The default dst is kUnassigned
/// ("route me"): MeshNode resolves it to the next hop at transmit time.
/// Broadcast must be requested explicitly — a defaulted header that leaks
/// to the air as broadcast makes every neighbor forward the packet.
struct LinkHeader {
  Address dst = kUnassigned;  // next hop, kBroadcast, or kUnassigned
  Address src = kUnassigned;  // transmitting node
  PacketType type = PacketType::Data;

  friend bool operator==(const LinkHeader&, const LinkHeader&) = default;
};

/// Addresses the end-to-end path; present on every unicast packet.
struct RouteHeader {
  Address final_dst = kUnassigned;
  Address origin = kUnassigned;
  std::uint8_t ttl = 0;        // decremented per hop; 0 is dropped
  std::uint8_t hops = 0;       // incremented per hop (metrics/diagnostics)
  std::uint16_t packet_id = 0; // origin-scoped, for duplicate suppression

  friend bool operator==(const RouteHeader&, const RouteHeader&) = default;
};

constexpr std::size_t kLinkHeaderSize = 5;
constexpr std::size_t kRouteHeaderSize = 8;

/// Application MTU of an unreliable datagram.
constexpr std::size_t kMaxDataPayload = 255 - kLinkHeaderSize - kRouteHeaderSize;  // 242
/// Payload capacity of one reliable-transfer fragment (3 bytes of
/// seq/index overhead).
constexpr std::size_t kMaxFragmentPayload = kMaxDataPayload - 3;  // 239
/// Fragment indices one LOST packet can carry.
constexpr std::size_t kMaxLostIndices = (kMaxDataPayload - 2) / 2;  // 120

/// One advertised route in a routing beacon. The sender also advertises
/// itself (metric 0) so its role propagates.
struct RoutingEntry {
  Address address = kUnassigned;
  std::uint8_t metric = 0;  // hop count; >= kInfiniteMetric means unreachable
  Role role = roles::kNone;

  friend bool operator==(const RoutingEntry&, const RoutingEntry&) = default;
};

/// Entries one routing beacon can carry (4 B each).
constexpr std::size_t kMaxRoutingEntries = (255 - kLinkHeaderSize - 1) / 4;  // 62

// --- Packet bodies ----------------------------------------------------------

struct RoutingPacket {
  LinkHeader link;  // link.dst == kBroadcast
  std::vector<RoutingEntry> entries;

  friend bool operator==(const RoutingPacket&, const RoutingPacket&) = default;
};

struct DataPacket {
  LinkHeader link;
  RouteHeader route;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const DataPacket&, const DataPacket&) = default;
};

struct SyncPacket {
  LinkHeader link;
  RouteHeader route;
  std::uint8_t seq = 0;
  std::uint16_t fragment_count = 0;
  std::uint32_t total_bytes = 0;

  friend bool operator==(const SyncPacket&, const SyncPacket&) = default;
};

struct SyncAckPacket {
  LinkHeader link;
  RouteHeader route;
  std::uint8_t seq = 0;

  friend bool operator==(const SyncAckPacket&, const SyncAckPacket&) = default;
};

struct FragmentPacket {
  LinkHeader link;
  RouteHeader route;
  std::uint8_t seq = 0;
  std::uint16_t index = 0;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const FragmentPacket&, const FragmentPacket&) = default;
};

struct LostPacket {
  LinkHeader link;
  RouteHeader route;
  std::uint8_t seq = 0;
  std::vector<std::uint16_t> missing;  // <= kMaxLostIndices

  friend bool operator==(const LostPacket&, const LostPacket&) = default;
};

struct DonePacket {
  LinkHeader link;
  RouteHeader route;
  std::uint8_t seq = 0;

  friend bool operator==(const DonePacket&, const DonePacket&) = default;
};

struct PollPacket {
  LinkHeader link;
  RouteHeader route;
  std::uint8_t seq = 0;

  friend bool operator==(const PollPacket&, const PollPacket&) = default;
};

/// A single datagram that wants an end-to-end ACK; the route header's
/// packet_id identifies it for the acknowledgment and for duplicate
/// suppression at the receiver (the sender retries with the same id).
struct AckedDataPacket {
  LinkHeader link;
  RouteHeader route;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const AckedDataPacket&, const AckedDataPacket&) = default;
};

struct AckPacket {
  LinkHeader link;
  RouteHeader route;
  std::uint16_t acked_id = 0;  // packet_id of the AckedData being confirmed

  friend bool operator==(const AckPacket&, const AckPacket&) = default;
};

using Packet =
    std::variant<RoutingPacket, DataPacket, SyncPacket, SyncAckPacket,
                 FragmentPacket, LostPacket, DonePacket, PollPacket,
                 AckedDataPacket, AckPacket>;

// --- Codec ------------------------------------------------------------------

/// Serializes any packet to its on-air frame. Throws ContractViolation when a
/// field exceeds its wire capacity (caller bug).
std::vector<std::uint8_t> encode(const Packet& packet);

/// Parses an on-air frame. Returns nullopt for malformed frames (wrong
/// length, unknown type, truncated fields) — corrupted radio input is an
/// expected condition, never an exception.
std::optional<Packet> decode(const std::vector<std::uint8_t>& frame);

/// Link header of any packet without fully decoding it.
const LinkHeader& link_of(const Packet& packet);
LinkHeader& link_of(Packet& packet);

/// Route header access; nullptr for RoutingPacket (which has none).
const RouteHeader* route_of(const Packet& packet);
RouteHeader* route_of(Packet& packet);

/// Encoded size in bytes without materializing the frame.
std::size_t encoded_size(const Packet& packet);

/// One-line human rendering for traces.
std::string describe(const Packet& packet);

/// Queue priority: everything except DATA / FRAGMENT / ACKED_DATA is
/// control plane (beacons and ARQ control jump the data queue).
bool is_control_plane(const Packet& packet);

}  // namespace lm::net
