// Tunables of a mesh node. Defaults follow the LoRaMesher prototype's
// behaviour on the paper's testbed (SF7/125 kHz, periodic full-table
// beacons) scaled where the original hard-codes ESP32-specific values.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/role.h"
#include "support/time.h"

namespace lm::net {

struct MeshConfig {
  /// Role bits this node advertises with its beacons (see net/role.h);
  /// other nodes can then discover e.g. the nearest gateway.
  Role role = roles::kNone;

  // --- Distance-vector protocol ---------------------------------------------
  /// Period between routing beacons. The demo uses ~60 s; the released
  /// library defaults to 120 s.
  Duration hello_interval = Duration::seconds(60);
  /// Each beacon fires at hello_interval * (1 ± hello_jitter), desynchronizing
  /// neighbors that booted together.
  double hello_jitter = 0.15;
  /// Routes expire after this many silent beacon periods.
  int route_timeout_intervals = 10;
  /// TTL stamped on originated packets; also bounds forwarding loops.
  std::uint8_t max_ttl = 16;

  // --- Link-quality gating (LoRaMesher v2's received-SNR tracking) -----------
  /// When enabled, beacons from neighbors whose smoothed SNR margin sits
  /// below min_snr_margin_db are ignored, so marginal links never become
  /// next hops: hop count stops preferring a flaky 1-hop shortcut over a
  /// solid 2-hop path. Disabled by default (the demo prototype's behaviour).
  bool require_link_quality = false;
  /// Minimum smoothed margin (dB above the SF's demodulation floor).
  double min_snr_margin_db = 3.0;
  /// EWMA weight of each new SNR sample.
  double snr_ewma_alpha = 0.25;

  // --- Channel access --------------------------------------------------------
  /// Listen-before-talk via CAD. Disabled = ALOHA (E9 ablation).
  bool use_cad = true;
  /// CAD-busy retries before transmitting anyway (channel saturated).
  int max_cad_retries = 8;
  /// First backoff window; doubles per busy CAD, capped at backoff_max.
  Duration backoff_base = Duration::milliseconds(100);
  Duration backoff_max = Duration::seconds(4);
  /// Random extra delay before relaying a forwarded packet, desynchronizing
  /// parallel relays.
  Duration forward_jitter = Duration::milliseconds(100);

  // --- Duty cycle -------------------------------------------------------------
  /// Fraction of airtime the regional regulation allows (EU868: 1 %).
  /// >= 1.0 disables enforcement.
  double duty_cycle_limit = 0.01;
  /// Sliding window over which the limit is accounted.
  Duration duty_cycle_window = Duration::hours(1);
  /// Per-transmission airtime cap (US915-style dwell rule; FCC 15.247
  /// allows 400 ms). Zero disables. Frames that would exceed it are
  /// rejected at submission, never silently truncated; reliable transfers
  /// shrink their fragments to fit.
  Duration max_dwell_time = Duration::zero();

  // --- Receiver duty-cycling (the paper's future-work lever) ------------------
  /// Fraction of idle time the receiver listens. 1.0 (default) is the
  /// prototype's always-on behaviour; below 1.0 the node alternates
  /// unsynchronized listen/sleep windows of rx_cycle_period — the naive
  /// version of duty-cycled listening. Saves energy proportionally but
  /// drops every frame arriving in a sleep window (E10 quantifies the
  /// trade; making this work without losing frames needs synchronized
  /// wake-ups or wake-up radios).
  double rx_duty = 1.0;
  Duration rx_cycle_period = Duration::seconds(10);

  // --- Queueing ----------------------------------------------------------------
  /// Packets buffered for transmission (control + data each); overflow drops
  /// the newest data packet (control packets evict the oldest data packet).
  std::size_t max_queue = 64;

  // --- Reliable transfers ------------------------------------------------------
  /// SYNC retransmissions before giving up on an unresponsive receiver.
  int sync_max_retries = 4;
  /// Status polls after the last fragment before declaring failure.
  int poll_max_retries = 6;
  /// Sender wait for SYNC_ACK / DONE / LOST before retrying.
  Duration reliable_retry_timeout = Duration::seconds(15);
  /// Receiver-side silence gap after which missing fragments are requested.
  Duration receiver_gap_timeout = Duration::seconds(20);
  /// Receiver session lifetime without any progress.
  Duration receiver_session_timeout = Duration::minutes(5);
  /// Pause between successive fragments (lets relays drain and shares the
  /// channel); the duty-cycle limiter adds more when needed.
  Duration fragment_spacing = Duration::milliseconds(100);
  /// Payload bytes per fragment (<= kMaxFragmentPayload). Shrunk
  /// automatically when max_dwell_time caps the frame size.
  std::size_t max_fragment_payload = 239;

  // --- Acked datagrams ("NEED_ACK") ------------------------------------------
  /// Retransmissions of an acked datagram before reporting failure.
  int acked_max_retries = 3;
  /// Wait for the end-to-end ACK before each retransmission.
  Duration acked_retry_timeout = Duration::seconds(10);
  /// Remembered (origin, packet_id) pairs for duplicate suppression of
  /// retransmitted acked datagrams.
  std::size_t acked_dedup_cache = 64;

  /// Concurrent reliable-transfer receive sessions. Each session holds
  /// fragment buffers and timers, so an attacker (or a bug) spraying SYNCs
  /// with fresh (origin, seq) pairs must hit a wall instead of exhausting
  /// a 520 KB-RAM microcontroller.
  std::size_t max_rx_sessions = 8;

  /// Route-table housekeeping period (expiry sweep).
  Duration maintenance_interval = Duration::seconds(10);
};

}  // namespace lm::net
