#include "net/mesh_node.h"

#include <algorithm>

#include "phy/airtime.h"
#include "support/assert.h"
#include "support/log.h"

namespace lm::net {

namespace {
constexpr const char* kTag = "mesh";
}

MeshNode::MeshNode(sim::Simulator& sim, radio::Radio& radio,
                   Address address, MeshConfig config, std::uint64_t seed)
    : sim_(sim),
      radio_(radio),
      address_(address),
      config_(config),
      rng_(seed),
      table_(address,
             config.hello_interval *
                 static_cast<std::int64_t>(config.route_timeout_intervals),
             kInfiniteMetric, config.role),
      duty_(config.duty_cycle_limit, config.duty_cycle_window) {
  LM_REQUIRE(address != kUnassigned && address != kBroadcast);
  LM_REQUIRE(config.hello_interval > Duration::zero());
  LM_REQUIRE(config.route_timeout_intervals >= 2);
  LM_REQUIRE(config.max_fragment_payload >= 1 &&
             config.max_fragment_payload <= kMaxFragmentPayload);
  LM_REQUIRE(config.rx_duty > 0.0 && config.rx_duty <= 1.0);
  LM_REQUIRE(config.rx_cycle_period > Duration::zero());

  // US915-style dwell rule: cap the frame size so every transmission fits,
  // and shrink reliable-transfer fragments to match.
  max_frame_bytes_ = phy::kMaxPhyPayload;
  if (config_.max_dwell_time > Duration::zero()) {
    std::size_t fit = 0;
    for (std::size_t bytes = phy::kMaxPhyPayload;; --bytes) {
      if (phy::time_on_air(radio_.modulation(), bytes) <= config_.max_dwell_time) {
        fit = bytes;
        break;
      }
      if (bytes == 0) break;
    }
    LM_REQUIRE(fit >= kLinkHeaderSize + kRouteHeaderSize + 4 &&
               "max_dwell_time leaves no usable frame at this modulation");
    max_frame_bytes_ = fit;
    const std::size_t fragment_fit =
        max_frame_bytes_ - kLinkHeaderSize - kRouteHeaderSize - 3;
    config_.max_fragment_payload =
        std::min(config_.max_fragment_payload, fragment_fit);
  }
  radio_.set_listener(this);
}

MeshNode::~MeshNode() {
  if (beacon_timer_ != 0) sim_.cancel(beacon_timer_);
  if (maintenance_timer_ != 0) sim_.cancel(maintenance_timer_);
  if (pipeline_timer_ != 0) sim_.cancel(pipeline_timer_);
  for (auto& [id, pending] : pending_acks_) {
    if (pending.timer != 0) sim_.cancel(pending.timer);
  }
  radio_.set_listener(nullptr);
}

// --- Lifecycle ----------------------------------------------------------------

void MeshNode::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  rx_window_open_ = true;
  radio_.start_receive();
  schedule_next_beacon(/*first=*/true);
  start_maintenance_loop();
  schedule_rx_cycle();
  if (tracer_ != nullptr) {
    trace::TraceEvent e;
    e.t_us = sim_.now().us();
    e.node = address_;
    e.kind = trace::EventKind::NodeUp;
    tracer_->emit(e);
  }
}

void MeshNode::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer == nullptr) {
    table_.set_observer(nullptr);
    return;
  }
  table_.set_observer([this](const RouteEntry& entry) {
    if (tracer_ == nullptr) return;
    trace::TraceEvent e;
    e.t_us = sim_.now().us();
    e.node = address_;
    e.kind = trace::EventKind::RouteAdd;
    e.final_dst = entry.destination;
    e.via = entry.via;
    e.bytes = entry.metric;
    tracer_->emit(e);
  });
}

void MeshNode::trace_packet(trace::EventKind kind, const Packet& packet,
                            trace::DropReason reason, std::int64_t aux_us,
                            double value) {
  trace::TraceEvent e;
  e.t_us = sim_.now().us();
  e.node = address_;
  e.kind = kind;
  e.reason = reason;
  const LinkHeader& link = link_of(packet);
  e.packet_type = static_cast<std::uint8_t>(link.type);
  e.via = link.dst;
  if (const RouteHeader* route = route_of(packet)) {
    e.origin = route->origin;
    e.final_dst = route->final_dst;
    e.hops = route->hops;
    e.ttl = route->ttl;
    e.packet_id = route->packet_id;
  } else {
    e.origin = link.src;  // routing beacons carry no route header
  }
  e.bytes = static_cast<std::uint32_t>(encoded_size(packet));
  e.aux_us = aux_us;
  e.value = value;
  tracer_->emit(e);
}

void MeshNode::trace_refusal(PacketType type, Address dst, std::size_t bytes,
                             trace::DropReason reason) {
  trace::TraceEvent e;
  e.t_us = sim_.now().us();
  e.node = address_;
  e.kind = trace::EventKind::Drop;
  e.reason = reason;
  e.packet_type = static_cast<std::uint8_t>(type);
  e.origin = address_;
  e.final_dst = dst;
  e.bytes = static_cast<std::uint32_t>(bytes);
  tracer_->emit(e);
}

void MeshNode::resume_radio() {
  // After TX/CAD/drops, return to whatever the receiver schedule says:
  // listening, or (in a sleep window of duty-cycled listening) sleeping.
  if (!running_) return;
  if (rx_window_open_) {
    if (radio_.state() == radio::RadioState::Standby ||
        radio_.state() == radio::RadioState::Sleep) {
      radio_.start_receive();
    }
  } else if (radio_.state() == radio::RadioState::Standby ||
             radio_.state() == radio::RadioState::Rx) {
    radio_.sleep();
  }
}

void MeshNode::schedule_rx_cycle() {
  if (config_.rx_duty >= 1.0) return;
  const Duration on = config_.rx_cycle_period * config_.rx_duty;
  const Duration off = config_.rx_cycle_period - on;
  const Duration next = rx_window_open_ ? on : off;
  rx_cycle_timer_ = sim_.schedule_after(next, [this] {
    rx_cycle_timer_ = 0;
    if (!running_) return;
    rx_window_open_ = !rx_window_open_;
    // Never interrupt an active TX/CAD; resume_radio applies the schedule
    // when they complete.
    if (tx_phase_ == TxPhase::Idle || tx_phase_ == TxPhase::Backoff ||
        tx_phase_ == TxPhase::WaitingDuty) {
      resume_radio();
    }
    schedule_rx_cycle();
  });
}

void MeshNode::start_maintenance_loop() {
  maintenance_timer_ = sim_.schedule_after(config_.maintenance_interval, [this] {
    maintenance_timer_ = 0;
    if (!running_) return;
    table_.expire(sim_.now());
    gc_sessions();
    start_maintenance_loop();
  });
}

void MeshNode::stop() {
  if (!running_) return;
  running_ = false;
  if (tracer_ != nullptr) {
    trace::TraceEvent e;
    e.t_us = sim_.now().us();
    e.node = address_;
    e.kind = trace::EventKind::NodeDown;
    tracer_->emit(e);
  }
  for (sim::TimerId* t : {&beacon_timer_, &maintenance_timer_, &pipeline_timer_,
                          &rx_cycle_timer_}) {
    if (*t != 0) {
      sim_.cancel(*t);
      *t = 0;
    }
  }
  control_queue_.clear();
  data_queue_.clear();
  // Outstanding sends fail now; receive sessions just disappear (their
  // senders will give up after their poll budget).
  for (auto& [key, sender] : tx_sessions_) sender->abort();
  tx_sessions_.clear();
  rx_sessions_.clear();
  while (!pending_acks_.empty()) {
    finish_acked(pending_acks_.begin()->first, false);
  }
  if (tx_phase_ != TxPhase::Transmitting) {
    current_.reset();
    tx_phase_ = TxPhase::Idle;
  }
  // Mid-TX and mid-CAD radios settle in on_tx_done / on_cad_done.
  const radio::RadioState s = radio_.state();
  if (s == radio::RadioState::Rx || s == radio::RadioState::Standby) {
    radio_.sleep();
  }
}

// --- Application API ------------------------------------------------------------

RouteHeader MeshNode::make_route(Address final_dst) {
  RouteHeader r;
  r.final_dst = final_dst;
  r.origin = address_;
  r.ttl = config_.max_ttl;
  r.hops = 0;
  r.packet_id = next_packet_id_++;
  return r;
}

bool MeshNode::send_datagram(Address destination, std::vector<std::uint8_t> payload,
                             trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (tracer_ != nullptr) {
      trace_refusal(PacketType::Data, destination, payload.size(), reason);
    }
    return false;
  };
  if (!running_) return refuse(trace::DropReason::NotRunning);
  if (destination == address_ || destination == kUnassigned ||
      destination == kBroadcast) {
    return refuse(trace::DropReason::InvalidDestination);
  }
  if (payload.size() > max_datagram_payload()) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  if (!table_.has_route(destination)) {
    stats_.dropped_no_route++;
    return refuse(trace::DropReason::NoRoute);
  }
  DataPacket p;
  p.link = LinkHeader{kUnassigned, address_, PacketType::Data};
  p.route = make_route(destination);
  p.payload = std::move(payload);
  Packet packet{std::move(p)};
  if (tracer_ != nullptr) trace_packet(trace::EventKind::AppSubmit, packet);
  if (!enqueue(std::move(packet), /*control=*/false)) {
    if (why != nullptr) *why = trace::DropReason::QueueFull;
    return false;
  }
  stats_.datagrams_sent++;
  return true;
}

bool MeshNode::send_broadcast(std::vector<std::uint8_t> payload,
                              trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (tracer_ != nullptr) {
      trace_refusal(PacketType::Data, kBroadcast, payload.size(), reason);
    }
    return false;
  };
  if (!running_) return refuse(trace::DropReason::NotRunning);
  if (payload.size() > max_datagram_payload()) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  DataPacket p;
  p.link = LinkHeader{kBroadcast, address_, PacketType::Data};
  p.route.final_dst = kBroadcast;
  p.route.origin = address_;
  p.route.ttl = 1;  // single hop by design
  p.route.packet_id = next_packet_id_++;
  p.payload = std::move(payload);
  Packet packet{std::move(p)};
  if (tracer_ != nullptr) trace_packet(trace::EventKind::AppSubmit, packet);
  if (!enqueue(std::move(packet), /*control=*/false)) {
    if (why != nullptr) *why = trace::DropReason::QueueFull;
    return false;
  }
  stats_.broadcasts_sent++;
  return true;
}

bool MeshNode::send_acked(Address destination, std::vector<std::uint8_t> payload,
                          SendCallback done, trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (tracer_ != nullptr) {
      trace_refusal(PacketType::AckedData, destination, payload.size(), reason);
    }
    return false;
  };
  if (!running_) return refuse(trace::DropReason::NotRunning);
  if (destination == address_ || destination == kUnassigned ||
      destination == kBroadcast) {
    return refuse(trace::DropReason::InvalidDestination);
  }
  if (payload.size() > max_datagram_payload()) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  if (!table_.has_route(destination)) {
    stats_.dropped_no_route++;
    return refuse(trace::DropReason::NoRoute);
  }
  AckedDataPacket p;
  p.link = LinkHeader{kUnassigned, address_, PacketType::AckedData};
  p.route = make_route(destination);
  p.payload = std::move(payload);
  const std::uint16_t id = p.route.packet_id;
  LM_ASSERT(!pending_acks_.contains(id));  // 16-bit id space, tiny windows
  if (tracer_ != nullptr) trace_packet(trace::EventKind::AppSubmit, Packet{p});
  PendingAck pending;
  pending.packet = std::move(p);
  pending.done = std::move(done);
  pending_acks_.emplace(id, std::move(pending));
  stats_.acked_sent++;
  transmit_acked_attempt(id);
  return true;
}

void MeshNode::transmit_acked_attempt(std::uint16_t packet_id) {
  const auto it = pending_acks_.find(packet_id);
  LM_ASSERT(it != pending_acks_.end());
  it->second.attempts++;
  // Fresh copy per attempt: the queue owns (and resolves) its own instance.
  enqueue(Packet{it->second.packet}, /*control=*/false);
  // Jittered retry: simultaneous senders must not retransmit in lockstep.
  it->second.timer = sim_.schedule_after(
      config_.acked_retry_timeout * rng_.uniform(0.9, 1.4),
      [this, packet_id] { on_acked_timeout(packet_id); });
}

void MeshNode::on_acked_timeout(std::uint16_t packet_id) {
  const auto it = pending_acks_.find(packet_id);
  if (it == pending_acks_.end()) return;
  it->second.timer = 0;
  if (it->second.attempts > config_.acked_max_retries) {
    finish_acked(packet_id, false);
    return;
  }
  stats_.acked_retransmissions++;
  if (tracer_ != nullptr) {
    trace_packet(trace::EventKind::AckedRetry, Packet{it->second.packet},
                 trace::DropReason::None, it->second.attempts);
  }
  transmit_acked_attempt(packet_id);
}

void MeshNode::finish_acked(std::uint16_t packet_id, bool success) {
  const auto it = pending_acks_.find(packet_id);
  if (it == pending_acks_.end()) return;
  if (it->second.timer != 0) sim_.cancel(it->second.timer);
  if (tracer_ != nullptr) {
    trace_packet(success ? trace::EventKind::AckedConfirmed
                         : trace::EventKind::Drop,
                 Packet{it->second.packet},
                 success ? trace::DropReason::None
                         : trace::DropReason::RetriesExhausted);
  }
  SendCallback done = std::move(it->second.done);
  pending_acks_.erase(it);
  if (success) {
    stats_.acked_confirmed++;
  } else {
    stats_.acked_failed++;
  }
  if (done) done(success);
}

bool MeshNode::acked_seen_before(Address origin, std::uint16_t packet_id) {
  const auto key = std::pair{origin, packet_id};
  if (acked_seen_.contains(key)) return true;
  acked_seen_.insert(key);
  acked_seen_order_.push_back(key);
  while (acked_seen_order_.size() > config_.acked_dedup_cache) {
    acked_seen_.erase(acked_seen_order_.front());
    acked_seen_order_.pop_front();
  }
  return false;
}

bool MeshNode::send_reliable(Address destination, std::vector<std::uint8_t> payload,
                             SendCallback done, trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (tracer_ != nullptr) {
      trace_refusal(PacketType::Sync, destination, payload.size(), reason);
    }
    return false;
  };
  if (!running_) return refuse(trace::DropReason::NotRunning);
  if (destination == address_ || destination == kUnassigned ||
      destination == kBroadcast) {
    return refuse(trace::DropReason::InvalidDestination);
  }
  if (payload.empty() ||
      payload.size() > config_.max_fragment_payload * 0xFFFFULL) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  if (!table_.has_route(destination)) {
    stats_.dropped_no_route++;
    return refuse(trace::DropReason::NoRoute);
  }
  // Allocate a transfer sequence number free for this destination.
  std::optional<std::uint8_t> seq;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t candidate = next_transfer_seq_++;
    if (!tx_sessions_.contains({destination, candidate})) {
      seq = candidate;
      break;
    }
  }
  // 256 concurrent transfers to one peer exhausts the sequence space.
  if (!seq) return refuse(trace::DropReason::SessionLimit);
  stats_.transfers_started++;
  if (tracer_ != nullptr) {
    trace::TraceEvent e;
    e.t_us = sim_.now().us();
    e.node = address_;
    e.kind = trace::EventKind::TransferStart;
    e.packet_type = static_cast<std::uint8_t>(PacketType::Sync);
    e.origin = address_;
    e.final_dst = destination;
    e.packet_id = *seq;
    e.bytes = static_cast<std::uint32_t>(payload.size());
    tracer_->emit(e);
  }
  auto completion = [this, done = std::move(done)](bool success) {
    if (success) {
      stats_.transfers_completed++;
    } else {
      stats_.transfers_failed++;
    }
    if (done) done(success);
  };
  tx_sessions_.emplace(
      SessionKey{destination, *seq},
      std::make_unique<ReliableSender>(sim_, *this, config_, destination, *seq,
                                       std::move(payload), std::move(completion),
                                       rng_.next_u64(), tracer_, address_));
  return true;
}

// --- PacketSink -------------------------------------------------------------------

void MeshNode::submit_control(Packet packet) {
  enqueue(std::move(packet), /*control=*/true);
}

void MeshNode::submit_data(Packet packet) {
  // enqueue() reports a dropped fragment back to its sender session
  // (notify_fragment_progress), so a full queue cannot deadlock the
  // sender's pacing loop; end-to-end repair recovers the payload.
  enqueue(std::move(packet), /*control=*/false);
}

// --- TX pipeline ------------------------------------------------------------------

bool MeshNode::is_control_plane(const Packet& packet) const {
  const PacketType t = link_of(packet).type;
  return t != PacketType::Data && t != PacketType::Fragment &&
         t != PacketType::AckedData;
}

bool MeshNode::enqueue(Packet packet, bool control) {
  if (!running_) return false;
  std::deque<Packet>& queue = control ? control_queue_ : data_queue_;
  if (queue.size() >= config_.max_queue) {
    stats_.dropped_queue_full++;
    if (tracer_ != nullptr) {
      trace_packet(trace::EventKind::QueueDrop, packet,
                   trace::DropReason::QueueFull);
    }
    notify_fragment_progress(packet);
    return false;
  }
  if (tracer_ != nullptr) trace_packet(trace::EventKind::Enqueue, packet);
  queue.push_back(std::move(packet));
  pump();
  return true;
}

void MeshNode::pump() {
  if (!running_ || tx_phase_ != TxPhase::Idle) return;
  if (!current_) {
    if (!control_queue_.empty()) {
      current_ = Outgoing{std::move(control_queue_.front()), 0};
      control_queue_.pop_front();
    } else if (!data_queue_.empty()) {
      current_ = Outgoing{std::move(data_queue_.front()), 0};
      data_queue_.pop_front();
    } else {
      return;
    }
  }
  const Duration airtime = phy::time_on_air(
      radio_.modulation(), encoded_size(current_->packet));
  const TimePoint now = sim_.now();
  if (!duty_.allowed(now, airtime)) {
    stats_.duty_cycle_delays++;
    tx_phase_ = TxPhase::WaitingDuty;
    const TimePoint when = duty_.next_allowed(now, airtime);
    if (tracer_ != nullptr) {
      trace_packet(trace::EventKind::DutyDefer, current_->packet,
                   trace::DropReason::None, (when - now).us(),
                   duty_.utilization(now));
    }
    pipeline_timer_ = sim_.schedule_at(when, [this] {
      pipeline_timer_ = 0;
      tx_phase_ = TxPhase::Idle;
      pump();
    });
    return;
  }
  if (radio_.state() == radio::RadioState::Sleep) radio_.standby();
  if (config_.use_cad) {
    // Soft carrier sense first: if a frame is already inbound, starting CAD
    // would abort its reception (the SX127x cannot CAD and receive at
    // once). Back off without leaving Rx instead.
    if (radio_.medium_busy()) {
      channel_busy_backoff();
      return;
    }
    tx_phase_ = TxPhase::Cad;
    const bool started = radio_.start_cad();
    LM_ASSERT(started);
  } else {
    transmit_now();
  }
}

void MeshNode::channel_busy_backoff() {
  LM_ASSERT(current_.has_value());
  stats_.cad_busy_events++;
  current_->cad_attempts++;
  if (tracer_ != nullptr) {
    trace_packet(trace::EventKind::CadBusy, current_->packet,
                 trace::DropReason::None, current_->cad_attempts);
  }
  if (current_->cad_attempts > config_.max_cad_retries) {
    // The channel never cleared; transmitting anyway beats starving, and the
    // capture effect may still save one of the colliding frames.
    stats_.forced_transmissions++;
    if (tracer_ != nullptr) {
      trace_packet(trace::EventKind::ForcedTx, current_->packet);
    }
    transmit_now();
    return;
  }
  tx_phase_ = TxPhase::Backoff;
  resume_radio();  // keep listening (schedule permitting) while backing off
  const int exponent = std::min(current_->cad_attempts, 6);
  Duration window = config_.backoff_base * (std::int64_t{1} << exponent);
  if (window > config_.backoff_max) window = config_.backoff_max;
  const Duration delay = Duration::from_seconds(
      rng_.uniform(0.0, std::max(window.seconds_d(), 1e-4)));
  pipeline_timer_ = sim_.schedule_after(delay, [this] {
    pipeline_timer_ = 0;
    tx_phase_ = TxPhase::Idle;
    pump();
  });
}

void MeshNode::on_cad_done(bool channel_active) {
  if (!running_) {
    radio_.sleep();
    return;
  }
  LM_ASSERT(tx_phase_ == TxPhase::Cad);
  LM_ASSERT(current_.has_value());
  if (!channel_active) {
    transmit_now();
    return;
  }
  channel_busy_backoff();
}

void MeshNode::transmit_now() {
  LM_ASSERT(current_.has_value());
  Packet& packet = current_->packet;
  LinkHeader& link = link_of(packet);
  if (link.dst == kUnassigned) {
    // Late next-hop resolution: routes may have changed while queued.
    const RouteHeader* route = route_of(packet);
    LM_ASSERT(route != nullptr);
    const auto next = table_.next_hop(route->final_dst);
    if (!next) {
      stats_.dropped_no_route++;
      if (tracer_ != nullptr) {
        trace_packet(trace::EventKind::Drop, packet,
                     trace::DropReason::NoRoute);
      }
      notify_fragment_progress(packet);
      current_.reset();
      tx_phase_ = TxPhase::Idle;
      resume_radio();
      pump();
      return;
    }
    link.dst = *next;
  }
  std::vector<std::uint8_t> frame = encode(packet);
  const Duration airtime = phy::time_on_air(radio_.modulation(), frame.size());
  if (is_control_plane(packet)) {
    stats_.control_bytes_sent += frame.size();
    stats_.control_airtime += airtime;
  } else {
    stats_.data_bytes_sent += frame.size();
    stats_.data_airtime += airtime;
    if (std::holds_alternative<FragmentPacket>(packet)) stats_.fragments_sent++;
  }
  duty_.record(sim_.now(), airtime);
  tx_phase_ = TxPhase::Transmitting;
  if (Logger::instance().enabled(LogLevel::Trace)) {
    LM_TRACE(kTag, "%s tx %s", to_string(address_).c_str(),
             describe(packet).c_str());
  }
  // MeshTx must directly precede the radio handoff: the channel emits
  // TxStart at the same timestamp, and the analyzer pairs the two adjacent
  // events to map tx_seq onto the packet identity.
  if (tracer_ != nullptr) {
    trace_packet(trace::EventKind::MeshTx, packet, trace::DropReason::None,
                 airtime.us());
  }
  const bool started = radio_.transmit(std::move(frame));
  LM_ASSERT(started);
}

void MeshNode::on_tx_done() {
  LM_ASSERT(tx_phase_ == TxPhase::Transmitting);
  LM_ASSERT(current_.has_value());
  tx_phase_ = TxPhase::Idle;
  const Outgoing sent = std::move(*current_);
  current_.reset();
  if (!running_) {
    radio_.sleep();
    return;
  }
  resume_radio();
  notify_fragment_progress(sent.packet);
  gc_sessions();
  pump();
}

void MeshNode::notify_fragment_progress(const Packet& packet) {
  const auto* fragment = std::get_if<FragmentPacket>(&packet);
  if (fragment == nullptr || fragment->route.origin != address_) return;
  const auto it = tx_sessions_.find({fragment->route.final_dst, fragment->seq});
  if (it != tx_sessions_.end()) it->second->on_fragment_transmitted(fragment->index);
}

// --- RX pipeline -------------------------------------------------------------------

void MeshNode::on_frame_received(const std::vector<std::uint8_t>& frame,
                                 const radio::FrameMeta& meta) {
  if (!running_) return;
  auto decoded = decode(frame);
  if (!decoded) {
    stats_.malformed_frames++;
    if (tracer_ != nullptr) {
      trace::TraceEvent e;
      e.t_us = sim_.now().us();
      e.node = address_;
      e.kind = trace::EventKind::Drop;
      e.reason = trace::DropReason::Malformed;
      e.bytes = static_cast<std::uint32_t>(frame.size());
      tracer_->emit(e);
    }
    return;
  }
  const LinkHeader& link = link_of(*decoded);
  if (link.src == address_) return;  // own echo; cannot happen on real radios

  // Smoothed per-neighbor link quality, fed by every frame we decode from
  // them (the receive-side SNR the SX127x reports per packet).
  if (link.src != kUnassigned && link.src != kBroadcast) {
    const double margin =
        meta.snr_db - phy::snr_floor_db(radio_.modulation().sf);
    const auto it = neighbor_snr_margin_.find(link.src);
    if (it == neighbor_snr_margin_.end()) {
      neighbor_snr_margin_.emplace(link.src, margin);
    } else {
      it->second += config_.snr_ewma_alpha * (margin - it->second);
    }
  }
  if (link.dst != address_ && link.dst != kBroadcast) {
    stats_.foreign_frames++;  // overheard unicast addressed elsewhere
    return;
  }
  if (Logger::instance().enabled(LogLevel::Trace)) {
    LM_TRACE(kTag, "%s rx %s", to_string(address_).c_str(),
             describe(*decoded).c_str());
  }
  if (tracer_ != nullptr) {
    trace_packet(trace::EventKind::RxFrame, *decoded, trace::DropReason::None,
                 0, meta.snr_db);
  }
  handle_packet(std::move(*decoded));
}

void MeshNode::handle_packet(Packet packet) {
  if (const auto* routing = std::get_if<RoutingPacket>(&packet)) {
    handle_routing(*routing);
    return;
  }
  const RouteHeader* route = route_of(packet);
  LM_ASSERT(route != nullptr);
  if (route->final_dst == kBroadcast) {
    // Single-hop broadcast datagram: deliver, never forward.
    if (const auto* data = std::get_if<DataPacket>(&packet)) {
      stats_.broadcasts_delivered++;
      if (tracer_ != nullptr) trace_packet(trace::EventKind::Deliver, packet);
      if (broadcast_handler_) broadcast_handler_(route->origin, data->payload);
    }
    return;
  }
  if (route->final_dst == address_) {
    consume(std::move(packet));
  } else {
    forward(std::move(packet));
  }
}

void MeshNode::handle_routing(const RoutingPacket& packet) {
  stats_.beacons_received++;
  if (config_.require_link_quality) {
    const auto margin = neighbor_snr_margin_db(packet.link.src);
    if (!margin || *margin < config_.min_snr_margin_db) {
      // Too weak to rely on: never let this neighbor become a next hop.
      // Existing routes through it stop being refreshed and age out.
      stats_.beacons_ignored_low_quality++;
      return;
    }
  }
  if (table_.apply_beacon(packet.link.src, packet.entries, sim_.now())) {
    stats_.routing_changes++;
  }
}

std::optional<double> MeshNode::neighbor_snr_margin_db(Address neighbor) const {
  const auto it = neighbor_snr_margin_.find(neighbor);
  if (it == neighbor_snr_margin_.end()) return std::nullopt;
  return it->second;
}

std::size_t MeshNode::max_datagram_payload() const {
  return max_frame_bytes_ - kLinkHeaderSize - kRouteHeaderSize;
}

void MeshNode::dispatch_to_sender(Address peer, std::uint8_t seq,
                                  const std::function<void(ReliableSender&)>& fn) {
  const auto it = tx_sessions_.find({peer, seq});
  if (it == tx_sessions_.end()) return;  // stale control for a finished transfer
  fn(*it->second);
  gc_sessions();
}

void MeshNode::consume(Packet packet) {
  std::visit(
      [this, &packet](auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, DataPacket>) {
          stats_.datagrams_delivered++;
          if (tracer_ != nullptr) {
            trace_packet(trace::EventKind::Deliver, packet);
          }
          if (datagram_handler_) {
            // route.hops counts forwards; the app sees links traversed.
            datagram_handler_(p.route.origin, p.payload,
                              static_cast<std::uint8_t>(p.route.hops + 1));
          }
        } else if constexpr (std::is_same_v<T, SyncPacket>) {
          const SessionKey key{p.route.origin, p.seq};
          auto it = rx_sessions_.find(key);
          if (it != rx_sessions_.end() && it->second->expired()) {
            rx_sessions_.erase(it);
            it = rx_sessions_.end();
          }
          if (it != rx_sessions_.end()) {
            it->second->on_sync(p);
            return;
          }
          if (p.fragment_count == 0) return;  // malformed announcement
          if (rx_sessions_.size() >= config_.max_rx_sessions) {
            gc_sessions();  // expired sessions may be holding slots
          }
          if (rx_sessions_.size() >= config_.max_rx_sessions) {
            stats_.rx_sessions_rejected++;
            if (tracer_ != nullptr) {
              trace_packet(trace::EventKind::Drop, packet,
                           trace::DropReason::SessionLimit);
            }
            return;  // no SYNC_ACK: the sender will retry and may find room
          }
          auto delivery = [this, seq = p.seq](Address origin,
                                              std::vector<std::uint8_t> payload) {
            stats_.transfers_received++;
            if (tracer_ != nullptr) {
              trace::TraceEvent e;
              e.t_us = sim_.now().us();
              e.node = address_;
              e.kind = trace::EventKind::Deliver;
              e.packet_type = static_cast<std::uint8_t>(PacketType::Sync);
              e.origin = origin;
              e.final_dst = address_;
              e.packet_id = seq;
              e.bytes = static_cast<std::uint32_t>(payload.size());
              tracer_->emit(e);
            }
            if (reliable_handler_) reliable_handler_(origin, std::move(payload));
          };
          rx_sessions_.emplace(
              key, std::make_unique<ReliableReceiver>(
                       sim_, *this, config_, p.route.origin, p,
                       std::move(delivery), tracer_, address_));
        } else if constexpr (std::is_same_v<T, FragmentPacket>) {
          const auto it = rx_sessions_.find(SessionKey{p.route.origin, p.seq});
          if (it != rx_sessions_.end()) it->second->on_fragment(p);
        } else if constexpr (std::is_same_v<T, PollPacket>) {
          const auto it = rx_sessions_.find(SessionKey{p.route.origin, p.seq});
          if (it != rx_sessions_.end()) it->second->on_poll();
        } else if constexpr (std::is_same_v<T, SyncAckPacket>) {
          dispatch_to_sender(p.route.origin, p.seq,
                             [](ReliableSender& s) { s.on_sync_ack(); });
        } else if constexpr (std::is_same_v<T, LostPacket>) {
          dispatch_to_sender(p.route.origin, p.seq,
                             [&p](ReliableSender& s) { s.on_lost(p.missing); });
        } else if constexpr (std::is_same_v<T, DonePacket>) {
          dispatch_to_sender(p.route.origin, p.seq,
                             [](ReliableSender& s) { s.on_done(); });
        } else if constexpr (std::is_same_v<T, AckedDataPacket>) {
          // Acknowledge first — even duplicates, since a duplicate means
          // our previous ACK was lost somewhere on the way back.
          AckPacket ack;
          ack.link = LinkHeader{kUnassigned, address_, PacketType::Ack};
          ack.route = make_route(p.route.origin);
          ack.acked_id = p.route.packet_id;
          stats_.acks_sent++;
          if (tracer_ != nullptr) {
            trace_packet(trace::EventKind::AckSent, packet);
          }
          submit_control(Packet{ack});
          if (acked_seen_before(p.route.origin, p.route.packet_id)) {
            stats_.acked_duplicates++;
            if (tracer_ != nullptr) {
              trace_packet(trace::EventKind::DuplicateDeliver, packet,
                           trace::DropReason::Duplicate);
            }
            return;
          }
          stats_.acked_delivered++;
          if (tracer_ != nullptr) {
            trace_packet(trace::EventKind::Deliver, packet);
          }
          if (datagram_handler_) {
            datagram_handler_(p.route.origin, p.payload,
                              static_cast<std::uint8_t>(p.route.hops + 1));
          }
        } else if constexpr (std::is_same_v<T, AckPacket>) {
          const auto it = pending_acks_.find(p.acked_id);
          if (it != pending_acks_.end() &&
              it->second.packet.route.final_dst == p.route.origin) {
            finish_acked(p.acked_id, true);
          }
        } else if constexpr (std::is_same_v<T, RoutingPacket>) {
          LM_ASSERT(false);  // handled before consume()
        }
      },
      packet);
}

void MeshNode::forward(Packet packet) {
  RouteHeader* route = route_of(packet);
  LM_ASSERT(route != nullptr);
  if (route->ttl <= 1) {
    stats_.dropped_ttl++;
    if (tracer_ != nullptr) {
      trace_packet(trace::EventKind::Drop, packet,
                   trace::DropReason::TtlExpired);
    }
    return;
  }
  if (!table_.has_route(route->final_dst)) {
    stats_.dropped_no_route++;
    if (tracer_ != nullptr) {
      trace_packet(trace::EventKind::Drop, packet, trace::DropReason::NoRoute);
    }
    return;
  }
  route->ttl--;
  route->hops++;
  LinkHeader& link = link_of(packet);
  link.src = address_;
  link.dst = kUnassigned;  // resolved at transmit time
  stats_.packets_forwarded++;
  if (tracer_ != nullptr) trace_packet(trace::EventKind::Forward, packet);
  const bool control = is_control_plane(packet);
  if (config_.forward_jitter > Duration::zero()) {
    const Duration delay = Duration::from_seconds(
        rng_.uniform(0.0, config_.forward_jitter.seconds_d()));
    sim_.schedule_after(delay, [this, control, p = std::move(packet)]() mutable {
      if (running_) enqueue(std::move(p), control);
    });
  } else {
    enqueue(std::move(packet), control);
  }
}

// --- Beacons & maintenance ------------------------------------------------------------

void MeshNode::schedule_next_beacon(bool first) {
  Duration delay;
  if (first) {
    delay = Duration::from_seconds(
        rng_.uniform(0.0, config_.hello_interval.seconds_d()));
  } else if (config_.hello_jitter > 0.0) {
    delay = config_.hello_interval *
            rng_.uniform(1.0 - config_.hello_jitter, 1.0 + config_.hello_jitter);
  } else {
    delay = config_.hello_interval;
  }
  beacon_timer_ = sim_.schedule_after(delay, [this] {
    beacon_timer_ = 0;
    send_beacon();
  });
}

void MeshNode::send_beacon() {
  if (!running_) return;
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, address_, PacketType::Routing};
  p.entries = table_.advertisement();
  // Dwell rule: trim the advertisement (farthest destinations first — the
  // list is sorted by address, so re-trim via encoded size from the back).
  while (!p.entries.empty() &&
         kLinkHeaderSize + 1 + 4 * p.entries.size() > max_frame_bytes_) {
    p.entries.pop_back();
  }
  stats_.beacons_sent++;
  enqueue(Packet{std::move(p)}, /*control=*/true);
  schedule_next_beacon(/*first=*/false);
}

void MeshNode::gc_sessions() {
  for (auto it = tx_sessions_.begin(); it != tx_sessions_.end();) {
    if (it->second->finished()) {
      // Final accounting before the session disappears.
      stats_.fragments_retransmitted += it->second->fragments_retransmitted();
      it = tx_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(rx_sessions_, [](const auto& kv) { return kv.second->expired(); });
}

}  // namespace lm::net
