#include "net/mesh_node.h"

#include <utility>
#include <variant>

#include "net/distance_vector_strategy.h"
#include "support/assert.h"

namespace lm::net {

namespace {

// Contract checks run before any layer construction (the link layer's dwell
// fit assumes a sane config).
MeshConfig validated(const MeshConfig& config, Address address) {
  LM_REQUIRE(address != kUnassigned && address != kBroadcast);
  LM_REQUIRE(config.hello_interval > Duration::zero());
  LM_REQUIRE(config.route_timeout_intervals >= 2);
  LM_REQUIRE(config.max_fragment_payload >= 1 &&
             config.max_fragment_payload <= kMaxFragmentPayload);
  LM_REQUIRE(config.rx_duty > 0.0 && config.rx_duty <= 1.0);
  LM_REQUIRE(config.rx_cycle_period > Duration::zero());
  return config;
}

std::unique_ptr<RoutingStrategy> default_strategy(
    std::unique_ptr<RoutingStrategy> strategy) {
  if (strategy != nullptr) return strategy;
  return std::make_unique<DistanceVectorStrategy>();
}

}  // namespace

MeshNode::MeshNode(sim::Simulator& sim, radio::Radio& radio, Address address,
                   MeshConfig config, std::uint64_t seed,
                   std::unique_ptr<RoutingStrategy> strategy)
    : radio_(radio),
      ctx_{sim,           address, validated(config, address),
           Rng(seed),     NodeStats{},
           /*tracer=*/nullptr,     /*running=*/false},
      link_(ctx_, radio,
            LinkLayer::Callbacks{
                [this](const RouteHeader& route) {
                  return network_.resolve_next_hop(route);
                },
                [this](Packet packet) { network_.on_packet(std::move(packet)); },
                [this](const Packet& packet) {
                  transport_.notify_fragment_progress(packet);
                  transport_.gc_sessions();
                },
                [this](const Packet& packet) {
                  transport_.notify_fragment_progress(packet);
                }}),
      network_(ctx_, link_, default_strategy(std::move(strategy)),
               [this](Packet packet) { deliver(std::move(packet)); }),
      transport_(ctx_, link_, network_,
                 TransportLayer::Delivery{
                     [this](Address origin,
                            const std::vector<std::uint8_t>& payload,
                            std::uint8_t hops) {
                       if (datagram_handler_) datagram_handler_(origin, payload, hops);
                     },
                     [this](Address origin, std::vector<std::uint8_t> payload) {
                       if (reliable_handler_) reliable_handler_(origin, std::move(payload));
                     }}) {}

MeshNode::~MeshNode() {
  if (maintenance_timer_ != 0) ctx_.sim.cancel(maintenance_timer_);
}

// --- Lifecycle ----------------------------------------------------------------

void MeshNode::start() {
  LM_REQUIRE(!ctx_.running);
  ctx_.running = true;
  link_.enter_receive();
  network_.start();
  start_maintenance_loop();
  link_.schedule_rx_cycle();
  if (ctx_.tracer != nullptr) {
    ctx_.trace_lifecycle(trace::EventKind::NodeUp);
  }
}

void MeshNode::stop() {
  if (!ctx_.running) return;
  ctx_.running = false;
  if (ctx_.tracer != nullptr) {
    ctx_.trace_lifecycle(trace::EventKind::NodeDown);
  }
  network_.stop();
  if (maintenance_timer_ != 0) {
    ctx_.sim.cancel(maintenance_timer_);
    maintenance_timer_ = 0;
  }
  link_.cancel_timers();
  link_.clear_queues();
  transport_.shutdown();
  link_.settle_radio();
}

void MeshNode::start_maintenance_loop() {
  maintenance_timer_ =
      ctx_.sim.schedule_after(ctx_.config.maintenance_interval, [this] {
        maintenance_timer_ = 0;
        if (!ctx_.running) return;
        network_.table().expire(ctx_.sim.now());
        transport_.gc_sessions();
        start_maintenance_loop();
      });
}

void MeshNode::set_tracer(trace::Tracer* tracer) {
  ctx_.tracer = tracer;
  if (tracer == nullptr) {
    network_.table().set_observer(nullptr);
    return;
  }
  network_.table().set_observer([this](const RouteEntry& entry) {
    if (ctx_.tracer == nullptr) return;
    trace::TraceEvent e;
    e.t_us = ctx_.sim.now().us();
    e.node = ctx_.address;
    e.kind = trace::EventKind::RouteAdd;
    e.final_dst = entry.destination;
    e.via = entry.via;
    e.bytes = entry.metric;
    ctx_.tracer->emit(e);
  });
}

// --- Application API ------------------------------------------------------------

RouteHeader MeshNode::make_route(Address final_dst) {
  return network_.make_route(final_dst);
}

bool MeshNode::send_datagram(Address destination,
                             std::vector<std::uint8_t> payload,
                             trace::DropReason* why) {
  return network_.send_datagram(destination, std::move(payload), why);
}

bool MeshNode::send_broadcast(std::vector<std::uint8_t> payload,
                              trace::DropReason* why) {
  return network_.send_broadcast(std::move(payload), why);
}

bool MeshNode::send_acked(Address destination, std::vector<std::uint8_t> payload,
                          SendCallback done, trace::DropReason* why) {
  return transport_.send_acked(destination, std::move(payload), std::move(done),
                               why);
}

bool MeshNode::send_reliable(Address destination,
                             std::vector<std::uint8_t> payload,
                             SendCallback done, trace::DropReason* why) {
  return transport_.send_reliable(destination, std::move(payload),
                                  std::move(done), why);
}

// --- PacketSink -------------------------------------------------------------------

void MeshNode::submit_control(Packet packet) {
  transport_.submit_control(std::move(packet));
}

void MeshNode::submit_data(Packet packet) {
  transport_.submit_data(std::move(packet));
}

// --- Delivery dispatch ------------------------------------------------------------

void MeshNode::deliver(Packet packet) {
  if (const auto* data = std::get_if<DataPacket>(&packet)) {
    if (data->route.final_dst == kBroadcast) {
      ctx_.stats.broadcasts_delivered++;
      if (ctx_.tracer != nullptr) {
        ctx_.trace_packet(trace::EventKind::Deliver, packet);
      }
      if (broadcast_handler_) broadcast_handler_(data->route.origin, data->payload);
    } else {
      ctx_.stats.datagrams_delivered++;
      if (ctx_.tracer != nullptr) {
        ctx_.trace_packet(trace::EventKind::Deliver, packet);
      }
      if (datagram_handler_) {
        // route.hops counts forwards; the app sees links traversed.
        datagram_handler_(data->route.origin, data->payload,
                          static_cast<std::uint8_t>(data->route.hops + 1));
      }
    }
    return;
  }
  transport_.on_deliver(std::move(packet));
}

}  // namespace lm::net
