#include "net/port_mux.h"

#include "support/assert.h"

namespace lm::net {

PortMux::PortMux(MeshNode& node) : node_(node) {
  node_.set_datagram_handler(
      [this](Address origin, const std::vector<std::uint8_t>& payload,
             std::uint8_t hops) { dispatch(origin, payload, hops); });
}

PortMux::~PortMux() { node_.set_datagram_handler(nullptr); }

void PortMux::open(std::uint8_t port, Handler handler) {
  LM_REQUIRE(handler != nullptr);
  handlers_[port] = std::move(handler);
}

void PortMux::close(std::uint8_t port) { handlers_[port] = nullptr; }

bool PortMux::is_open(std::uint8_t port) const {
  return handlers_[port] != nullptr;
}

bool PortMux::send(Address destination, std::uint8_t port,
                   std::vector<std::uint8_t> payload) {
  if (payload.size() > kMaxPortPayload) return false;
  std::vector<std::uint8_t> framed;
  framed.reserve(payload.size() + 1);
  framed.push_back(port);
  framed.insert(framed.end(), payload.begin(), payload.end());
  return node_.send_datagram(destination, std::move(framed));
}

void PortMux::dispatch(Address origin, const std::vector<std::uint8_t>& payload,
                       std::uint8_t hops) {
  if (payload.empty()) {
    dropped_empty_++;
    return;
  }
  const std::uint8_t port = payload.front();
  if (handlers_[port] == nullptr) {
    dropped_unknown_port_++;
    return;
  }
  delivered_[port]++;
  const std::vector<std::uint8_t> body(payload.begin() + 1, payload.end());
  handlers_[port](origin, body, hops);
}

}  // namespace lm::net
