// FloodingStrategy — controlled flooding over the shared layer stack.
//
// The natural alternative to distance-vector routing on tiny LoRa nodes:
// every node rebroadcasts every new packet once (TTL-limited,
// duplicate-suppressed, with random relay jitter to break relay
// synchronization). No routing state or beacons, paid for in airtime —
// exactly the trade-off E4 quantifies against LoRaMesher. Replaces the old
// standalone baseline::FloodingNode protocol engine; the baseline node is
// now a facade over LinkLayer + NetworkLayer(FloodingStrategy).
//
// Caveat shared with real managed-flood networks (e.g. Meshtastic): the
// (origin, packet_id) dedup cache also suppresses end-to-end
// *retransmissions* that reuse their packet_id, so the ARQ transports are
// only useful over flooding within direct range.
#pragma once

#include <cstdint>
#include <deque>
#include <set>
#include <utility>

#include "net/routing_strategy.h"

namespace lm::net {

struct FloodingStrategyConfig {
  /// Random delay before relaying, desynchronizing parallel relays (the
  /// dominant collision source in flooding).
  Duration rebroadcast_jitter = Duration::milliseconds(500);
  /// Remembered (origin, packet_id) pairs for duplicate suppression.
  std::size_t dedup_cache = 512;
};

class FloodingStrategy final : public RoutingStrategy {
 public:
  explicit FloodingStrategy(FloodingStrategyConfig config = {})
      : config_(config) {}

  const char* name() const override { return "flooding"; }

  /// Flooding reaches whoever is reachable; there is nothing to know ahead
  /// of time, so originations are always admitted.
  bool has_route(Address) const override { return true; }
  bool allows_broadcast_destination() const override { return true; }

  /// No routing plane: beacons from distance-vector nodes sharing the
  /// channel are ignored.
  void on_routing(const RoutingPacket&) override {}
  void handle(Packet packet) override;
  std::optional<Address> resolve_next_hop(const RouteHeader&) override {
    return kBroadcast;  // every transmission is a local broadcast
  }

  std::uint64_t duplicates_suppressed() const { return duplicates_suppressed_; }

 private:
  bool seen_before(Address origin, std::uint16_t packet_id);

  FloodingStrategyConfig config_;
  std::uint64_t duplicates_suppressed_ = 0;
  std::set<std::pair<Address, std::uint16_t>> seen_;
  std::deque<std::pair<Address, std::uint16_t>> seen_order_;
};

}  // namespace lm::net
