// NetworkLayer — origination, routing-table ownership and routed-packet
// dispatch, with the routing policy delegated to a pluggable
// RoutingStrategy (distance-vector by default, controlled flooding for the
// baseline).
//
// Owns the node's single packet-id counter: every originated route header —
// datagrams, broadcasts, ARQ control from the transport layer — is minted
// here, so id sequences are identical to the pre-split monolith.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/layer_context.h"
#include "net/link_layer.h"
#include "net/packet.h"
#include "net/routing_strategy.h"
#include "net/routing_table.h"
#include "trace/trace_event.h"

namespace lm::net {

class NetworkLayer {
 public:
  NetworkLayer(LayerContext& ctx, LinkLayer& link,
               std::unique_ptr<RoutingStrategy> strategy,
               RoutingStrategy::DeliverFn deliver);

  NetworkLayer(const NetworkLayer&) = delete;
  NetworkLayer& operator=(const NetworkLayer&) = delete;

  // --- Lifecycle -------------------------------------------------------------
  void start() { strategy_->start(); }
  void stop() { strategy_->stop(); }

  // --- Origination -----------------------------------------------------------
  /// A fresh route header originated here and bound for `final_dst`.
  RouteHeader make_route(Address final_dst);
  bool send_datagram(Address destination, std::vector<std::uint8_t> payload,
                     trace::DropReason* why);
  bool send_broadcast(std::vector<std::uint8_t> payload,
                      trace::DropReason* why);
  /// Largest application payload one routed datagram may carry.
  std::size_t max_datagram_payload() const {
    return link_.max_frame_bytes() - kLinkHeaderSize - kRouteHeaderSize;
  }

  // --- RX dispatch (from the link layer) --------------------------------------
  void on_packet(Packet packet);
  std::optional<Address> resolve_next_hop(const RouteHeader& route) {
    return strategy_->resolve_next_hop(route);
  }

  // --- Introspection ---------------------------------------------------------
  /// Whether the strategy can currently carry an origination to `dst`
  /// (the transport layer's refusal ladders ask before queuing).
  bool has_route(Address dst) const { return strategy_->has_route(dst); }
  RoutingTable& table() { return table_; }
  const RoutingTable& table() const { return table_; }
  RoutingStrategy& strategy() { return *strategy_; }
  const RoutingStrategy& strategy() const { return *strategy_; }

 private:
  LayerContext& ctx_;
  LinkLayer& link_;
  RoutingTable table_;
  std::unique_ptr<RoutingStrategy> strategy_;
  std::uint16_t next_packet_id_ = 1;
};

}  // namespace lm::net
