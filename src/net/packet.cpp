#include "net/packet.h"

#include <cstdio>

#include "support/assert.h"
#include "support/byte_codec.h"

namespace lm::net {

namespace {

void put_link(ByteWriter& w, const LinkHeader& h) {
  w.u16(h.dst);
  w.u16(h.src);
  w.u8(static_cast<std::uint8_t>(h.type));
}

void put_route(ByteWriter& w, const RouteHeader& h) {
  w.u16(h.final_dst);
  w.u16(h.origin);
  w.u8(h.ttl);
  w.u8(h.hops);
  w.u16(h.packet_id);
}

RouteHeader get_route(ByteReader& r) {
  RouteHeader h;
  h.final_dst = r.u16();
  h.origin = r.u16();
  h.ttl = r.u8();
  h.hops = r.u8();
  h.packet_id = r.u16();
  return h;
}

}  // namespace

std::string role_to_string(Role role) {
  if (role == roles::kNone) return "-";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if (role & roles::kGateway) append("gateway");
  if (role & roles::kSink) append("sink");
  if (role & roles::kRelayOnly) append("relay-only");
  return out;
}

std::string to_string(Address a) {
  if (a == kBroadcast) return "BCAST";
  char buf[8];
  std::snprintf(buf, sizeof buf, "0x%04X", a);
  return buf;
}

const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::Routing: return "ROUTING";
    case PacketType::Data: return "DATA";
    case PacketType::Sync: return "SYNC";
    case PacketType::SyncAck: return "SYNC_ACK";
    case PacketType::Fragment: return "FRAGMENT";
    case PacketType::Lost: return "LOST";
    case PacketType::Done: return "DONE";
    case PacketType::Poll: return "POLL";
    case PacketType::AckedData: return "ACKED_DATA";
    case PacketType::Ack: return "ACK";
  }
  return "UNKNOWN";
}

std::vector<std::uint8_t> encode(const Packet& packet) {
  ByteWriter w;
  std::visit(
      [&w](const auto& p) {
        using T = std::decay_t<decltype(p)>;
        put_link(w, p.link);
        if constexpr (std::is_same_v<T, RoutingPacket>) {
          LM_REQUIRE(p.entries.size() <= kMaxRoutingEntries);
          w.u8(static_cast<std::uint8_t>(p.entries.size()));
          for (const RoutingEntry& e : p.entries) {
            w.u16(e.address);
            w.u8(e.metric);
            w.u8(e.role);
          }
        } else if constexpr (std::is_same_v<T, DataPacket>) {
          LM_REQUIRE(p.payload.size() <= kMaxDataPayload);
          put_route(w, p.route);
          w.bytes(p.payload);
        } else if constexpr (std::is_same_v<T, SyncPacket>) {
          put_route(w, p.route);
          w.u8(p.seq);
          w.u16(p.fragment_count);
          w.u32(p.total_bytes);
        } else if constexpr (std::is_same_v<T, SyncAckPacket> ||
                             std::is_same_v<T, DonePacket> ||
                             std::is_same_v<T, PollPacket>) {
          put_route(w, p.route);
          w.u8(p.seq);
        } else if constexpr (std::is_same_v<T, FragmentPacket>) {
          LM_REQUIRE(p.payload.size() <= kMaxFragmentPayload);
          put_route(w, p.route);
          w.u8(p.seq);
          w.u16(p.index);
          w.bytes(p.payload);
        } else if constexpr (std::is_same_v<T, LostPacket>) {
          LM_REQUIRE(p.missing.size() <= kMaxLostIndices);
          put_route(w, p.route);
          w.u8(p.seq);
          w.u8(static_cast<std::uint8_t>(p.missing.size()));
          for (std::uint16_t idx : p.missing) w.u16(idx);
        } else if constexpr (std::is_same_v<T, AckedDataPacket>) {
          LM_REQUIRE(p.payload.size() <= kMaxDataPayload);
          put_route(w, p.route);
          w.bytes(p.payload);
        } else if constexpr (std::is_same_v<T, AckPacket>) {
          put_route(w, p.route);
          w.u16(p.acked_id);
        } else {
          static_assert(!sizeof(T*), "unhandled packet type");
        }
      },
      packet);
  LM_ASSERT(w.size() <= 255);
  return w.take();
}

std::optional<Packet> decode(const std::vector<std::uint8_t>& frame) {
  ByteReader r(frame);
  LinkHeader link;
  link.dst = r.u16();
  link.src = r.u16();
  const std::uint8_t raw_type = r.u8();
  if (!r.ok()) return std::nullopt;
  if (raw_type < static_cast<std::uint8_t>(PacketType::Routing) ||
      raw_type > static_cast<std::uint8_t>(PacketType::Ack)) {
    return std::nullopt;
  }
  link.type = static_cast<PacketType>(raw_type);

  switch (link.type) {
    case PacketType::Routing: {
      RoutingPacket p;
      p.link = link;
      const std::uint8_t n = r.u8();
      for (std::uint8_t i = 0; i < n; ++i) {
        RoutingEntry e;
        e.address = r.u16();
        e.metric = r.u8();
        e.role = r.u8();
        p.entries.push_back(e);
      }
      if (!r.exhausted()) return std::nullopt;
      return Packet{std::move(p)};
    }
    case PacketType::Data: {
      DataPacket p;
      p.link = link;
      p.route = get_route(r);
      if (!r.ok()) return std::nullopt;
      p.payload = r.rest();
      return Packet{std::move(p)};
    }
    case PacketType::Sync: {
      SyncPacket p;
      p.link = link;
      p.route = get_route(r);
      p.seq = r.u8();
      p.fragment_count = r.u16();
      p.total_bytes = r.u32();
      if (!r.exhausted()) return std::nullopt;
      return Packet{p};
    }
    case PacketType::SyncAck: {
      SyncAckPacket p;
      p.link = link;
      p.route = get_route(r);
      p.seq = r.u8();
      if (!r.exhausted()) return std::nullopt;
      return Packet{p};
    }
    case PacketType::Fragment: {
      FragmentPacket p;
      p.link = link;
      p.route = get_route(r);
      p.seq = r.u8();
      p.index = r.u16();
      if (!r.ok()) return std::nullopt;
      p.payload = r.rest();
      return Packet{std::move(p)};
    }
    case PacketType::Lost: {
      LostPacket p;
      p.link = link;
      p.route = get_route(r);
      p.seq = r.u8();
      const std::uint8_t n = r.u8();
      for (std::uint8_t i = 0; i < n; ++i) p.missing.push_back(r.u16());
      if (!r.exhausted()) return std::nullopt;
      return Packet{std::move(p)};
    }
    case PacketType::Done: {
      DonePacket p;
      p.link = link;
      p.route = get_route(r);
      p.seq = r.u8();
      if (!r.exhausted()) return std::nullopt;
      return Packet{p};
    }
    case PacketType::Poll: {
      PollPacket p;
      p.link = link;
      p.route = get_route(r);
      p.seq = r.u8();
      if (!r.exhausted()) return std::nullopt;
      return Packet{p};
    }
    case PacketType::AckedData: {
      AckedDataPacket p;
      p.link = link;
      p.route = get_route(r);
      if (!r.ok()) return std::nullopt;
      p.payload = r.rest();
      return Packet{std::move(p)};
    }
    case PacketType::Ack: {
      AckPacket p;
      p.link = link;
      p.route = get_route(r);
      p.acked_id = r.u16();
      if (!r.exhausted()) return std::nullopt;
      return Packet{p};
    }
  }
  return std::nullopt;
}

const LinkHeader& link_of(const Packet& packet) {
  return std::visit([](const auto& p) -> const LinkHeader& { return p.link; }, packet);
}

LinkHeader& link_of(Packet& packet) {
  return std::visit([](auto& p) -> LinkHeader& { return p.link; }, packet);
}

const RouteHeader* route_of(const Packet& packet) {
  return std::visit(
      [](const auto& p) -> const RouteHeader* {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, RoutingPacket>) {
          return nullptr;
        } else {
          return &p.route;
        }
      },
      packet);
}

RouteHeader* route_of(Packet& packet) {
  return const_cast<RouteHeader*>(route_of(static_cast<const Packet&>(packet)));
}

std::size_t encoded_size(const Packet& packet) {
  return std::visit(
      [](const auto& p) -> std::size_t {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, RoutingPacket>) {
          return kLinkHeaderSize + 1 + 4 * p.entries.size();
        } else if constexpr (std::is_same_v<T, DataPacket>) {
          return kLinkHeaderSize + kRouteHeaderSize + p.payload.size();
        } else if constexpr (std::is_same_v<T, SyncPacket>) {
          return kLinkHeaderSize + kRouteHeaderSize + 7;
        } else if constexpr (std::is_same_v<T, FragmentPacket>) {
          return kLinkHeaderSize + kRouteHeaderSize + 3 + p.payload.size();
        } else if constexpr (std::is_same_v<T, LostPacket>) {
          return kLinkHeaderSize + kRouteHeaderSize + 2 + 2 * p.missing.size();
        } else if constexpr (std::is_same_v<T, AckedDataPacket>) {
          return kLinkHeaderSize + kRouteHeaderSize + p.payload.size();
        } else if constexpr (std::is_same_v<T, AckPacket>) {
          return kLinkHeaderSize + kRouteHeaderSize + 2;
        } else {
          // SyncAck / Done / Poll carry route header + seq.
          return kLinkHeaderSize + kRouteHeaderSize + 1;
        }
      },
      packet);
}

std::string describe(const Packet& packet) {
  const LinkHeader& l = link_of(packet);
  const RouteHeader* r = route_of(packet);
  char buf[160];
  if (r != nullptr) {
    std::snprintf(buf, sizeof buf, "%s %s->%s (end-to-end %s->%s ttl=%u id=%u) %zuB",
                  to_string(l.type), to_string(l.src).c_str(),
                  to_string(l.dst).c_str(), to_string(r->origin).c_str(),
                  to_string(r->final_dst).c_str(), r->ttl, r->packet_id,
                  encoded_size(packet));
  } else {
    std::snprintf(buf, sizeof buf, "%s %s->broadcast %zuB", to_string(l.type),
                  to_string(l.src).c_str(), encoded_size(packet));
  }
  return buf;
}

bool is_control_plane(const Packet& packet) {
  const PacketType t = link_of(packet).type;
  return t != PacketType::Data && t != PacketType::Fragment &&
         t != PacketType::AckedData;
}

}  // namespace lm::net
