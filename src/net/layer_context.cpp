#include "net/layer_context.h"

namespace lm::net {

void LayerContext::trace_packet(trace::EventKind kind, const Packet& packet,
                                trace::DropReason reason, std::int64_t aux_us,
                                double value) {
  trace::TraceEvent e;
  e.t_us = sim.now().us();
  e.node = address;
  e.kind = kind;
  e.reason = reason;
  const LinkHeader& link = link_of(packet);
  e.packet_type = static_cast<std::uint8_t>(link.type);
  e.via = link.dst;
  if (const RouteHeader* route = route_of(packet)) {
    e.origin = route->origin;
    e.final_dst = route->final_dst;
    e.hops = route->hops;
    e.ttl = route->ttl;
    e.packet_id = route->packet_id;
  } else {
    e.origin = link.src;  // routing beacons carry no route header
  }
  e.bytes = static_cast<std::uint32_t>(encoded_size(packet));
  e.aux_us = aux_us;
  e.value = value;
  tracer->emit(e);
}

void LayerContext::trace_refusal(PacketType type, Address dst,
                                 std::size_t bytes, trace::DropReason reason) {
  trace::TraceEvent e;
  e.t_us = sim.now().us();
  e.node = address;
  e.kind = trace::EventKind::Drop;
  e.reason = reason;
  e.packet_type = static_cast<std::uint8_t>(type);
  e.origin = address;
  e.final_dst = dst;
  e.bytes = static_cast<std::uint32_t>(bytes);
  tracer->emit(e);
}

void LayerContext::trace_lifecycle(trace::EventKind kind) {
  trace::TraceEvent e;
  e.t_us = sim.now().us();
  e.node = address;
  e.kind = kind;
  tracer->emit(e);
}

}  // namespace lm::net
