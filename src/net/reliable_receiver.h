// Receiver side of the reliable large-payload transfer.
//
// Created on the first SYNC from (origin, seq). Acknowledges the SYNC,
// collects fragments, and drives repair: when the fragment stream goes
// silent while pieces are missing, it sends a LOST packet listing (a prefix
// of) the missing indices; when everything arrived it sends DONE and hands
// the reassembled payload up. DONE is re-sent in response to POLLs and
// duplicate fragments, because the sender may have missed it. The session
// lingers after completion so late POLLs still get DONE instead of
// resurrecting a transfer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/config.h"
#include "net/packet.h"
#include "net/packet_sink.h"
#include "sim/simulator.h"
#include "trace/trace_sink.h"

namespace lm::net {

class ReliableReceiver {
 public:
  /// Delivery callback: the reassembled payload from `origin`.
  using Delivery = std::function<void(Address origin, std::vector<std::uint8_t> payload)>;

  /// `tracer`/`trace_node` attach the owning node's flight recorder; the
  /// session reports its start and every LOST repair request.
  ReliableReceiver(sim::Simulator& sim, PacketSink& sink, const MeshConfig& config,
                   Address origin, const SyncPacket& sync, Delivery delivery,
                   trace::Tracer* tracer = nullptr, std::uint16_t trace_node = 0);
  ~ReliableReceiver();

  ReliableReceiver(const ReliableReceiver&) = delete;
  ReliableReceiver& operator=(const ReliableReceiver&) = delete;

  // --- Events fed by the owning node ---------------------------------------
  void on_sync(const SyncPacket& sync);  // duplicate SYNC (ack was lost)
  void on_fragment(const FragmentPacket& fragment);
  void on_poll();

  // --- Introspection ---------------------------------------------------------
  /// True once the session should be garbage-collected (completed and
  /// lingered out, or abandoned).
  bool expired() const { return expired_; }
  bool complete() const { return received_count_ == fragment_count_; }
  Address origin() const { return origin_; }
  std::uint8_t seq() const { return seq_; }
  std::uint16_t fragment_count() const { return fragment_count_; }
  std::uint16_t received_count() const { return received_count_; }
  std::uint64_t duplicate_fragments() const { return duplicate_fragments_; }
  std::uint64_t lost_requests_sent() const { return lost_requests_sent_; }

 private:
  void trace_session(trace::EventKind kind, std::uint32_t bytes);
  void send_sync_ack();
  void send_done();
  void send_lost();
  void restart_gap_timer();
  void on_gap_timeout();
  void on_session_timeout();
  void complete_transfer();
  std::vector<std::uint16_t> missing_indices(std::size_t cap) const;

  sim::Simulator& sim_;
  PacketSink& sink_;
  const MeshConfig& config_;
  const Address origin_;
  const std::uint8_t seq_;
  std::uint16_t fragment_count_ = 0;
  std::uint32_t total_bytes_ = 0;

  std::vector<std::vector<std::uint8_t>> fragments_;
  std::vector<bool> have_;
  std::uint16_t received_count_ = 0;
  bool delivered_ = false;
  bool expired_ = false;
  std::uint64_t duplicate_fragments_ = 0;
  std::uint64_t lost_requests_sent_ = 0;

  sim::TimerId gap_timer_ = 0;
  sim::TimerId session_timer_ = 0;
  Delivery delivery_;
  trace::Tracer* tracer_ = nullptr;
  std::uint16_t trace_node_ = 0;
};

}  // namespace lm::net
