#include "net/link_layer.h"

#include <algorithm>

#include "phy/airtime.h"
#include "support/assert.h"
#include "support/log.h"

namespace lm::net {

namespace {
constexpr const char* kTag = "mesh";
}

LinkLayer::LinkLayer(LayerContext& ctx, radio::Radio& radio,
                     Callbacks callbacks)
    : ctx_(ctx),
      radio_(radio),
      callbacks_(std::move(callbacks)),
      duty_(ctx.config.duty_cycle_limit, ctx.config.duty_cycle_window) {
  // US915-style dwell rule: cap the frame size so every transmission fits,
  // and shrink reliable-transfer fragments to match.
  max_frame_bytes_ = phy::kMaxPhyPayload;
  if (ctx_.config.max_dwell_time > Duration::zero()) {
    std::size_t fit = 0;
    for (std::size_t bytes = phy::kMaxPhyPayload;; --bytes) {
      if (phy::time_on_air(radio_.modulation(), bytes) <=
          ctx_.config.max_dwell_time) {
        fit = bytes;
        break;
      }
      if (bytes == 0) break;
    }
    LM_REQUIRE(fit >= kLinkHeaderSize + kRouteHeaderSize + 4 &&
               "max_dwell_time leaves no usable frame at this modulation");
    max_frame_bytes_ = fit;
    const std::size_t fragment_fit =
        max_frame_bytes_ - kLinkHeaderSize - kRouteHeaderSize - 3;
    ctx_.config.max_fragment_payload =
        std::min(ctx_.config.max_fragment_payload, fragment_fit);
  }
  radio_.set_listener(this);
}

LinkLayer::~LinkLayer() {
  if (pipeline_timer_ != 0) ctx_.sim.cancel(pipeline_timer_);
  if (rx_cycle_timer_ != 0) ctx_.sim.cancel(rx_cycle_timer_);
  radio_.set_listener(nullptr);
}

// --- Lifecycle ----------------------------------------------------------------

void LinkLayer::enter_receive() {
  rx_window_open_ = true;
  radio_.start_receive();
}

void LinkLayer::resume_radio() {
  // After TX/CAD/drops, return to whatever the receiver schedule says:
  // listening, or (in a sleep window of duty-cycled listening) sleeping.
  if (!ctx_.running) return;
  if (rx_window_open_) {
    if (radio_.state() == radio::RadioState::Standby ||
        radio_.state() == radio::RadioState::Sleep) {
      radio_.start_receive();
    }
  } else if (radio_.state() == radio::RadioState::Standby ||
             radio_.state() == radio::RadioState::Rx) {
    radio_.sleep();
  }
}

void LinkLayer::schedule_rx_cycle() {
  if (ctx_.config.rx_duty >= 1.0) return;
  const Duration on = ctx_.config.rx_cycle_period * ctx_.config.rx_duty;
  const Duration off = ctx_.config.rx_cycle_period - on;
  const Duration next = rx_window_open_ ? on : off;
  rx_cycle_timer_ = ctx_.sim.schedule_after(next, [this] {
    rx_cycle_timer_ = 0;
    if (!ctx_.running) return;
    rx_window_open_ = !rx_window_open_;
    // Never interrupt an active TX/CAD; resume_radio applies the schedule
    // when they complete.
    if (tx_phase_ == TxPhase::Idle || tx_phase_ == TxPhase::Backoff ||
        tx_phase_ == TxPhase::WaitingDuty) {
      resume_radio();
    }
    schedule_rx_cycle();
  });
}

void LinkLayer::cancel_timers() {
  for (sim::TimerId* t : {&pipeline_timer_, &rx_cycle_timer_}) {
    if (*t != 0) {
      ctx_.sim.cancel(*t);
      *t = 0;
    }
  }
}

void LinkLayer::clear_queues() {
  control_queue_.clear();
  data_queue_.clear();
}

void LinkLayer::settle_radio() {
  if (tx_phase_ != TxPhase::Transmitting) {
    current_.reset();
    tx_phase_ = TxPhase::Idle;
  }
  // Mid-TX and mid-CAD radios settle in on_tx_done / on_cad_done.
  const radio::RadioState s = radio_.state();
  if (s == radio::RadioState::Rx || s == radio::RadioState::Standby) {
    radio_.sleep();
  }
}

// --- TX pipeline ------------------------------------------------------------------

bool LinkLayer::enqueue(Packet packet, bool control) {
  if (!ctx_.running) return false;
  std::deque<Packet>& queue = control ? control_queue_ : data_queue_;
  if (queue.size() >= ctx_.config.max_queue) {
    ctx_.stats.dropped_queue_full++;
    if (ctx_.tracer != nullptr) {
      ctx_.trace_packet(trace::EventKind::QueueDrop, packet,
                        trace::DropReason::QueueFull);
    }
    callbacks_.on_dropped(packet);
    return false;
  }
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::Enqueue, packet);
  }
  queue.push_back(std::move(packet));
  pump();
  return true;
}

void LinkLayer::pump() {
  if (!ctx_.running || tx_phase_ != TxPhase::Idle) return;
  if (!current_) {
    if (!control_queue_.empty()) {
      current_ = Outgoing{std::move(control_queue_.front()), 0};
      control_queue_.pop_front();
    } else if (!data_queue_.empty()) {
      current_ = Outgoing{std::move(data_queue_.front()), 0};
      data_queue_.pop_front();
    } else {
      return;
    }
  }
  const Duration airtime = phy::time_on_air(
      radio_.modulation(), encoded_size(current_->packet));
  const TimePoint now = ctx_.sim.now();
  if (!duty_.allowed(now, airtime)) {
    ctx_.stats.duty_cycle_delays++;
    tx_phase_ = TxPhase::WaitingDuty;
    const TimePoint when = duty_.next_allowed(now, airtime);
    if (ctx_.tracer != nullptr) {
      ctx_.trace_packet(trace::EventKind::DutyDefer, current_->packet,
                        trace::DropReason::None, (when - now).us(),
                        duty_.utilization(now));
    }
    pipeline_timer_ = ctx_.sim.schedule_at(when, [this] {
      pipeline_timer_ = 0;
      tx_phase_ = TxPhase::Idle;
      pump();
    });
    return;
  }
  if (radio_.state() == radio::RadioState::Sleep) radio_.standby();
  if (ctx_.config.use_cad) {
    // Soft carrier sense first: if a frame is already inbound, starting CAD
    // would abort its reception (the SX127x cannot CAD and receive at
    // once). Back off without leaving Rx instead.
    if (radio_.medium_busy()) {
      channel_busy_backoff();
      return;
    }
    tx_phase_ = TxPhase::Cad;
    const bool started = radio_.start_cad();
    LM_ASSERT(started);
  } else {
    transmit_now();
  }
}

void LinkLayer::channel_busy_backoff() {
  LM_ASSERT(current_.has_value());
  ctx_.stats.cad_busy_events++;
  current_->cad_attempts++;
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::CadBusy, current_->packet,
                      trace::DropReason::None, current_->cad_attempts);
  }
  if (current_->cad_attempts > ctx_.config.max_cad_retries) {
    // The channel never cleared; transmitting anyway beats starving, and the
    // capture effect may still save one of the colliding frames.
    ctx_.stats.forced_transmissions++;
    if (ctx_.tracer != nullptr) {
      ctx_.trace_packet(trace::EventKind::ForcedTx, current_->packet);
    }
    transmit_now();
    return;
  }
  tx_phase_ = TxPhase::Backoff;
  resume_radio();  // keep listening (schedule permitting) while backing off
  const int exponent = std::min(current_->cad_attempts, 6);
  Duration window = ctx_.config.backoff_base * (std::int64_t{1} << exponent);
  if (window > ctx_.config.backoff_max) window = ctx_.config.backoff_max;
  const Duration delay = Duration::from_seconds(
      ctx_.rng.uniform(0.0, std::max(window.seconds_d(), 1e-4)));
  pipeline_timer_ = ctx_.sim.schedule_after(delay, [this] {
    pipeline_timer_ = 0;
    tx_phase_ = TxPhase::Idle;
    pump();
  });
}

void LinkLayer::on_cad_done(bool channel_active) {
  if (!ctx_.running) {
    radio_.sleep();
    return;
  }
  LM_ASSERT(tx_phase_ == TxPhase::Cad);
  LM_ASSERT(current_.has_value());
  if (!channel_active) {
    transmit_now();
    return;
  }
  channel_busy_backoff();
}

void LinkLayer::transmit_now() {
  LM_ASSERT(current_.has_value());
  Packet& packet = current_->packet;
  LinkHeader& link = link_of(packet);
  if (link.dst == kUnassigned) {
    // Late next-hop resolution: routes may have changed while queued.
    const RouteHeader* route = route_of(packet);
    LM_ASSERT(route != nullptr);
    const auto next = callbacks_.resolve_next_hop(*route);
    if (!next) {
      ctx_.stats.dropped_no_route++;
      if (ctx_.tracer != nullptr) {
        ctx_.trace_packet(trace::EventKind::Drop, packet,
                          trace::DropReason::NoRoute);
      }
      callbacks_.on_dropped(packet);
      current_.reset();
      tx_phase_ = TxPhase::Idle;
      resume_radio();
      pump();
      return;
    }
    link.dst = *next;
  }
  std::vector<std::uint8_t> frame = encode(packet);
  const Duration airtime = phy::time_on_air(radio_.modulation(), frame.size());
  if (is_control_plane(packet)) {
    ctx_.stats.control_bytes_sent += frame.size();
    ctx_.stats.control_airtime += airtime;
  } else {
    ctx_.stats.data_bytes_sent += frame.size();
    ctx_.stats.data_airtime += airtime;
    if (std::holds_alternative<FragmentPacket>(packet)) {
      ctx_.stats.fragments_sent++;
    }
  }
  duty_.record(ctx_.sim.now(), airtime);
  tx_phase_ = TxPhase::Transmitting;
  if (Logger::instance().enabled(LogLevel::Trace)) {
    LM_TRACE(kTag, "%s tx %s", to_string(ctx_.address).c_str(),
             describe(packet).c_str());
  }
  // MeshTx must directly precede the radio handoff: the channel emits
  // TxStart at the same timestamp, and the analyzer pairs the two adjacent
  // events to map tx_seq onto the packet identity.
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::MeshTx, packet,
                      trace::DropReason::None, airtime.us());
  }
  const bool started = radio_.transmit(std::move(frame));
  LM_ASSERT(started);
}

void LinkLayer::on_tx_done() {
  LM_ASSERT(tx_phase_ == TxPhase::Transmitting);
  LM_ASSERT(current_.has_value());
  tx_phase_ = TxPhase::Idle;
  const Outgoing sent = std::move(*current_);
  current_.reset();
  if (!ctx_.running) {
    radio_.sleep();
    return;
  }
  resume_radio();
  callbacks_.on_sent(sent.packet);
  pump();
}

// --- RX pipeline -------------------------------------------------------------------

std::optional<double> LinkLayer::snr_margin_db(Address neighbor) const {
  const auto it = neighbor_snr_margin_.find(neighbor);
  if (it == neighbor_snr_margin_.end()) return std::nullopt;
  return it->second;
}

void LinkLayer::on_frame_received(const std::vector<std::uint8_t>& frame,
                                  const radio::FrameMeta& meta) {
  if (!ctx_.running) return;
  auto decoded = decode(frame);
  if (!decoded) {
    ctx_.stats.malformed_frames++;
    if (ctx_.tracer != nullptr) {
      trace::TraceEvent e;
      e.t_us = ctx_.sim.now().us();
      e.node = ctx_.address;
      e.kind = trace::EventKind::Drop;
      e.reason = trace::DropReason::Malformed;
      e.bytes = static_cast<std::uint32_t>(frame.size());
      ctx_.tracer->emit(e);
    }
    return;
  }
  const LinkHeader& link = link_of(*decoded);
  if (link.src == ctx_.address) return;  // own echo; cannot happen on real radios

  // Smoothed per-neighbor link quality, fed by every frame we decode from
  // them (the receive-side SNR the SX127x reports per packet).
  if (link.src != kUnassigned && link.src != kBroadcast) {
    const double margin =
        meta.snr_db - phy::snr_floor_db(radio_.modulation().sf);
    const auto it = neighbor_snr_margin_.find(link.src);
    if (it == neighbor_snr_margin_.end()) {
      neighbor_snr_margin_.emplace(link.src, margin);
    } else {
      it->second += ctx_.config.snr_ewma_alpha * (margin - it->second);
    }
  }
  if (link.dst != ctx_.address && link.dst != kBroadcast) {
    ctx_.stats.foreign_frames++;  // overheard unicast addressed elsewhere
    return;
  }
  if (Logger::instance().enabled(LogLevel::Trace)) {
    LM_TRACE(kTag, "%s rx %s", to_string(ctx_.address).c_str(),
             describe(*decoded).c_str());
  }
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::RxFrame, *decoded,
                      trace::DropReason::None, 0, meta.snr_db);
  }
  callbacks_.on_packet(std::move(*decoded));
}

}  // namespace lm::net
