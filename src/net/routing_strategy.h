// RoutingStrategy — the swappable seam of the network layer.
//
// The paper's prototype routes with a hop-count distance-vector protocol,
// but related work varies exactly this axis (position/energy-aware metrics,
// managed flooding). A strategy owns the routing *policy*: what to do with
// a received routing beacon, how to dispatch a routed packet
// (deliver/forward/flood), how to resolve the next hop at transmit time and
// whether an origination is currently routable. Everything mechanical —
// queues, CAD/backoff, duty cycle, sessions — lives in the shared layers
// and is reused unchanged across strategies.
#pragma once

#include <functional>
#include <optional>

#include "net/layer_context.h"
#include "net/link_layer.h"
#include "net/packet.h"
#include "net/routing_table.h"

namespace lm::net {

class RoutingStrategy {
 public:
  /// Hands a packet up the stack for local consumption (the facade routes
  /// it to the application or the transport layer).
  using DeliverFn = std::function<void(Packet)>;

  virtual ~RoutingStrategy() = default;

  /// Wires the strategy into its owning stack; called exactly once by
  /// NetworkLayer before any other method.
  void attach(LayerContext& ctx, LinkLayer& link, RoutingTable& table,
              DeliverFn deliver) {
    ctx_ = &ctx;
    link_ = &link;
    table_ = &table;
    deliver_ = std::move(deliver);
  }

  /// Node powered up: start periodic control traffic (e.g. beacons).
  virtual void start() {}
  /// Node powered down: cancel the strategy's timers.
  virtual void stop() {}

  virtual const char* name() const = 0;

  /// Whether an origination toward `dst` can currently be carried.
  virtual bool has_route(Address dst) const = 0;
  /// Whether kBroadcast is a valid datagram destination (multi-hop flood
  /// strategies say yes; unicast routing says no).
  virtual bool allows_broadcast_destination() const { return false; }

  /// A routing-plane packet arrived (already counted in beacons_received).
  virtual void on_routing(const RoutingPacket& packet) = 0;
  /// A routed packet arrived addressed to us or broadcast: deliver, forward
  /// or flood according to policy.
  virtual void handle(Packet packet) = 0;
  /// Late next-hop resolution for queued packets with dst == kUnassigned;
  /// nullopt drops the packet at the link layer.
  virtual std::optional<Address> resolve_next_hop(const RouteHeader& route) = 0;

 protected:
  LayerContext* ctx_ = nullptr;
  LinkLayer* link_ = nullptr;
  RoutingTable* table_ = nullptr;
  DeliverFn deliver_;
};

}  // namespace lm::net
