// MeshNode — the LoRaMesher node: one radio, one routing table, the packet
// queues and the protocol state machines that make a set of LoRa devices
// behave as a mesh.
//
// Responsibilities, matching the library the paper demonstrates:
//  * periodically broadcast the routing table (distance-vector beacons,
//    with node roles) and merge received beacons (RoutingTable),
//    optionally gated on smoothed received SNR;
//  * originate, forward and deliver routed unicast packets, with TTL and
//    hop accounting; single-hop broadcasts (neighbor-local, not forwarded);
//  * acked datagrams (NEED_ACK: end-to-end ACK + retransmission + dedup)
//    and reliable large-payload transfers via the SYNC/FRAGMENT/LOST/DONE
//    machinery (ReliableSender / ReliableReceiver sessions, capped);
//  * channel access: soft carrier sense, CAD listen-before-talk with
//    exponential random backoff, a two-priority transmit queue (control
//    before data), a sliding-window duty-cycle limiter that defers
//    over-budget transmissions, and an optional US915-style dwell cap;
//  * optional duty-cycled listening (rx_duty) for the energy experiments.
//
// Threading model: none. Everything runs as events on the owning Simulator,
// mirroring how the original runs as FreeRTOS tasks woken by radio IRQs.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "net/address.h"
#include "net/config.h"
#include "net/duty_cycle.h"
#include "net/packet.h"
#include "net/packet_sink.h"
#include "net/reliable_receiver.h"
#include "net/reliable_sender.h"
#include "net/routing_table.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "trace/trace_sink.h"

namespace lm::net {

/// Cumulative per-node protocol counters.
struct NodeStats {
  // Control plane.
  std::uint64_t beacons_sent = 0;
  std::uint64_t beacons_received = 0;
  std::uint64_t routing_changes = 0;  // beacons that changed the table
  // Data plane.
  std::uint64_t datagrams_sent = 0;       // originated here
  std::uint64_t datagrams_delivered = 0;  // consumed here as final destination
  std::uint64_t broadcasts_sent = 0;
  std::uint64_t broadcasts_delivered = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t foreign_frames = 0;  // overheard unicast for someone else
  std::uint64_t beacons_ignored_low_quality = 0;  // link-quality gating
  // Channel access.
  std::uint64_t cad_busy_events = 0;
  std::uint64_t forced_transmissions = 0;  // CAD retries exhausted
  std::uint64_t duty_cycle_delays = 0;
  // Byte/airtime accounting, split by plane (E3 overhead decomposition):
  // control = ROUTING + ARQ control; data = DATA + FRAGMENT.
  std::uint64_t control_bytes_sent = 0;
  std::uint64_t data_bytes_sent = 0;
  Duration control_airtime;
  Duration data_airtime;
  // Acked datagrams.
  std::uint64_t acked_sent = 0;          // originated here
  std::uint64_t acked_confirmed = 0;     // ACK came back
  std::uint64_t acked_failed = 0;        // retries exhausted
  std::uint64_t acked_retransmissions = 0;
  std::uint64_t acked_delivered = 0;     // consumed here (deduplicated)
  std::uint64_t acked_duplicates = 0;    // retransmissions we had already seen
  std::uint64_t acks_sent = 0;
  // Reliable transfers.
  std::uint64_t transfers_started = 0;
  std::uint64_t transfers_completed = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t transfers_received = 0;
  std::uint64_t rx_sessions_rejected = 0;  // SYNCs refused at the session cap
  std::uint64_t fragments_sent = 0;
  std::uint64_t fragments_retransmitted = 0;
};

class MeshNode final : public radio::RadioListener, public PacketSink {
 public:
  /// (origin, payload, radio links traversed) — routed datagram reached us.
  /// A direct neighbor's datagram reports 1 hop.
  using DatagramHandler =
      std::function<void(Address origin, const std::vector<std::uint8_t>& payload,
                         std::uint8_t hops)>;
  /// (origin, payload) — single-hop broadcast from a neighbor.
  using BroadcastHandler =
      std::function<void(Address origin, const std::vector<std::uint8_t>& payload)>;
  /// (origin, payload) — reliable transfer fully reassembled.
  using PayloadHandler =
      std::function<void(Address origin, std::vector<std::uint8_t> payload)>;
  /// Transfer outcome for send_reliable.
  using SendCallback = std::function<void(bool success)>;

  /// The node installs itself as the radio's listener. `seed` drives all of
  /// this node's randomness (jitter, backoff).
  MeshNode(sim::Simulator& sim, radio::Radio& radio, Address address,
           MeshConfig config, std::uint64_t seed);
  ~MeshNode() override;

  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  // --- Lifecycle -------------------------------------------------------------
  /// Powers up: enters receive, schedules the first beacon at a random
  /// offset within one hello interval (desynchronizing simultaneous boots).
  void start();
  /// Powers down: stops timers, drops queued traffic, fails outstanding
  /// transfers, and puts the radio to sleep (after any in-flight TX/CAD).
  void stop();
  bool running() const { return running_; }

  // --- Application API ---------------------------------------------------------
  /// Sends an unreliable routed datagram (payload <= kMaxDataPayload).
  /// Returns false — without queuing — when stopped, the destination is
  /// unknown to the routing table, or the queue is full. When `why` is
  /// non-null it receives the refusal cause on failure.
  bool send_datagram(Address destination, std::vector<std::uint8_t> payload,
                     trace::DropReason* why = nullptr);

  /// Sends a single-hop broadcast to whoever hears it (never forwarded).
  bool send_broadcast(std::vector<std::uint8_t> payload,
                      trace::DropReason* why = nullptr);

  /// Sends one datagram with an end-to-end ACK and automatic
  /// retransmission (the original library's NEED_ACK path): two frames per
  /// hop in the common case, against the four of a 1-fragment reliable
  /// transfer. `done` fires exactly once. Duplicates caused by retries are
  /// suppressed at the receiver; the handler sees the payload once.
  bool send_acked(Address destination, std::vector<std::uint8_t> payload,
                  SendCallback done, trace::DropReason* why = nullptr);

  /// Starts a reliable transfer of an arbitrary-size payload. `done` fires
  /// exactly once with the outcome. Returns false when stopped, payload is
  /// empty/too large, no route exists, or no session slot is free.
  bool send_reliable(Address destination, std::vector<std::uint8_t> payload,
                     SendCallback done, trace::DropReason* why = nullptr);

  void set_datagram_handler(DatagramHandler handler) { datagram_handler_ = std::move(handler); }
  void set_broadcast_handler(BroadcastHandler handler) { broadcast_handler_ = std::move(handler); }
  void set_reliable_handler(PayloadHandler handler) { reliable_handler_ = std::move(handler); }

  // --- Introspection -------------------------------------------------------------
  Address address() const { return address_; }
  Role role() const { return config_.role; }
  const RoutingTable& routing_table() const { return table_; }
  /// The closest node advertising all bits of `role_mask` (e.g. the nearest
  /// gateway), if any is known.
  std::optional<RouteEntry> nearest_with_role(Role role_mask) const {
    return table_.nearest_with_role(role_mask);
  }
  /// Smoothed SNR margin (dB above the demodulation floor) of frames heard
  /// from `neighbor`; nullopt before the first frame.
  std::optional<double> neighbor_snr_margin_db(Address neighbor) const;
  /// Largest application payload one routed datagram may carry —
  /// kMaxDataPayload unless max_dwell_time caps the frame size.
  std::size_t max_datagram_payload() const;
  const MeshConfig& config() const { return config_; }
  const NodeStats& stats() const { return stats_; }

  /// Attaches the flight recorder: every lifecycle step of every packet this
  /// node touches is reported. Null detaches; when detached each
  /// instrumentation site costs a single pointer compare.
  void set_tracer(trace::Tracer* tracer);
  const DutyCycleLimiter& duty_cycle() const { return duty_; }
  radio::Radio& radio() { return radio_; }
  std::size_t queued_packets() const { return control_queue_.size() + data_queue_.size(); }

  // --- RadioListener -------------------------------------------------------------
  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const radio::FrameMeta& meta) override;
  void on_tx_done() override;
  void on_cad_done(bool channel_active) override;

  // --- PacketSink (for reliable sessions) ------------------------------------------
  void submit_control(Packet packet) override;
  void submit_data(Packet packet) override;
  Address self_address() const override { return address_; }
  RouteHeader make_route(Address final_dst) override;

 private:
  enum class TxPhase : std::uint8_t {
    Idle,         // nothing being transmitted
    WaitingDuty,  // head-of-line packet deferred by the duty-cycle limiter
    Cad,          // listen-before-talk in progress
    Backoff,      // channel was busy; waiting a random interval
    Transmitting, // frame on the air
  };

  struct Outgoing {
    Packet packet;
    int cad_attempts = 0;
  };

  // TX pipeline.
  bool enqueue(Packet packet, bool control);
  void pump();
  void channel_busy_backoff();
  void transmit_now();
  bool is_control_plane(const Packet& packet) const;

  // RX pipeline.
  void handle_packet(Packet packet);
  void handle_routing(const RoutingPacket& packet);
  void consume(Packet packet);
  void forward(Packet packet);

  // Reliable session plumbing.
  using SessionKey = std::pair<Address, std::uint8_t>;  // (peer, seq)
  void dispatch_to_sender(Address peer, std::uint8_t seq,
                          const std::function<void(ReliableSender&)>& fn);
  void gc_sessions();

  // Acked-datagram plumbing.
  struct PendingAck {
    AckedDataPacket packet;  // link.dst left unresolved for each attempt
    int attempts = 0;
    sim::TimerId timer = 0;
    SendCallback done;
  };
  void transmit_acked_attempt(std::uint16_t packet_id);
  void on_acked_timeout(std::uint16_t packet_id);
  void finish_acked(std::uint16_t packet_id, bool success);
  bool acked_seen_before(Address origin, std::uint16_t packet_id);

  // Flight-recorder plumbing. Callers guard on tracer_ != nullptr so the
  // untraced hot path never pays for argument evaluation.
  void trace_packet(trace::EventKind kind, const Packet& packet,
                    trace::DropReason reason = trace::DropReason::None,
                    std::int64_t aux_us = 0, double value = 0.0);
  void trace_refusal(PacketType type, Address dst, std::size_t bytes,
                     trace::DropReason reason);

  // Beaconing and maintenance.
  void schedule_next_beacon(bool first);
  void send_beacon();
  void start_maintenance_loop();
  void notify_fragment_progress(const Packet& packet);
  void resume_radio();
  void schedule_rx_cycle();

  sim::Simulator& sim_;
  radio::Radio& radio_;
  const Address address_;
  MeshConfig config_;
  Rng rng_;
  RoutingTable table_;
  DutyCycleLimiter duty_;
  NodeStats stats_;
  trace::Tracer* tracer_ = nullptr;

  bool running_ = false;
  TxPhase tx_phase_ = TxPhase::Idle;
  std::deque<Packet> control_queue_;
  std::deque<Packet> data_queue_;
  std::optional<Outgoing> current_;
  sim::TimerId beacon_timer_ = 0;
  sim::TimerId maintenance_timer_ = 0;
  sim::TimerId pipeline_timer_ = 0;  // duty-wait or backoff wakeup
  sim::TimerId rx_cycle_timer_ = 0;  // duty-cycled listening toggles
  bool rx_window_open_ = true;       // whether the schedule says "listen"
  std::uint16_t next_packet_id_ = 1;
  std::uint8_t next_transfer_seq_ = 0;
  std::size_t max_frame_bytes_ = 255;  // dwell-capped frame size

  std::map<SessionKey, std::unique_ptr<ReliableSender>> tx_sessions_;
  std::map<SessionKey, std::unique_ptr<ReliableReceiver>> rx_sessions_;
  std::map<Address, double> neighbor_snr_margin_;  // EWMA, dB above floor
  std::map<std::uint16_t, PendingAck> pending_acks_;  // by our packet_id
  std::set<std::pair<Address, std::uint16_t>> acked_seen_;
  std::deque<std::pair<Address, std::uint16_t>> acked_seen_order_;

  DatagramHandler datagram_handler_;
  BroadcastHandler broadcast_handler_;
  PayloadHandler reliable_handler_;
};

}  // namespace lm::net
