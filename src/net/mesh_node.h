// MeshNode — the LoRaMesher node: a thin facade over the layered protocol
// stack that makes a set of LoRa devices behave as a mesh.
//
// The stack mirrors the cooperating pieces of the library the paper
// demonstrates:
//  * LinkLayer — the service loop arbitrating one half-duplex radio:
//    RX-default, CAD listen-before-talk with exponential backoff, the
//    two-priority transmit queue, the sliding-window duty-cycle budget,
//    the US915-style dwell cap and duty-cycled listening (rx_duty);
//  * NetworkLayer — origination, routing table and routed-packet dispatch
//    behind a pluggable RoutingStrategy (default: the prototype's
//    hop-count distance-vector beacons; alternative: controlled flooding);
//  * TransportLayer — end-to-end machinery: acked datagrams (NEED_ACK)
//    and reliable large-payload transfers (SYNC/FRAGMENT/LOST/DONE
//    sessions via ReliableSender / ReliableReceiver).
//
// The facade owns the shared LayerContext (one RNG, one stats block, one
// config, one tracer hook), wires the layers together, runs the
// maintenance loop and routes deliveries to the application handlers. Its
// public API is unchanged from the pre-split monolith.
//
// Threading model: none. Everything runs as events on the owning Simulator,
// mirroring how the original runs as FreeRTOS tasks woken by radio IRQs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/address.h"
#include "net/config.h"
#include "net/duty_cycle.h"
#include "net/layer_context.h"
#include "net/link_layer.h"
#include "net/network_layer.h"
#include "net/packet.h"
#include "net/packet_sink.h"
#include "net/routing_strategy.h"
#include "net/routing_table.h"
#include "net/transport_layer.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "trace/trace_sink.h"

namespace lm::net {

class MeshNode final : public PacketSink {
 public:
  /// (origin, payload, radio links traversed) — routed datagram reached us.
  /// A direct neighbor's datagram reports 1 hop.
  using DatagramHandler =
      std::function<void(Address origin, const std::vector<std::uint8_t>& payload,
                         std::uint8_t hops)>;
  /// (origin, payload) — single-hop broadcast from a neighbor.
  using BroadcastHandler =
      std::function<void(Address origin, const std::vector<std::uint8_t>& payload)>;
  /// (origin, payload) — reliable transfer fully reassembled.
  using PayloadHandler =
      std::function<void(Address origin, std::vector<std::uint8_t> payload)>;
  /// Transfer outcome for send_reliable.
  using SendCallback = std::function<void(bool success)>;

  /// The node installs itself as the radio's listener. `seed` drives all of
  /// this node's randomness (jitter, backoff). A null `strategy` selects
  /// the default hop-count distance-vector routing.
  MeshNode(sim::Simulator& sim, radio::Radio& radio, Address address,
           MeshConfig config, std::uint64_t seed,
           std::unique_ptr<RoutingStrategy> strategy = nullptr);
  ~MeshNode() override;

  MeshNode(const MeshNode&) = delete;
  MeshNode& operator=(const MeshNode&) = delete;

  // --- Lifecycle -------------------------------------------------------------
  /// Powers up: enters receive, schedules the first beacon at a random
  /// offset within one hello interval (desynchronizing simultaneous boots).
  void start();
  /// Powers down: stops timers, drops queued traffic, fails outstanding
  /// transfers, and puts the radio to sleep (after any in-flight TX/CAD).
  void stop();
  bool running() const { return ctx_.running; }

  // --- Application API ---------------------------------------------------------
  /// Sends an unreliable routed datagram (payload <= kMaxDataPayload).
  /// Returns false — without queuing — when stopped, the destination is
  /// unknown to the routing table, or the queue is full. When `why` is
  /// non-null it receives the refusal cause on failure.
  bool send_datagram(Address destination, std::vector<std::uint8_t> payload,
                     trace::DropReason* why = nullptr);

  /// Sends a single-hop broadcast to whoever hears it (never forwarded).
  bool send_broadcast(std::vector<std::uint8_t> payload,
                      trace::DropReason* why = nullptr);

  /// Sends one datagram with an end-to-end ACK and automatic
  /// retransmission (the original library's NEED_ACK path): two frames per
  /// hop in the common case, against the four of a 1-fragment reliable
  /// transfer. `done` fires exactly once. Duplicates caused by retries are
  /// suppressed at the receiver; the handler sees the payload once.
  bool send_acked(Address destination, std::vector<std::uint8_t> payload,
                  SendCallback done, trace::DropReason* why = nullptr);

  /// Starts a reliable transfer of an arbitrary-size payload. `done` fires
  /// exactly once with the outcome. Returns false when stopped, payload is
  /// empty/too large, no route exists, or no session slot is free.
  bool send_reliable(Address destination, std::vector<std::uint8_t> payload,
                     SendCallback done, trace::DropReason* why = nullptr);

  void set_datagram_handler(DatagramHandler handler) { datagram_handler_ = std::move(handler); }
  void set_broadcast_handler(BroadcastHandler handler) { broadcast_handler_ = std::move(handler); }
  void set_reliable_handler(PayloadHandler handler) { reliable_handler_ = std::move(handler); }

  // --- Introspection -------------------------------------------------------------
  Address address() const { return ctx_.address; }
  Role role() const { return ctx_.config.role; }
  const RoutingTable& routing_table() const { return network_.table(); }
  /// The routing policy in effect (strategy_test swaps this seam).
  const RoutingStrategy& routing_strategy() const { return network_.strategy(); }
  /// The closest node advertising all bits of `role_mask` (e.g. the nearest
  /// gateway), if any is known.
  std::optional<RouteEntry> nearest_with_role(Role role_mask) const {
    return network_.table().nearest_with_role(role_mask);
  }
  /// Smoothed SNR margin (dB above the demodulation floor) of frames heard
  /// from `neighbor`; nullopt before the first frame.
  std::optional<double> neighbor_snr_margin_db(Address neighbor) const {
    return link_.snr_margin_db(neighbor);
  }
  /// Largest application payload one routed datagram may carry —
  /// kMaxDataPayload unless max_dwell_time caps the frame size.
  std::size_t max_datagram_payload() const {
    return network_.max_datagram_payload();
  }
  const MeshConfig& config() const { return ctx_.config; }
  const NodeStats& stats() const { return ctx_.stats; }

  /// Attaches the flight recorder: every lifecycle step of every packet this
  /// node touches is reported. Null detaches; when detached each
  /// instrumentation site costs a single pointer compare.
  void set_tracer(trace::Tracer* tracer);
  const DutyCycleLimiter& duty_cycle() const { return link_.duty_cycle(); }
  radio::Radio& radio() { return radio_; }
  std::size_t queued_packets() const { return link_.queued_packets(); }

  // --- PacketSink (also used by tests to inject protocol packets) -------------
  void submit_control(Packet packet) override;
  void submit_data(Packet packet) override;
  Address self_address() const override { return ctx_.address; }
  RouteHeader make_route(Address final_dst) override;

 private:
  /// Routed-packet delivery from the network layer: plain datagrams and
  /// broadcasts go to the application, everything else to the transport.
  void deliver(Packet packet);
  void start_maintenance_loop();

  radio::Radio& radio_;
  LayerContext ctx_;
  LinkLayer link_;
  NetworkLayer network_;
  TransportLayer transport_;
  sim::TimerId maintenance_timer_ = 0;

  DatagramHandler datagram_handler_;
  BroadcastHandler broadcast_handler_;
  PayloadHandler reliable_handler_;
};

}  // namespace lm::net
