#include "net/distance_vector_strategy.h"

#include <variant>

#include "support/assert.h"

namespace lm::net {

DistanceVectorStrategy::~DistanceVectorStrategy() {
  if (beacon_timer_ != 0) ctx_->sim.cancel(beacon_timer_);
}

void DistanceVectorStrategy::start() {
  schedule_next_beacon(/*first=*/true);
}

void DistanceVectorStrategy::stop() {
  if (beacon_timer_ != 0) {
    ctx_->sim.cancel(beacon_timer_);
    beacon_timer_ = 0;
  }
}

void DistanceVectorStrategy::on_routing(const RoutingPacket& packet) {
  if (ctx_->config.require_link_quality) {
    const auto margin = link_->snr_margin_db(packet.link.src);
    if (!margin || *margin < ctx_->config.min_snr_margin_db) {
      // Too weak to rely on: never let this neighbor become a next hop.
      // Existing routes through it stop being refreshed and age out.
      ctx_->stats.beacons_ignored_low_quality++;
      return;
    }
  }
  if (table_->apply_beacon(packet.link.src, packet.entries, ctx_->sim.now())) {
    ctx_->stats.routing_changes++;
  }
}

void DistanceVectorStrategy::handle(Packet packet) {
  const RouteHeader* route = route_of(packet);
  LM_ASSERT(route != nullptr);
  if (route->final_dst == kBroadcast) {
    // Single-hop broadcast datagram: deliver, never forward.
    if (std::holds_alternative<DataPacket>(packet)) {
      deliver_(std::move(packet));
    }
    return;
  }
  if (route->final_dst == ctx_->address) {
    deliver_(std::move(packet));
  } else {
    forward(std::move(packet));
  }
}

void DistanceVectorStrategy::forward(Packet packet) {
  RouteHeader* route = route_of(packet);
  LM_ASSERT(route != nullptr);
  if (route->ttl <= 1) {
    ctx_->stats.dropped_ttl++;
    if (ctx_->tracer != nullptr) {
      ctx_->trace_packet(trace::EventKind::Drop, packet,
                         trace::DropReason::TtlExpired);
    }
    return;
  }
  if (!table_->has_route(route->final_dst)) {
    ctx_->stats.dropped_no_route++;
    if (ctx_->tracer != nullptr) {
      ctx_->trace_packet(trace::EventKind::Drop, packet,
                         trace::DropReason::NoRoute);
    }
    return;
  }
  route->ttl--;
  route->hops++;
  LinkHeader& link = link_of(packet);
  link.src = ctx_->address;
  link.dst = kUnassigned;  // resolved at transmit time
  ctx_->stats.packets_forwarded++;
  if (ctx_->tracer != nullptr) {
    ctx_->trace_packet(trace::EventKind::Forward, packet);
  }
  const bool control = is_control_plane(packet);
  if (ctx_->config.forward_jitter > Duration::zero()) {
    const Duration delay = Duration::from_seconds(
        ctx_->rng.uniform(0.0, ctx_->config.forward_jitter.seconds_d()));
    ctx_->sim.schedule_after(
        delay, [this, control, p = std::move(packet)]() mutable {
          if (ctx_->running) link_->enqueue(std::move(p), control);
        });
  } else {
    link_->enqueue(std::move(packet), control);
  }
}

void DistanceVectorStrategy::schedule_next_beacon(bool first) {
  Duration delay;
  if (first) {
    delay = Duration::from_seconds(
        ctx_->rng.uniform(0.0, ctx_->config.hello_interval.seconds_d()));
  } else if (ctx_->config.hello_jitter > 0.0) {
    delay = ctx_->config.hello_interval *
            ctx_->rng.uniform(1.0 - ctx_->config.hello_jitter,
                              1.0 + ctx_->config.hello_jitter);
  } else {
    delay = ctx_->config.hello_interval;
  }
  beacon_timer_ = ctx_->sim.schedule_after(delay, [this] {
    beacon_timer_ = 0;
    send_beacon();
  });
}

void DistanceVectorStrategy::send_beacon() {
  if (!ctx_->running) return;
  RoutingPacket p;
  p.link = LinkHeader{kBroadcast, ctx_->address, PacketType::Routing};
  p.entries = table_->advertisement();
  // Dwell rule: trim the advertisement (farthest destinations first — the
  // list is sorted by address, so re-trim via encoded size from the back).
  while (!p.entries.empty() &&
         kLinkHeaderSize + 1 + 4 * p.entries.size() > link_->max_frame_bytes()) {
    p.entries.pop_back();
  }
  ctx_->stats.beacons_sent++;
  link_->enqueue(Packet{std::move(p)}, /*control=*/true);
  schedule_next_beacon(/*first=*/false);
}

}  // namespace lm::net
