// Sliding-window duty-cycle limiter (EU868-style).
//
// Regulation caps the fraction of time a device may occupy the band (1 % in
// EU868 sub-bands LoRaMesher targets). The limiter accounts every emission
// for `window` after its start; a transmission is admitted only while the
// accounted airtime plus the new frame stays within limit * window. The node
// defers (never drops) over-budget transmissions to the earliest compliant
// instant.
#pragma once

#include <deque>

#include "support/time.h"

namespace lm::net {

class DutyCycleLimiter {
 public:
  /// limit >= 1.0 disables enforcement.
  DutyCycleLimiter(double limit_fraction, Duration window);

  /// Whether spending `airtime` starting at `now` stays within budget.
  bool allowed(TimePoint now, Duration airtime) const;

  /// Earliest t >= now at which `airtime` may be spent. Requires
  /// airtime <= budget (a single frame can never exceed the whole budget).
  TimePoint next_allowed(TimePoint now, Duration airtime) const;

  /// Records an admitted emission starting at `now`.
  void record(TimePoint now, Duration airtime);

  /// Airtime accounted within the window ending at `now`.
  Duration consumed(TimePoint now) const;

  /// consumed / window — compare against the limit fraction.
  double utilization(TimePoint now) const;

  bool enforced() const { return limit_ < 1.0; }
  Duration budget() const { return budget_; }

 private:
  void prune(TimePoint now) const;

  double limit_;
  Duration window_;
  Duration budget_;
  mutable std::deque<std::pair<TimePoint, Duration>> emissions_;
};

}  // namespace lm::net
