// Distance-vector routing table — the heart of LoRaMesher.
//
// Every node periodically broadcasts its table as (destination, metric)
// pairs. A receiver (a) learns the sender as a 1-hop neighbor, and (b) runs
// the distributed Bellman-Ford update on each advertised entry: adopt a
// route when it is new or strictly better, and always follow the current
// next hop's own advertisement (even when it got worse) so bad news
// propagates. Convergence pathologies are bounded RIP-style: metrics
// saturate at kInfiniteMetric (treated as unreachable) and every entry
// carries a hold timer refreshed only by its own next hop, so silent
// neighbors age out together with everything learned through them.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.h"
#include "net/packet.h"
#include "support/time.h"

namespace lm::net {

/// Metric value meaning "unreachable" (RIP-style bounded infinity). With
/// hop-count metrics this also caps usable path length.
constexpr std::uint8_t kInfiniteMetric = 16;

struct RouteEntry {
  Address destination = kUnassigned;
  Address via = kUnassigned;  // next hop (a 1-hop neighbor)
  std::uint8_t metric = 0;    // hop count to destination
  Role role = roles::kNone;   // the destination's advertised role
  TimePoint expires_at;       // refreshed by advertisements from `via`

  friend bool operator==(const RouteEntry& a, const RouteEntry& b) {
    return a.destination == b.destination && a.via == b.via &&
           a.metric == b.metric && a.role == b.role;
  }
};

class RoutingTable {
 public:
  /// `self` is never stored as a destination; `route_timeout` is the hold
  /// time granted on each refresh; `own_role` is advertised with every
  /// beacon via the metric-0 self entry.
  RoutingTable(Address self, Duration route_timeout,
               std::uint8_t max_metric = kInfiniteMetric,
               Role own_role = roles::kNone);

  /// Applies one received beacon from `neighbor` (the frame's link source).
  /// Returns true when any entry was added, removed, or changed.
  bool apply_beacon(Address neighbor, const std::vector<RoutingEntry>& entries,
                    TimePoint now);

  /// Removes entries whose hold timer has lapsed. Returns how many.
  std::size_t expire(TimePoint now);

  /// Full route lookup. nullopt when the destination is unknown.
  std::optional<RouteEntry> route_to(Address destination) const;

  /// Next hop toward `destination`, if known.
  std::optional<Address> next_hop(Address destination) const;

  bool has_route(Address destination) const { return route_to(destination).has_value(); }

  /// All known destinations whose role matches every bit of `role_mask`.
  std::vector<RouteEntry> routes_with_role(Role role_mask) const;

  /// The closest destination carrying all bits of `role_mask` — e.g. the
  /// nearest gateway. Ties break toward the lower address (deterministic).
  std::optional<RouteEntry> nearest_with_role(Role role_mask) const;

  Role own_role() const { return own_role_; }

  /// Entries to advertise in the next beacon: a metric-0 self entry (which
  /// carries this node's role) followed by (destination, metric, role)
  /// tuples, sorted by destination, truncated to what one frame can carry
  /// (the lowest-metric — nearest — destinations win when truncating,
  /// keeping the most reliable information flowing).
  std::vector<RoutingEntry> advertisement() const;

  const std::vector<RouteEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  Address self() const { return self_; }

  /// Multi-line human-readable dump (demo output).
  std::string to_string() const;

  /// Called whenever a route gains a (destination, via) pairing it did not
  /// hold before — adoption, next-hop switch, or warm-boot restore. Used by
  /// the flight recorder; withdrawals and expiry are not reported.
  void set_observer(std::function<void(const RouteEntry&)> observer) {
    observer_ = std::move(observer);
  }

  // --- Warm-boot snapshot ------------------------------------------------------
  /// Serializes the table (destination, via, metric, role, remaining
  /// lifetime) relative to `now` — the bytes a device would keep in flash
  /// across a reboot.
  std::vector<std::uint8_t> serialize(TimePoint now) const;

  /// Restores a snapshot into an empty table, re-basing lifetimes on `now`
  /// minus `downtime` already elapsed (entries whose lifetime lapsed are
  /// skipped). Returns false — leaving the table unchanged — on malformed
  /// input. Requires the table to be empty.
  bool restore(std::span<const std::uint8_t> snapshot, TimePoint now,
               Duration downtime = Duration::zero());

 private:
  RouteEntry* find(Address destination);
  const RouteEntry* find(Address destination) const;
  void append(RouteEntry entry);
  void reindex();

  void notify(const RouteEntry& entry) {
    if (observer_) observer_(entry);
  }

  Address self_;
  Duration route_timeout_;
  std::function<void(const RouteEntry&)> observer_;
  std::uint8_t max_metric_;
  Role own_role_;
  std::vector<RouteEntry> entries_;
  // destination -> index into entries_. Forwarding does one next_hop()
  // lookup per data packet, so the hot path is O(1); the index is rebuilt
  // after removals (rare: expiry and withdrawals only).
  std::unordered_map<Address, std::size_t> by_destination_;
};

}  // namespace lm::net
