#include "net/transport_layer.h"

#include <variant>

#include "support/assert.h"

namespace lm::net {

TransportLayer::TransportLayer(LayerContext& ctx, LinkLayer& link,
                               NetworkLayer& network, Delivery delivery)
    : ctx_(ctx), link_(link), network_(network), delivery_(std::move(delivery)) {}

TransportLayer::~TransportLayer() {
  for (auto& [id, pending] : pending_acks_) {
    if (pending.timer != 0) ctx_.sim.cancel(pending.timer);
  }
}

void TransportLayer::shutdown() {
  // Outstanding sends fail now; receive sessions just disappear (their
  // senders will give up after their poll budget).
  for (auto& [key, sender] : tx_sessions_) sender->abort();
  tx_sessions_.clear();
  rx_sessions_.clear();
  while (!pending_acks_.empty()) {
    finish_acked(pending_acks_.begin()->first, false);
  }
}

// --- PacketSink -------------------------------------------------------------------

void TransportLayer::submit_control(Packet packet) {
  link_.enqueue(std::move(packet), /*control=*/true);
}

void TransportLayer::submit_data(Packet packet) {
  // enqueue() reports a dropped fragment back to its sender session
  // (notify_fragment_progress), so a full queue cannot deadlock the
  // sender's pacing loop; end-to-end repair recovers the payload.
  link_.enqueue(std::move(packet), /*control=*/false);
}

// --- Acked datagrams --------------------------------------------------------------

bool TransportLayer::send_acked(Address destination,
                                std::vector<std::uint8_t> payload,
                                SendCallback done, trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (ctx_.tracer != nullptr) {
      ctx_.trace_refusal(PacketType::AckedData, destination, payload.size(),
                         reason);
    }
    return false;
  };
  if (!ctx_.running) return refuse(trace::DropReason::NotRunning);
  if (destination == ctx_.address || destination == kUnassigned ||
      destination == kBroadcast) {
    return refuse(trace::DropReason::InvalidDestination);
  }
  if (payload.size() > network_.max_datagram_payload()) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  if (!network_.has_route(destination)) {
    ctx_.stats.dropped_no_route++;
    return refuse(trace::DropReason::NoRoute);
  }
  AckedDataPacket p;
  p.link = LinkHeader{kUnassigned, ctx_.address, PacketType::AckedData};
  p.route = network_.make_route(destination);
  p.payload = std::move(payload);
  const std::uint16_t id = p.route.packet_id;
  LM_ASSERT(!pending_acks_.contains(id));  // 16-bit id space, tiny windows
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::AppSubmit, Packet{p});
  }
  PendingAck pending;
  pending.packet = std::move(p);
  pending.done = std::move(done);
  pending_acks_.emplace(id, std::move(pending));
  ctx_.stats.acked_sent++;
  transmit_acked_attempt(id);
  return true;
}

void TransportLayer::transmit_acked_attempt(std::uint16_t packet_id) {
  const auto it = pending_acks_.find(packet_id);
  LM_ASSERT(it != pending_acks_.end());
  it->second.attempts++;
  // Fresh copy per attempt: the queue owns (and resolves) its own instance.
  link_.enqueue(Packet{it->second.packet}, /*control=*/false);
  // Jittered retry: simultaneous senders must not retransmit in lockstep.
  it->second.timer = ctx_.sim.schedule_after(
      ctx_.config.acked_retry_timeout * ctx_.rng.uniform(0.9, 1.4),
      [this, packet_id] { on_acked_timeout(packet_id); });
}

void TransportLayer::on_acked_timeout(std::uint16_t packet_id) {
  const auto it = pending_acks_.find(packet_id);
  if (it == pending_acks_.end()) return;
  it->second.timer = 0;
  if (it->second.attempts > ctx_.config.acked_max_retries) {
    finish_acked(packet_id, false);
    return;
  }
  ctx_.stats.acked_retransmissions++;
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(trace::EventKind::AckedRetry, Packet{it->second.packet},
                      trace::DropReason::None, it->second.attempts);
  }
  transmit_acked_attempt(packet_id);
}

void TransportLayer::finish_acked(std::uint16_t packet_id, bool success) {
  const auto it = pending_acks_.find(packet_id);
  if (it == pending_acks_.end()) return;
  if (it->second.timer != 0) ctx_.sim.cancel(it->second.timer);
  if (ctx_.tracer != nullptr) {
    ctx_.trace_packet(success ? trace::EventKind::AckedConfirmed
                              : trace::EventKind::Drop,
                      Packet{it->second.packet},
                      success ? trace::DropReason::None
                              : trace::DropReason::RetriesExhausted);
  }
  SendCallback done = std::move(it->second.done);
  pending_acks_.erase(it);
  if (success) {
    ctx_.stats.acked_confirmed++;
  } else {
    ctx_.stats.acked_failed++;
  }
  if (done) done(success);
}

bool TransportLayer::acked_seen_before(Address origin, std::uint16_t packet_id) {
  const auto key = std::pair{origin, packet_id};
  if (acked_seen_.contains(key)) return true;
  acked_seen_.insert(key);
  acked_seen_order_.push_back(key);
  while (acked_seen_order_.size() > ctx_.config.acked_dedup_cache) {
    acked_seen_.erase(acked_seen_order_.front());
    acked_seen_order_.pop_front();
  }
  return false;
}

// --- Reliable transfers -----------------------------------------------------------

bool TransportLayer::send_reliable(Address destination,
                                   std::vector<std::uint8_t> payload,
                                   SendCallback done, trace::DropReason* why) {
  const auto refuse = [&](trace::DropReason reason) {
    if (why != nullptr) *why = reason;
    if (ctx_.tracer != nullptr) {
      ctx_.trace_refusal(PacketType::Sync, destination, payload.size(), reason);
    }
    return false;
  };
  if (!ctx_.running) return refuse(trace::DropReason::NotRunning);
  if (destination == ctx_.address || destination == kUnassigned ||
      destination == kBroadcast) {
    return refuse(trace::DropReason::InvalidDestination);
  }
  if (payload.empty() ||
      payload.size() > ctx_.config.max_fragment_payload * 0xFFFFULL) {
    return refuse(trace::DropReason::PayloadTooLarge);
  }
  if (!network_.has_route(destination)) {
    ctx_.stats.dropped_no_route++;
    return refuse(trace::DropReason::NoRoute);
  }
  // Allocate a transfer sequence number free for this destination.
  std::optional<std::uint8_t> seq;
  for (int i = 0; i < 256; ++i) {
    const std::uint8_t candidate = next_transfer_seq_++;
    if (!tx_sessions_.contains({destination, candidate})) {
      seq = candidate;
      break;
    }
  }
  // 256 concurrent transfers to one peer exhausts the sequence space.
  if (!seq) return refuse(trace::DropReason::SessionLimit);
  ctx_.stats.transfers_started++;
  if (ctx_.tracer != nullptr) {
    trace::TraceEvent e;
    e.t_us = ctx_.sim.now().us();
    e.node = ctx_.address;
    e.kind = trace::EventKind::TransferStart;
    e.packet_type = static_cast<std::uint8_t>(PacketType::Sync);
    e.origin = ctx_.address;
    e.final_dst = destination;
    e.packet_id = *seq;
    e.bytes = static_cast<std::uint32_t>(payload.size());
    ctx_.tracer->emit(e);
  }
  auto completion = [this, done = std::move(done)](bool success) {
    if (success) {
      ctx_.stats.transfers_completed++;
    } else {
      ctx_.stats.transfers_failed++;
    }
    if (done) done(success);
  };
  tx_sessions_.emplace(
      SessionKey{destination, *seq},
      std::make_unique<ReliableSender>(ctx_.sim, *this, ctx_.config,
                                       destination, *seq, std::move(payload),
                                       std::move(completion), ctx_.rng.next_u64(),
                                       ctx_.tracer, ctx_.address));
  return true;
}

void TransportLayer::dispatch_to_sender(
    Address peer, std::uint8_t seq,
    const std::function<void(ReliableSender&)>& fn) {
  const auto it = tx_sessions_.find({peer, seq});
  if (it == tx_sessions_.end()) return;  // stale control for a finished transfer
  fn(*it->second);
  gc_sessions();
}

void TransportLayer::notify_fragment_progress(const Packet& packet) {
  const auto* fragment = std::get_if<FragmentPacket>(&packet);
  if (fragment == nullptr || fragment->route.origin != ctx_.address) return;
  const auto it = tx_sessions_.find({fragment->route.final_dst, fragment->seq});
  if (it != tx_sessions_.end()) {
    it->second->on_fragment_transmitted(fragment->index);
  }
}

void TransportLayer::gc_sessions() {
  for (auto it = tx_sessions_.begin(); it != tx_sessions_.end();) {
    if (it->second->finished()) {
      // Final accounting before the session disappears.
      ctx_.stats.fragments_retransmitted += it->second->fragments_retransmitted();
      it = tx_sessions_.erase(it);
    } else {
      ++it;
    }
  }
  std::erase_if(rx_sessions_, [](const auto& kv) { return kv.second->expired(); });
}

// --- RX dispatch ------------------------------------------------------------------

void TransportLayer::on_deliver(Packet packet) {
  std::visit(
      [this, &packet](auto& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, SyncPacket>) {
          const SessionKey key{p.route.origin, p.seq};
          auto it = rx_sessions_.find(key);
          if (it != rx_sessions_.end() && it->second->expired()) {
            rx_sessions_.erase(it);
            it = rx_sessions_.end();
          }
          if (it != rx_sessions_.end()) {
            it->second->on_sync(p);
            return;
          }
          if (p.fragment_count == 0) return;  // malformed announcement
          if (rx_sessions_.size() >= ctx_.config.max_rx_sessions) {
            gc_sessions();  // expired sessions may be holding slots
          }
          if (rx_sessions_.size() >= ctx_.config.max_rx_sessions) {
            ctx_.stats.rx_sessions_rejected++;
            if (ctx_.tracer != nullptr) {
              ctx_.trace_packet(trace::EventKind::Drop, packet,
                                trace::DropReason::SessionLimit);
            }
            return;  // no SYNC_ACK: the sender will retry and may find room
          }
          auto delivery = [this, seq = p.seq](Address origin,
                                              std::vector<std::uint8_t> payload) {
            ctx_.stats.transfers_received++;
            if (ctx_.tracer != nullptr) {
              trace::TraceEvent e;
              e.t_us = ctx_.sim.now().us();
              e.node = ctx_.address;
              e.kind = trace::EventKind::Deliver;
              e.packet_type = static_cast<std::uint8_t>(PacketType::Sync);
              e.origin = origin;
              e.final_dst = ctx_.address;
              e.packet_id = seq;
              e.bytes = static_cast<std::uint32_t>(payload.size());
              ctx_.tracer->emit(e);
            }
            if (delivery_.reliable) delivery_.reliable(origin, std::move(payload));
          };
          rx_sessions_.emplace(
              key, std::make_unique<ReliableReceiver>(
                       ctx_.sim, *this, ctx_.config, p.route.origin, p,
                       std::move(delivery), ctx_.tracer, ctx_.address));
        } else if constexpr (std::is_same_v<T, FragmentPacket>) {
          const auto it = rx_sessions_.find(SessionKey{p.route.origin, p.seq});
          if (it != rx_sessions_.end()) it->second->on_fragment(p);
        } else if constexpr (std::is_same_v<T, PollPacket>) {
          const auto it = rx_sessions_.find(SessionKey{p.route.origin, p.seq});
          if (it != rx_sessions_.end()) it->second->on_poll();
        } else if constexpr (std::is_same_v<T, SyncAckPacket>) {
          dispatch_to_sender(p.route.origin, p.seq,
                             [](ReliableSender& s) { s.on_sync_ack(); });
        } else if constexpr (std::is_same_v<T, LostPacket>) {
          dispatch_to_sender(p.route.origin, p.seq,
                             [&p](ReliableSender& s) { s.on_lost(p.missing); });
        } else if constexpr (std::is_same_v<T, DonePacket>) {
          dispatch_to_sender(p.route.origin, p.seq,
                             [](ReliableSender& s) { s.on_done(); });
        } else if constexpr (std::is_same_v<T, AckedDataPacket>) {
          // Acknowledge first — even duplicates, since a duplicate means
          // our previous ACK was lost somewhere on the way back.
          AckPacket ack;
          ack.link = LinkHeader{kUnassigned, ctx_.address, PacketType::Ack};
          ack.route = network_.make_route(p.route.origin);
          ack.acked_id = p.route.packet_id;
          ctx_.stats.acks_sent++;
          if (ctx_.tracer != nullptr) {
            ctx_.trace_packet(trace::EventKind::AckSent, packet);
          }
          submit_control(Packet{ack});
          if (acked_seen_before(p.route.origin, p.route.packet_id)) {
            ctx_.stats.acked_duplicates++;
            if (ctx_.tracer != nullptr) {
              ctx_.trace_packet(trace::EventKind::DuplicateDeliver, packet,
                                trace::DropReason::Duplicate);
            }
            return;
          }
          ctx_.stats.acked_delivered++;
          if (ctx_.tracer != nullptr) {
            ctx_.trace_packet(trace::EventKind::Deliver, packet);
          }
          if (delivery_.datagram) {
            delivery_.datagram(p.route.origin, p.payload,
                               static_cast<std::uint8_t>(p.route.hops + 1));
          }
        } else if constexpr (std::is_same_v<T, AckPacket>) {
          const auto it = pending_acks_.find(p.acked_id);
          if (it != pending_acks_.end() &&
              it->second.packet.route.final_dst == p.route.origin) {
            finish_acked(p.acked_id, true);
          }
        } else if constexpr (std::is_same_v<T, DataPacket> ||
                             std::is_same_v<T, RoutingPacket>) {
          LM_ASSERT(false);  // handled before on_deliver()
        }
      },
      packet);
}

}  // namespace lm::net
