// A virtual half-duplex LoRa transceiver.
//
// Mirrors the driver semantics the original LoRaMesher sees from an SX127x
// through RadioLib: explicit states, continuous receive, asynchronous
// transmit completion, and channel-activity detection (CAD). The protocol
// stack above is written only against this interface plus the simulator
// clock, which is what makes the stack logic hardware-shaped even though the
// medium is simulated.
//
// State rules (enforced with preconditions, as the real driver would fail):
//  * transmit() is legal from Standby or Rx (it preempts reception — any
//    frame currently in the air toward this radio is lost);
//  * start_cad() is legal from Standby or Rx; the radio cannot decode frames
//    while the CAD runs; it lands in Standby when the result is delivered;
//  * a frame is only received if the radio was in Rx continuously from the
//    frame's first preamble symbol to its end (the demodulator must lock on
//    the preamble).
#pragma once

#include <cstdint>
#include <vector>

#include "phy/geometry.h"
#include "radio/channel.h"
#include "radio/radio_interface.h"
#include "radio/radio_types.h"
#include "sim/simulator.h"
#include "support/time.h"

namespace lm::radio {

/// Cumulative per-radio counters.
struct RadioStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  Duration tx_airtime;          // total time spent in Tx
  std::uint64_t rx_frames = 0;  // frames delivered to the listener
  std::uint64_t rx_bytes = 0;
  std::uint64_t cad_runs = 0;
  std::uint64_t cad_busy = 0;   // CAD runs that reported an active channel
};

class VirtualRadio final : public Radio {
 public:
  /// Registers with `channel`; the radio starts in Standby.
  VirtualRadio(sim::Simulator& sim, Channel& channel, RadioId id,
               phy::Position position, RadioConfig config);
  ~VirtualRadio() override;

  VirtualRadio(const VirtualRadio&) = delete;
  VirtualRadio& operator=(const VirtualRadio&) = delete;

  // -- Radio interface (semantics documented in radio_interface.h) -----------
  void set_listener(RadioListener* listener) override { listener_ = listener; }
  void start_receive() override;
  void standby() override;
  void sleep() override;
  bool transmit(std::vector<std::uint8_t> frame) override;
  bool start_cad() override;
  RadioState state() const override { return state_; }
  bool medium_busy() const override;
  const phy::Modulation& modulation() const override {
    return config_.modulation;
  }

  // -- Identity, geometry, configuration -------------------------------------
  RadioId id() const { return id_; }
  const RadioConfig& config() const { return config_; }

  phy::Position position() const { return position_; }
  /// Moves the radio (mobility support) and re-buckets it in the channel's
  /// spatial index. Takes effect for frames that start after the move; a
  /// frame already in flight toward this radio is evaluated against the
  /// position at its end (propagation within one frame is negligible).
  void set_position(phy::Position p);

  const RadioStats& stats() const { return stats_; }

  /// Attaches the flight recorder. Null detaches; the untraced path costs
  /// one branch per event site.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Cumulative time spent in `state` since construction, including the
  /// currently running stretch. Drives the energy model (radio/energy.h).
  Duration time_in_state(RadioState state) const;

  // -- Channel-facing internals (not for protocol code) -----------------------
  /// True when the radio has been in Rx continuously since `t` (inclusive).
  bool listening_since(TimePoint t) const;
  /// Delivers a decoded frame (called by Channel at frame end).
  void deliver(const std::vector<std::uint8_t>& frame, const FrameMeta& meta);
  /// Ends the current transmission (called by Channel).
  void finish_tx();

 private:
  void enter(RadioState next);

  sim::Simulator& sim_;
  Channel& channel_;
  const RadioId id_;
  phy::Position position_;
  RadioConfig config_;
  RadioListener* listener_ = nullptr;
  RadioState state_ = RadioState::Standby;
  TimePoint rx_since_;        // valid while state_ == Rx
  TimePoint tx_started_;      // valid while state_ == Tx
  sim::TimerId cad_timer_ = 0;
  RadioStats stats_;
  trace::Tracer* tracer_ = nullptr;
  TimePoint state_entered_;   // when state_ last changed
  Duration state_time_[5];    // accumulated per RadioState (indexed by value)
};

}  // namespace lm::radio
