// The radio interface the protocol stack is written against.
//
// This is the hardware binding point: everything in src/net (MeshNode, the
// reliable-transfer sessions) and src/baseline drives a `Radio`, never the
// simulator's VirtualRadio directly. Porting LoRaMesher to real hardware
// means implementing this interface over an SX127x driver (see
// docs/PORTING.md); the protocol logic comes along unchanged.
//
// Semantics contract (matching SX127x drivers and VirtualRadio):
//  * half duplex — exactly one state at a time;
//  * transmit()/start_cad() return false instead of preempting an ongoing
//    TX or CAD, and false when asleep;
//  * completions arrive via the registered RadioListener;
//  * a frame is only received if the radio stayed in Rx from the frame's
//    preamble to its end.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/lora_params.h"
#include "radio/radio_types.h"

namespace lm::radio {

class Radio {
 public:
  virtual ~Radio() = default;

  /// Registers the protocol stack for completions. Pass nullptr to detach.
  /// The listener must outlive the radio or be detached first.
  virtual void set_listener(RadioListener* listener) = 0;

  /// Enters continuous receive. No-op when already receiving.
  virtual void start_receive() = 0;
  /// Leaves Rx/Sleep for Standby. Illegal mid-TX / mid-CAD.
  virtual void standby() = 0;
  /// Powers down. Illegal mid-TX / mid-CAD.
  virtual void sleep() = 0;

  /// Starts transmitting (1..kMaxPhyPayload bytes); false if busy/asleep.
  virtual bool transmit(std::vector<std::uint8_t> frame) = 0;
  /// Starts channel-activity detection; false if busy/asleep.
  virtual bool start_cad() = 0;

  /// RSSI/preamble busy hint without leaving Rx (used for soft carrier
  /// sense so an ongoing reception is never aborted by CAD).
  virtual bool medium_busy() const = 0;

  virtual RadioState state() const = 0;
  virtual const phy::Modulation& modulation() const = 0;
};

}  // namespace lm::radio
