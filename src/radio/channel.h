// The shared radio medium connecting all VirtualRadios of a scenario.
//
// Responsibilities:
//  * propagation — per-link mean RSSI from the path-loss model plus static
//    log-normal shadowing (sampled once per link) and per-packet fading;
//  * delivery — when a transmission ends, decide for every candidate
//    receiver whether the frame decodes (sensitivity, SNR waterfall,
//    collision/capture against overlapping transmissions);
//  * carrier sensing — answer CAD queries;
//  * scripted impairments — the testbed can block links or add loss to
//    reproduce topology experiments regardless of geometry.
//
// Collision model (LoRaSim / Croce et al.): an overlapping transmission on
// the same carrier only destroys a frame if (a) it overlaps the frame's
// vulnerable window — from 5 preamble symbols before the sync word to the
// frame end — and (b) the frame's power does not clear the SIR threshold for
// the SF pair (6 dB co-SF capture; strong negative thresholds across SFs).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "phy/geometry.h"
#include "phy/path_loss.h"
#include "radio/radio_types.h"
#include "radio/spatial_index.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "trace/trace_sink.h"

namespace lm::radio {

class VirtualRadio;

/// Propagation environment parameters for a Channel.
struct PropagationConfig {
  /// Mean path loss vs distance; defaults to log-distance n=3.0 (campus-like).
  std::shared_ptr<const phy::PathLossModel> path_loss;
  /// Log-normal shadowing sigma (dB); sampled once per link, symmetric.
  double shadowing_sigma_db = 0.0;
  /// Per-packet fast-fading sigma (dB).
  double fading_sigma_db = 0.0;
  /// Receiver noise figure (dB) used for SNR computation.
  double noise_figure_db = 6.0;

  static PropagationConfig campus();     // log-distance n=3.0, sigma 3 dB
  static PropagationConfig free_space(); // Friis, no shadowing or fading
  static PropagationConfig ideal();      // free space, deterministic decode
};

/// Delivery-policy knobs, distinct from the physics in PropagationConfig.
///
/// With `spatial_index` on (the default), the channel buckets radios and
/// transmissions into a uniform grid whose cell size derives from the link
/// budget, and each frame is only evaluated against receivers inside its
/// maximum decodable range (interference inside a wider noise-relevance
/// radius). Culling is provably conservative — shadowing and fading draws
/// are truncated at ±4 sigma and per-link/per-frame keyed, so indexed and
/// brute-force paths produce bit-identical deliveries, collisions and
/// RSSI/SNR — but the per-receiver drop counters attribute culled receivers
/// to `dropped_out_of_range` instead of walking them individually. Disable
/// for the O(N^2) brute-force sweep (reference semantics, tiny meshes).
struct ChannelConfig {
  bool spatial_index = true;
  /// Grid cell edge in meters; 0 derives it from the registered radios'
  /// link budget (half the widest interference-relevant range).
  double cell_size_m = 0.0;
};

/// Counters describing the fate of every reception opportunity.
struct ChannelStats {
  std::uint64_t frames_transmitted = 0;
  std::uint64_t receptions_delivered = 0;
  std::uint64_t dropped_not_listening = 0;   // receiver not in continuous RX
  std::uint64_t dropped_blocked_link = 0;    // scripted block / extra loss
  std::uint64_t dropped_below_sensitivity = 0;
  std::uint64_t dropped_snr = 0;             // interference-free decode failed
  std::uint64_t dropped_collision = 0;       // lost to an overlapping frame
  std::uint64_t dropped_modulation_mismatch = 0;
  /// Reception opportunities culled by the spatial index: receivers outside
  /// the frame's maximum decodable range, counted in bulk instead of being
  /// walked individually (brute force attributes these to the per-receiver
  /// buckets above). Always 0 with ChannelConfig::spatial_index == false.
  std::uint64_t dropped_out_of_range = 0;
};

class Channel {
 public:
  Channel(sim::Simulator& sim, PropagationConfig config, std::uint64_t seed);
  Channel(sim::Simulator& sim, PropagationConfig config, ChannelConfig policy,
          std::uint64_t seed);
  ~Channel();

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // -- Radio registry (called by VirtualRadio) ------------------------------
  void register_radio(VirtualRadio& radio);
  void unregister_radio(VirtualRadio& radio);
  /// Re-buckets a moved radio in the spatial index (called by
  /// VirtualRadio::set_position with the pre-move position).
  void radio_moved(VirtualRadio& radio, const phy::Position& old_position);

  /// Starts a transmission. Called by VirtualRadio::transmit after it has
  /// entered the Tx state; the channel schedules the end-of-frame event and
  /// calls back `radio.finish_tx()` when the frame leaves the air.
  void begin_tx(VirtualRadio& radio, std::vector<std::uint8_t> frame);

  /// True when a same-modulation transmission is currently on the air and
  /// detectable (RSSI above sensitivity) at `listener`'s location.
  bool carrier_sensed_by(const VirtualRadio& listener) const;

  /// True when any detectable same-modulation transmission overlapped the
  /// interval [since, now] — the CAD model: the detector integrates over its
  /// whole window, so a preamble starting mid-window is still caught.
  bool carrier_sensed_during(const VirtualRadio& listener, TimePoint since) const;

  // -- Scripted link impairments (testbed) ----------------------------------
  /// Forces the link between two radios to drop every frame (both ways).
  void block_link(RadioId a, RadioId b);
  void unblock_link(RadioId a, RadioId b);
  bool is_blocked(RadioId a, RadioId b) const;
  /// Adds independent per-frame loss probability to a link (both ways).
  void set_link_extra_loss(RadioId a, RadioId b, double loss_probability);

  // -- Introspection ---------------------------------------------------------
  /// Mean RSSI (dBm) a frame from `tx` would have at `rx` — path loss and
  /// shadowing, no fading. For tests and topology planning.
  double mean_rssi_dbm(const VirtualRadio& tx, const VirtualRadio& rx) const;

  /// Probability that an isolated frame from `tx` decodes at `rx`,
  /// marginalizing fading analytically is intractable, so this reports the
  /// fading-free decode probability. For topology planning.
  double link_quality(const VirtualRadio& tx, const VirtualRadio& rx) const;

  const ChannelStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ChannelStats{}; }

  /// Transmissions currently on the air. Reception opportunities for these
  /// frames have not been decided yet, so accounting identities over
  /// stats() must exclude them.
  std::size_t in_flight_count() const { return in_flight_n_; }

  const ChannelConfig& policy() const { return policy_; }

  /// Attaches the flight recorder. Null detaches; the untraced hot path
  /// costs one branch per event site.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  sim::Simulator& simulator() { return sim_; }

 private:
  struct Transmission {
    std::uint64_t seq = 0;
    RadioId tx_id = 0;
    phy::Position tx_pos;  // captured at start; mobility within a frame is negligible
    double tx_power_dbm = 0.0;
    double antenna_gain_db = 0.0;
    double frequency_hz = 0.0;
    phy::Modulation mod;
    std::vector<std::uint8_t> frame;
    TimePoint start;
    TimePoint end;
    bool ended = false;  // left the air; kept around for overlap checks
    // Per-receiver fading, derived once per (frame, receiver) pair so that
    // repeated queries (signal vs interference roles) agree.
    std::map<RadioId, double> fading_db;
  };

  // Cached propagation loss (path loss + static shadowing, dB) for one
  // directed tx -> rx link, valid while both endpoints stay at the cached
  // positions. Mobility invalidates naturally: a moved radio fails the
  // position compare and the entry recomputes.
  struct LinkLoss {
    phy::Position tx_pos;
    phy::Position rx_pos;
    double loss_db = 0.0;
    bool valid = false;
  };

  void finish_tx(std::uint64_t seq);
  void trace_reception(const Transmission& t, const VirtualRadio& rx,
                       trace::DropReason reason, double rssi_dbm) const;
  bool detectable_by(const Transmission& t, const VirtualRadio& listener) const;
  void evaluate_reception(const Transmission& t, VirtualRadio& rx);
  double rssi_with_fading(Transmission& t, const VirtualRadio& rx);
  double link_shadowing_db(RadioId a, RadioId b) const;
  double propagation_loss_db(RadioId tx_id, const phy::Position& tx_pos,
                             const VirtualRadio& rx) const;
  double mean_rssi_from(const Transmission& t, const VirtualRadio& rx) const;
  void prune_history();

  // -- Spatial-index internals ----------------------------------------------
  /// Builds both grids on first use (cell size frozen then); incremental
  /// updates keep them fresh afterwards. Const because queries are
  /// logically read-only; the grids are caches.
  void ensure_grids() const;
  double derive_cell_size_m() const;
  /// Radius beyond which `t` is provably undecodable by any receiver, even
  /// with every stochastic term at its +4-sigma clamp.
  double decode_radius_m(const Transmission& t) const;
  /// Truncated (±4 sigma) zero-mean normal derived from (tag, a, b) — the
  /// same value regardless of evaluation order, which is what makes culling
  /// RNG-transparent.
  double derived_normal_db(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                           double sigma) const;

  sim::Simulator& sim_;
  PropagationConfig config_;
  ChannelConfig policy_;
  const std::uint64_t seed_;
  mutable Rng rng_;
  std::vector<VirtualRadio*> radios_;
  // All transmissions still relevant: on the air (`!ended`) or recently
  // ended, kept for overlap checks. Deque gives stable addresses, so the
  // transmission grid can hold pointers.
  std::deque<Transmission> active_;
  std::size_t in_flight_n_ = 0;
  mutable std::map<std::pair<RadioId, RadioId>, double> shadowing_;
  mutable std::unordered_map<std::uint64_t, LinkLoss> link_loss_;  // (tx<<32)|rx
  std::map<std::pair<RadioId, RadioId>, double> extra_loss_;
  std::map<std::pair<RadioId, RadioId>, bool> blocked_;
  ChannelStats stats_;
  trace::Tracer* tracer_ = nullptr;
  std::uint64_t next_seq_ = 1;
  Duration longest_airtime_;  // longest frame seen; bounds the history scan

  // Spatial index state. Registration-order ordinals make the indexed
  // delivery sweep visit candidates in exactly the brute-force order, so
  // the sequential RNG draws (extra-loss, decode) line up bit-for-bit.
  mutable SpatialGrid<VirtualRadio> radio_grid_;
  mutable SpatialGrid<Transmission> tx_grid_;
  mutable bool grids_ready_ = false;
  std::unordered_map<RadioId, std::pair<VirtualRadio*, std::uint64_t>> by_id_;
  std::uint64_t next_ordinal_ = 0;
  // Monotone link-budget maxima over every radio ever registered; shrinking
  // them on unregister is never needed for correctness (only query cost).
  double max_radio_eirp_dbm_ = -300.0;
  double max_rx_gain_db_ = 0.0;
  double min_mod_sensitivity_dbm_ = 0.0;
  mutable std::vector<std::pair<std::uint64_t, VirtualRadio*>> candidates_;
};

}  // namespace lm::radio
