#include "radio/channel.h"

#include <algorithm>
#include <cmath>

#include "phy/airtime.h"
#include "phy/reception.h"
#include "radio/virtual_radio.h"
#include "support/assert.h"
#include "support/log.h"

namespace lm::radio {

namespace {

std::pair<RadioId, RadioId> link_key(RadioId a, RadioId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

std::uint64_t directed_key(RadioId tx, RadioId rx) {
  return (static_cast<std::uint64_t>(tx) << 32) | rx;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Stream tags keeping shadowing and fading draws on disjoint substreams.
constexpr std::uint64_t kShadowingTag = 0x5AD0'00D1;
constexpr std::uint64_t kFadingTag = 0xFAD3'00D2;

// Shadowing/fading samples are clamped to ±4 sigma. This bounds the
// strongest possible stochastic boost, which is what lets the spatial index
// derive a hard maximum decodable range (P(|z| > 4) ~ 6e-5 of the
// distribution is folded onto the clamp — far below every other modeling
// error in a log-normal channel).
constexpr double kSigmaClamp = 4.0;

}  // namespace

PropagationConfig PropagationConfig::campus() {
  PropagationConfig c;
  c.path_loss = phy::make_log_distance(3.0, 40.0);
  c.shadowing_sigma_db = 3.0;
  c.fading_sigma_db = 1.5;
  return c;
}

PropagationConfig PropagationConfig::free_space() {
  PropagationConfig c;
  c.path_loss = phy::make_free_space();
  c.shadowing_sigma_db = 0.0;
  c.fading_sigma_db = 0.0;
  return c;
}

PropagationConfig PropagationConfig::ideal() { return free_space(); }

Channel::Channel(sim::Simulator& sim, PropagationConfig config,
                 std::uint64_t seed)
    : Channel(sim, std::move(config), ChannelConfig{}, seed) {}

Channel::Channel(sim::Simulator& sim, PropagationConfig config,
                 ChannelConfig policy, std::uint64_t seed)
    : sim_(sim),
      config_(std::move(config)),
      policy_(policy),
      seed_(seed),
      rng_(seed) {
  LM_REQUIRE(config_.path_loss != nullptr);
  LM_REQUIRE(config_.shadowing_sigma_db >= 0.0);
  LM_REQUIRE(config_.fading_sigma_db >= 0.0);
  LM_REQUIRE(policy_.cell_size_m >= 0.0);
}

Channel::~Channel() = default;

void Channel::register_radio(VirtualRadio& radio) {
  LM_REQUIRE(!by_id_.contains(radio.id()));
  radios_.push_back(&radio);
  by_id_.emplace(radio.id(), std::pair{&radio, next_ordinal_++});
  max_radio_eirp_dbm_ =
      std::max(max_radio_eirp_dbm_,
               radio.config().tx_power_dbm + radio.config().antenna_gain_db);
  max_rx_gain_db_ = std::max(max_rx_gain_db_, radio.config().antenna_gain_db);
  min_mod_sensitivity_dbm_ = std::min(
      min_mod_sensitivity_dbm_,
      phy::sensitivity_dbm(radio.modulation().sf, radio.modulation().bw));
  if (grids_ready_) radio_grid_.insert(&radio, radio.position());
}

void Channel::unregister_radio(VirtualRadio& radio) {
  std::erase(radios_, &radio);
  if (by_id_.erase(radio.id()) > 0 && grids_ready_) {
    radio_grid_.remove(&radio, radio.position());
  }
}

void Channel::radio_moved(VirtualRadio& radio, const phy::Position& old_position) {
  if (grids_ready_) radio_grid_.move(&radio, old_position, radio.position());
}

double Channel::derive_cell_size_m() const {
  // The widest query any frame can issue: the interference-relevance radius
  // for the strongest registered transmitter against the most sensitive
  // modulation in play, with every stochastic term at its clamp and the
  // 6 dB co-SF capture allowance. Half of it balances bucket occupancy
  // against the number of cells a query touches.
  const double margin_db = kSigmaClamp * (config_.shadowing_sigma_db +
                                          config_.fading_sigma_db);
  const double budget_db = max_radio_eirp_dbm_ + max_rx_gain_db_ + margin_db -
                           (min_mod_sensitivity_dbm_ - 6.0);
  const double range = config_.path_loss->max_range_m(budget_db);
  return std::max(range / 2.0, 1.0);
}

void Channel::ensure_grids() const {
  if (!policy_.spatial_index || grids_ready_) return;
  const double cell =
      policy_.cell_size_m > 0.0 ? policy_.cell_size_m : derive_cell_size_m();
  radio_grid_.reset(cell);
  for (VirtualRadio* r : radios_) radio_grid_.insert(r, r->position());
  tx_grid_.reset(cell);
  for (const Transmission& t : active_) {
    tx_grid_.insert(const_cast<Transmission*>(&t), t.tx_pos);
  }
  grids_ready_ = true;
}

double Channel::decode_radius_m(const Transmission& t) const {
  const double margin_db = kSigmaClamp * (config_.shadowing_sigma_db +
                                          config_.fading_sigma_db);
  const double budget_db = t.tx_power_dbm + t.antenna_gain_db +
                           max_rx_gain_db_ + margin_db -
                           phy::sensitivity_dbm(t.mod.sf, t.mod.bw);
  return config_.path_loss->max_range_m(budget_db);
}

double Channel::derived_normal_db(std::uint64_t tag, std::uint64_t a,
                                  std::uint64_t b, double sigma) const {
  if (sigma == 0.0) return 0.0;
  Rng stream(splitmix64(seed_ ^ splitmix64(tag ^ splitmix64(a ^ splitmix64(b)))));
  return std::clamp(stream.normal(0.0, sigma), -kSigmaClamp * sigma,
                    kSigmaClamp * sigma);
}

void Channel::begin_tx(VirtualRadio& radio, std::vector<std::uint8_t> frame) {
  ensure_grids();
  Transmission t;
  t.seq = next_seq_++;
  t.tx_id = radio.id();
  t.tx_pos = radio.position();
  t.tx_power_dbm = radio.config().tx_power_dbm;
  t.antenna_gain_db = radio.config().antenna_gain_db;
  t.frequency_hz = radio.config().frequency_hz;
  t.mod = radio.modulation();
  t.start = sim_.now();
  const Duration airtime = phy::time_on_air(t.mod, frame.size());
  t.end = t.start + airtime;
  t.frame = std::move(frame);
  if (airtime > longest_airtime_) longest_airtime_ = airtime;
  stats_.frames_transmitted++;
  if (tracer_ != nullptr) {
    trace::TraceEvent e;
    e.t_us = t.start.us();
    e.node = t.tx_id;
    e.kind = trace::EventKind::TxStart;
    e.bytes = static_cast<std::uint32_t>(t.frame.size());
    e.tx_seq = t.seq;
    e.aux_us = airtime.us();
    tracer_->emit(e);
  }

  const std::uint64_t seq = t.seq;
  active_.push_back(std::move(t));
  ++in_flight_n_;
  if (grids_ready_) tx_grid_.insert(&active_.back(), active_.back().tx_pos);
  sim_.schedule_at(active_.back().end, [this, seq] { finish_tx(seq); });
}

void Channel::finish_tx(std::uint64_t seq) {
  auto it = std::find_if(active_.begin(), active_.end(),
                         [seq](const Transmission& t) { return t.seq == seq; });
  LM_ASSERT(it != active_.end() && !it->ended);
  it->ended = true;
  --in_flight_n_;
  Transmission& frame = *it;  // deque: address stable until pruned
  if (tracer_ != nullptr) {
    trace::TraceEvent e;
    e.t_us = sim_.now().us();
    e.node = frame.tx_id;
    e.kind = trace::EventKind::TxEnd;
    e.bytes = static_cast<std::uint32_t>(frame.frame.size());
    e.tx_seq = frame.seq;
    tracer_->emit(e);
  }

  // Return the transmitter to Standby first so its stack can re-arm; a frame
  // it starts *now* cannot overlap the one that just ended.
  if (const auto tx_it = by_id_.find(frame.tx_id); tx_it != by_id_.end()) {
    tx_it->second.first->finish_tx();
  }

  if (policy_.spatial_index) {
    ensure_grids();
    // The candidate set — everything inside the provable maximum decodable
    // range — is the snapshot: deliveries may trigger immediate responses,
    // and those must not invalidate this iteration. Receivers outside it
    // are tallied in bulk; they could not have decoded the frame.
    const std::size_t others_total = radios_.size() - 1;
    candidates_.clear();
    radio_grid_.for_each_within(
        frame.tx_pos, decode_radius_m(frame), [&](VirtualRadio* r) {
          candidates_.emplace_back(by_id_.find(r->id())->second.second, r);
        });
    // Registration order = brute-force evaluation order; keeps the
    // sequential extra-loss/decode RNG draws bit-identical to brute force.
    std::sort(candidates_.begin(), candidates_.end());
    std::size_t others_seen = 0;
    for (auto& [ordinal, rx] : candidates_) {
      (void)ordinal;
      if (rx->id() == frame.tx_id) continue;
      ++others_seen;
      evaluate_reception(frame, *rx);
    }
    const std::size_t culled = others_total - others_seen;
    stats_.dropped_out_of_range += culled;
    if (tracer_ != nullptr && culled > 0) {
      // Culled receivers are tallied in bulk, matching the stats counter:
      // one event, `bytes` carrying how many opportunities it covers.
      trace::TraceEvent e;
      e.t_us = sim_.now().us();
      e.kind = trace::EventKind::ChannelDrop;
      e.reason = trace::DropReason::OutOfRange;
      e.bytes = static_cast<std::uint32_t>(culled);
      e.tx_seq = frame.seq;
      tracer_->emit(e);
    }
  } else {
    // Snapshot the radio list: deliveries may trigger immediate responses,
    // and those must not invalidate this iteration.
    const std::vector<VirtualRadio*> receivers = radios_;
    for (VirtualRadio* rx : receivers) {
      if (rx->id() != frame.tx_id) evaluate_reception(frame, *rx);
    }
  }
  prune_history();
}

double Channel::link_shadowing_db(RadioId a, RadioId b) const {
  if (config_.shadowing_sigma_db == 0.0) return 0.0;
  const auto key = link_key(a, b);
  auto it = shadowing_.find(key);
  if (it == shadowing_.end()) {
    // Derived (not sequential) draw: the value depends only on the link and
    // the channel seed, so whether or when the spatial index visits this
    // link cannot shift any other draw.
    it = shadowing_
             .emplace(key, derived_normal_db(kShadowingTag, key.first,
                                             key.second,
                                             config_.shadowing_sigma_db))
             .first;
  }
  return it->second;
}

double Channel::propagation_loss_db(RadioId tx_id, const phy::Position& tx_pos,
                                    const VirtualRadio& rx) const {
  // Path loss + static shadowing only depend on the endpoints' positions,
  // which are stable across thousands of frames in a typical scenario —
  // cache per directed link and re-validate by position compare (mobility
  // moves a radio, the compare fails, the entry recomputes).
  LinkLoss& e = link_loss_[directed_key(tx_id, rx.id())];
  if (!e.valid || e.tx_pos != tx_pos || e.rx_pos != rx.position()) {
    e.tx_pos = tx_pos;
    e.rx_pos = rx.position();
    e.loss_db = config_.path_loss->path_loss_db(phy::distance_m(tx_pos, e.rx_pos)) +
                link_shadowing_db(tx_id, rx.id());
    e.valid = true;
  }
  return e.loss_db;
}

double Channel::mean_rssi_from(const Transmission& t, const VirtualRadio& rx) const {
  return t.tx_power_dbm + t.antenna_gain_db + rx.config().antenna_gain_db -
         propagation_loss_db(t.tx_id, t.tx_pos, rx);
}

double Channel::rssi_with_fading(Transmission& t, const VirtualRadio& rx) {
  double fading = 0.0;
  if (config_.fading_sigma_db > 0.0) {
    auto it = t.fading_db.find(rx.id());
    if (it == t.fading_db.end()) {
      it = t.fading_db
               .emplace(rx.id(), derived_normal_db(kFadingTag, t.seq, rx.id(),
                                                   config_.fading_sigma_db))
               .first;
    }
    fading = it->second;
  }
  return mean_rssi_from(t, rx) + fading;
}

void Channel::trace_reception(const Transmission& t, const VirtualRadio& rx,
                              trace::DropReason reason, double rssi_dbm) const {
  trace::TraceEvent e;
  e.t_us = sim_.now().us();
  e.node = rx.id();
  e.kind = reason == trace::DropReason::None ? trace::EventKind::ChannelDeliver
                                             : trace::EventKind::ChannelDrop;
  e.reason = reason;
  e.bytes = static_cast<std::uint32_t>(t.frame.size());
  e.tx_seq = t.seq;
  e.value = rssi_dbm;
  tracer_->emit(e);
}

void Channel::evaluate_reception(const Transmission& t, VirtualRadio& rx) {
  // Different carrier: radios on other channels neither decode nor suffer
  // interference (channel spacing gives effectively complete rejection).
  if (rx.config().frequency_hz != t.frequency_hz) return;

  if (is_blocked(t.tx_id, rx.id())) {
    stats_.dropped_blocked_link++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::BlockedLink, 0.0);
    }
    return;
  }

  if (rx.modulation().sf != t.mod.sf || rx.modulation().bw != t.mod.bw) {
    stats_.dropped_modulation_mismatch++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::ModulationMismatch, 0.0);
    }
    return;
  }

  // Cheap state checks before any propagation math: a radio that was not in
  // continuous RX for the whole frame cannot decode it no matter the RSSI,
  // so skip the path-loss/fading work entirely.
  if (!rx.listening_since(t.start)) {
    stats_.dropped_not_listening++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::NotListening, 0.0);
    }
    return;
  }

  // Find the (mutable) transmission record for fading caching. `t` lives in
  // active_, so this const_cast only unlocks the cache field.
  auto& frame = const_cast<Transmission&>(t);
  const double rssi = rssi_with_fading(frame, rx);
  if (rssi < phy::sensitivity_dbm(t.mod.sf, t.mod.bw)) {
    stats_.dropped_below_sensitivity++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::BelowSensitivity, rssi);
    }
    return;
  }

  const auto loss_it = extra_loss_.find(link_key(t.tx_id, rx.id()));
  if (loss_it != extra_loss_.end() && rng_.bernoulli(loss_it->second)) {
    stats_.dropped_blocked_link++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::BlockedLink, rssi);
    }
    return;
  }

  // Collision check over the vulnerable window: the receiver tolerates
  // interference that dies out before the last 5 preamble symbols (it can
  // still lock), but not during sync/payload.
  const Duration t_sym = t.mod.symbol_time();
  TimePoint vulnerable_start = t.start + phy::preamble_time(t.mod) - 5 * t_sym;
  if (vulnerable_start < t.start) vulnerable_start = t.start;

  auto overlaps_vulnerable = [&](const Transmission& o) {
    return o.start < t.end && o.end > vulnerable_start;
  };
  auto collides_with = [&](Transmission& o) {
    if (o.seq == t.seq || o.tx_id == rx.id()) return false;
    if (o.frequency_hz != t.frequency_hz) return false;
    if (!overlaps_vulnerable(o)) return false;
    const double o_rssi = rssi_with_fading(o, rx);
    return rssi - o_rssi < phy::sir_threshold_db(t.mod.sf, o.mod.sf);
  };

  bool collided = false;
  if (policy_.spatial_index) {
    // Noise-relevance culling: an interferer weaker at rx than
    // rssi - max SIR threshold can never destroy this frame, so only the
    // co-located slice of the traffic is touched. Collision is an
    // existence check with no sequential RNG, so visit order is free.
    const double floor_dbm = rssi - phy::max_sir_threshold_db(t.mod.sf);
    const double margin_db = kSigmaClamp * (config_.shadowing_sigma_db +
                                            config_.fading_sigma_db);
    const double radius = config_.path_loss->max_range_m(
        max_radio_eirp_dbm_ + rx.config().antenna_gain_db + margin_db -
        floor_dbm);
    tx_grid_.for_each_within(rx.position(), radius, [&](Transmission* o) {
      if (!collided && collides_with(*o)) collided = true;
    });
  } else {
    for (Transmission& o : active_) {
      if (collides_with(o)) {
        collided = true;
        break;
      }
    }
  }
  if (collided) {
    stats_.dropped_collision++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::Collision, rssi);
    }
    return;
  }

  const double snr = phy::snr_db(rssi, t.mod.bw, config_.noise_figure_db);
  if (!rng_.bernoulli(phy::decode_probability(snr, t.mod.sf))) {
    stats_.dropped_snr++;
    if (tracer_ != nullptr) {
      trace_reception(t, rx, trace::DropReason::SnrDecode, rssi);
    }
    return;
  }

  FrameMeta meta;
  meta.rssi_dbm = rssi;
  meta.snr_db = snr;
  meta.start = t.start;
  meta.end = t.end;
  meta.transmitter = t.tx_id;
  stats_.receptions_delivered++;
  if (tracer_ != nullptr) {
    trace_reception(t, rx, trace::DropReason::None, rssi);
  }
  rx.deliver(t.frame, meta);
}

bool Channel::detectable_by(const Transmission& t,
                            const VirtualRadio& listener) const {
  if (t.tx_id == listener.id()) return false;
  if (t.frequency_hz != listener.config().frequency_hz) return false;
  // SX127x CAD correlates against the configured SF only.
  if (t.mod.sf != listener.modulation().sf ||
      t.mod.bw != listener.modulation().bw) {
    return false;
  }
  if (is_blocked(t.tx_id, listener.id())) return false;
  return mean_rssi_from(t, listener) >= phy::sensitivity_dbm(t.mod.sf, t.mod.bw);
}

bool Channel::carrier_sensed_by(const VirtualRadio& listener) const {
  return carrier_sensed_during(listener, sim_.now());
}

bool Channel::carrier_sensed_during(const VirtualRadio& listener,
                                    TimePoint since) const {
  // On-air transmissions overlap [since, now] by construction; an ended one
  // only counts when it was still on the air after `since`.
  auto in_window = [&](const Transmission& t) {
    return !t.ended || t.end > since;
  };
  if (policy_.spatial_index) {
    ensure_grids();
    // Detection needs mean RSSI (no fading) at or above the listener-SF
    // sensitivity; the shadowing clamp bounds the reachable distance.
    const double radius = config_.path_loss->max_range_m(
        max_radio_eirp_dbm_ + listener.config().antenna_gain_db +
        kSigmaClamp * config_.shadowing_sigma_db -
        phy::sensitivity_dbm(listener.modulation().sf,
                             listener.modulation().bw));
    bool sensed = false;
    tx_grid_.for_each_within(
        listener.position(), radius, [&](Transmission* t) {
          if (!sensed && in_window(*t) && detectable_by(*t, listener)) {
            sensed = true;
          }
        });
    return sensed;
  }
  for (const Transmission& t : active_) {
    if (in_window(t) && detectable_by(t, listener)) return true;
  }
  return false;
}

void Channel::block_link(RadioId a, RadioId b) { blocked_[link_key(a, b)] = true; }

void Channel::unblock_link(RadioId a, RadioId b) { blocked_.erase(link_key(a, b)); }

bool Channel::is_blocked(RadioId a, RadioId b) const {
  const auto it = blocked_.find(link_key(a, b));
  return it != blocked_.end() && it->second;
}

void Channel::set_link_extra_loss(RadioId a, RadioId b, double loss_probability) {
  LM_REQUIRE(loss_probability >= 0.0 && loss_probability <= 1.0);
  if (loss_probability == 0.0) {
    extra_loss_.erase(link_key(a, b));
  } else {
    extra_loss_[link_key(a, b)] = loss_probability;
  }
}

double Channel::mean_rssi_dbm(const VirtualRadio& tx, const VirtualRadio& rx) const {
  Transmission t;
  t.tx_id = tx.id();
  t.tx_pos = tx.position();
  t.tx_power_dbm = tx.config().tx_power_dbm;
  t.antenna_gain_db = tx.config().antenna_gain_db;
  return mean_rssi_from(t, rx);
}

double Channel::link_quality(const VirtualRadio& tx, const VirtualRadio& rx) const {
  if (is_blocked(tx.id(), rx.id())) return 0.0;
  if (tx.config().frequency_hz != rx.config().frequency_hz) return 0.0;
  if (tx.modulation().sf != rx.modulation().sf ||
      tx.modulation().bw != rx.modulation().bw) {
    return 0.0;
  }
  const double rssi = mean_rssi_dbm(tx, rx);
  const auto& mod = tx.modulation();
  if (rssi < phy::sensitivity_dbm(mod.sf, mod.bw)) return 0.0;
  double quality = phy::decode_probability(
      phy::snr_db(rssi, mod.bw, config_.noise_figure_db), mod.sf);
  const auto loss_it = extra_loss_.find(link_key(tx.id(), rx.id()));
  if (loss_it != extra_loss_.end()) quality *= 1.0 - loss_it->second;
  return quality;
}

void Channel::prune_history() {
  // A record can still matter in two ways: as an interferer for a frame
  // currently in flight (that frame started at most longest_airtime_ ago, and
  // a record only overlaps its vulnerable window if it ended after the
  // frame's start), or as a carrier for a CAD window (which is always shorter
  // than any same-SF frame's airtime). Both bounds retire anything that
  // ended more than one longest-frame-airtime ago. An on-air frame at the
  // front cannot block anything prunable behind it: everything scheduled
  // after it started inside the horizon too.
  const TimePoint horizon = sim_.now() - longest_airtime_;
  while (!active_.empty() && active_.front().ended &&
         active_.front().end < horizon) {
    if (grids_ready_) tx_grid_.remove(&active_.front(), active_.front().tx_pos);
    active_.pop_front();
  }
}

}  // namespace lm::radio
