#include "radio/channel.h"

#include <algorithm>

#include "phy/airtime.h"
#include "phy/reception.h"
#include "radio/virtual_radio.h"
#include "support/assert.h"
#include "support/log.h"

namespace lm::radio {

namespace {

std::pair<RadioId, RadioId> link_key(RadioId a, RadioId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

std::uint64_t directed_key(RadioId tx, RadioId rx) {
  return (static_cast<std::uint64_t>(tx) << 32) | rx;
}

}  // namespace

PropagationConfig PropagationConfig::campus() {
  PropagationConfig c;
  c.path_loss = phy::make_log_distance(3.0, 40.0);
  c.shadowing_sigma_db = 3.0;
  c.fading_sigma_db = 1.5;
  return c;
}

PropagationConfig PropagationConfig::free_space() {
  PropagationConfig c;
  c.path_loss = phy::make_free_space();
  c.shadowing_sigma_db = 0.0;
  c.fading_sigma_db = 0.0;
  return c;
}

PropagationConfig PropagationConfig::ideal() { return free_space(); }

Channel::Channel(sim::Simulator& sim, PropagationConfig config, std::uint64_t seed)
    : sim_(sim), config_(std::move(config)), rng_(seed) {
  LM_REQUIRE(config_.path_loss != nullptr);
  LM_REQUIRE(config_.shadowing_sigma_db >= 0.0);
  LM_REQUIRE(config_.fading_sigma_db >= 0.0);
}

Channel::~Channel() = default;

void Channel::register_radio(VirtualRadio& radio) {
  for (const VirtualRadio* r : radios_) {
    LM_REQUIRE(r->id() != radio.id());
  }
  radios_.push_back(&radio);
}

void Channel::unregister_radio(VirtualRadio& radio) {
  std::erase(radios_, &radio);
}

void Channel::begin_tx(VirtualRadio& radio, std::vector<std::uint8_t> frame) {
  Transmission t;
  t.seq = next_seq_++;
  t.tx_id = radio.id();
  t.tx_pos = radio.position();
  t.tx_power_dbm = radio.config().tx_power_dbm;
  t.antenna_gain_db = radio.config().antenna_gain_db;
  t.frequency_hz = radio.config().frequency_hz;
  t.mod = radio.modulation();
  t.start = sim_.now();
  const Duration airtime = phy::time_on_air(t.mod, frame.size());
  t.end = t.start + airtime;
  t.frame = std::move(frame);
  if (airtime > longest_airtime_) longest_airtime_ = airtime;
  stats_.frames_transmitted++;

  const std::uint64_t seq = t.seq;
  in_flight_.push_back(std::move(t));
  sim_.schedule_at(in_flight_.back().end, [this, seq] { finish_tx(seq); });
}

void Channel::finish_tx(std::uint64_t seq) {
  auto it = std::find_if(in_flight_.begin(), in_flight_.end(),
                         [seq](const Transmission& t) { return t.seq == seq; });
  LM_ASSERT(it != in_flight_.end());
  Transmission t = std::move(*it);
  in_flight_.erase(it);

  // Return the transmitter to Standby first so its stack can re-arm; a frame
  // it starts *now* cannot overlap the one that just ended.
  for (VirtualRadio* r : radios_) {
    if (r->id() == t.tx_id) {
      r->finish_tx();
      break;
    }
  }

  // Snapshot the radio list: deliveries may trigger immediate responses, and
  // those must not invalidate this iteration.
  const std::vector<VirtualRadio*> receivers = radios_;
  history_.push_back(std::move(t));
  Transmission& frame = history_.back();
  for (VirtualRadio* rx : receivers) {
    if (rx->id() != frame.tx_id) evaluate_reception(frame, *rx);
  }
  prune_history();
}

double Channel::link_shadowing_db(RadioId a, RadioId b) const {
  if (config_.shadowing_sigma_db == 0.0) return 0.0;
  const auto key = link_key(a, b);
  auto it = shadowing_.find(key);
  if (it == shadowing_.end()) {
    it = shadowing_.emplace(key, rng_.normal(0.0, config_.shadowing_sigma_db)).first;
  }
  return it->second;
}

double Channel::propagation_loss_db(RadioId tx_id, const phy::Position& tx_pos,
                                    const VirtualRadio& rx) const {
  // Path loss + static shadowing only depend on the endpoints' positions,
  // which are stable across thousands of frames in a typical scenario —
  // cache per directed link and re-validate by position compare (mobility
  // moves a radio, the compare fails, the entry recomputes).
  LinkLoss& e = link_loss_[directed_key(tx_id, rx.id())];
  if (!e.valid || e.tx_pos != tx_pos || e.rx_pos != rx.position()) {
    e.tx_pos = tx_pos;
    e.rx_pos = rx.position();
    e.loss_db = config_.path_loss->path_loss_db(phy::distance_m(tx_pos, e.rx_pos)) +
                link_shadowing_db(tx_id, rx.id());
    e.valid = true;
  }
  return e.loss_db;
}

double Channel::mean_rssi_from(const Transmission& t, const VirtualRadio& rx) const {
  return t.tx_power_dbm + t.antenna_gain_db + rx.config().antenna_gain_db -
         propagation_loss_db(t.tx_id, t.tx_pos, rx);
}

double Channel::rssi_with_fading(Transmission& t, const VirtualRadio& rx) {
  double fading = 0.0;
  if (config_.fading_sigma_db > 0.0) {
    auto it = t.fading_db.find(rx.id());
    if (it == t.fading_db.end()) {
      it = t.fading_db
               .emplace(rx.id(),
                        phy::sample_fading_db(rng_, config_.fading_sigma_db))
               .first;
    }
    fading = it->second;
  }
  return mean_rssi_from(t, rx) + fading;
}

void Channel::evaluate_reception(const Transmission& t, VirtualRadio& rx) {
  // Different carrier: radios on other channels neither decode nor suffer
  // interference (channel spacing gives effectively complete rejection).
  if (rx.config().frequency_hz != t.frequency_hz) return;

  if (is_blocked(t.tx_id, rx.id())) {
    stats_.dropped_blocked_link++;
    return;
  }

  if (rx.modulation().sf != t.mod.sf || rx.modulation().bw != t.mod.bw) {
    stats_.dropped_modulation_mismatch++;
    return;
  }

  // Cheap state checks before any propagation math: a radio that was not in
  // continuous RX for the whole frame cannot decode it no matter the RSSI,
  // so skip the path-loss/fading work (and the fading RNG draw) entirely.
  if (!rx.listening_since(t.start)) {
    stats_.dropped_not_listening++;
    return;
  }

  // Find the (mutable) transmission record for fading caching. `t` lives in
  // history_, so this const_cast only unlocks the cache field.
  auto& frame = const_cast<Transmission&>(t);
  const double rssi = rssi_with_fading(frame, rx);
  if (rssi < phy::sensitivity_dbm(t.mod.sf, t.mod.bw)) {
    stats_.dropped_below_sensitivity++;
    return;
  }

  const auto loss_it = extra_loss_.find(link_key(t.tx_id, rx.id()));
  if (loss_it != extra_loss_.end() && rng_.bernoulli(loss_it->second)) {
    stats_.dropped_blocked_link++;
    return;
  }

  // Collision check over the vulnerable window: the receiver tolerates
  // interference that dies out before the last 5 preamble symbols (it can
  // still lock), but not during sync/payload.
  const Duration t_sym = t.mod.symbol_time();
  TimePoint vulnerable_start = t.start + phy::preamble_time(t.mod) - 5 * t_sym;
  if (vulnerable_start < t.start) vulnerable_start = t.start;

  auto overlaps_vulnerable = [&](const Transmission& o) {
    return o.start < t.end && o.end > vulnerable_start;
  };
  auto collides_with = [&](Transmission& o) {
    if (o.seq == t.seq || o.tx_id == rx.id()) return false;
    if (o.frequency_hz != t.frequency_hz) return false;
    if (!overlaps_vulnerable(o)) return false;
    const double o_rssi = rssi_with_fading(o, rx);
    return rssi - o_rssi < phy::sir_threshold_db(t.mod.sf, o.mod.sf);
  };

  for (Transmission& o : in_flight_) {
    if (collides_with(o)) {
      stats_.dropped_collision++;
      return;
    }
  }
  for (Transmission& o : history_) {
    if (collides_with(o)) {
      stats_.dropped_collision++;
      return;
    }
  }

  const double snr = phy::snr_db(rssi, t.mod.bw, config_.noise_figure_db);
  if (!rng_.bernoulli(phy::decode_probability(snr, t.mod.sf))) {
    stats_.dropped_snr++;
    return;
  }

  FrameMeta meta;
  meta.rssi_dbm = rssi;
  meta.snr_db = snr;
  meta.start = t.start;
  meta.end = t.end;
  meta.transmitter = t.tx_id;
  stats_.receptions_delivered++;
  rx.deliver(t.frame, meta);
}

bool Channel::detectable_by(const Transmission& t,
                            const VirtualRadio& listener) const {
  if (t.tx_id == listener.id()) return false;
  if (t.frequency_hz != listener.config().frequency_hz) return false;
  // SX127x CAD correlates against the configured SF only.
  if (t.mod.sf != listener.modulation().sf ||
      t.mod.bw != listener.modulation().bw) {
    return false;
  }
  if (is_blocked(t.tx_id, listener.id())) return false;
  return mean_rssi_from(t, listener) >= phy::sensitivity_dbm(t.mod.sf, t.mod.bw);
}

bool Channel::carrier_sensed_by(const VirtualRadio& listener) const {
  for (const Transmission& t : in_flight_) {
    if (detectable_by(t, listener)) return true;
  }
  return false;
}

bool Channel::carrier_sensed_during(const VirtualRadio& listener,
                                    TimePoint since) const {
  // Everything in in_flight_ started before now and is still on the air,
  // so it overlaps [since, now] by construction.
  if (carrier_sensed_by(listener)) return true;
  // A short frame may have started *and* ended within the window.
  for (const Transmission& t : history_) {
    if (t.end > since && detectable_by(t, listener)) return true;
  }
  return false;
}

void Channel::block_link(RadioId a, RadioId b) { blocked_[link_key(a, b)] = true; }

void Channel::unblock_link(RadioId a, RadioId b) { blocked_.erase(link_key(a, b)); }

bool Channel::is_blocked(RadioId a, RadioId b) const {
  const auto it = blocked_.find(link_key(a, b));
  return it != blocked_.end() && it->second;
}

void Channel::set_link_extra_loss(RadioId a, RadioId b, double loss_probability) {
  LM_REQUIRE(loss_probability >= 0.0 && loss_probability <= 1.0);
  if (loss_probability == 0.0) {
    extra_loss_.erase(link_key(a, b));
  } else {
    extra_loss_[link_key(a, b)] = loss_probability;
  }
}

double Channel::mean_rssi_dbm(const VirtualRadio& tx, const VirtualRadio& rx) const {
  Transmission t;
  t.tx_id = tx.id();
  t.tx_pos = tx.position();
  t.tx_power_dbm = tx.config().tx_power_dbm;
  t.antenna_gain_db = tx.config().antenna_gain_db;
  return mean_rssi_from(t, rx);
}

double Channel::link_quality(const VirtualRadio& tx, const VirtualRadio& rx) const {
  if (is_blocked(tx.id(), rx.id())) return 0.0;
  if (tx.config().frequency_hz != rx.config().frequency_hz) return 0.0;
  if (tx.modulation().sf != rx.modulation().sf ||
      tx.modulation().bw != rx.modulation().bw) {
    return 0.0;
  }
  const double rssi = mean_rssi_dbm(tx, rx);
  const auto& mod = tx.modulation();
  if (rssi < phy::sensitivity_dbm(mod.sf, mod.bw)) return 0.0;
  double quality = phy::decode_probability(
      phy::snr_db(rssi, mod.bw, config_.noise_figure_db), mod.sf);
  const auto loss_it = extra_loss_.find(link_key(tx.id(), rx.id()));
  if (loss_it != extra_loss_.end()) quality *= 1.0 - loss_it->second;
  return quality;
}

void Channel::prune_history() {
  // A record can still matter in two ways: as an interferer for a frame
  // currently in flight (that frame started at most longest_airtime_ ago, and
  // a record only overlaps its vulnerable window if it ended after the
  // frame's start), or as a carrier for a CAD window (which is always shorter
  // than any same-SF frame's airtime). Both bounds retire anything that
  // ended more than one longest-frame-airtime ago.
  const TimePoint horizon = sim_.now() - longest_airtime_;
  while (!history_.empty() && history_.front().end < horizon) {
    history_.pop_front();
  }
}

}  // namespace lm::radio
