// Uniform-grid spatial index for the channel's delivery and interference
// culling.
//
// Items (radios, transmissions) are bucketed by their position into square
// cells of a fixed size chosen once from the link budget (the maximum
// decodable/interference-relevant range). A range query visits only the
// cells intersecting the query disc, so finding "everything that could
// possibly hear this frame" costs O(candidates) instead of O(N).
//
// The grid is purely an over-approximation device: queries may yield items
// slightly outside the radius (callers re-apply the exact physics), but
// never miss one inside it. Correctness therefore does not depend on the
// cell size — only query cost does.
#pragma once

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "phy/geometry.h"
#include "support/assert.h"

namespace lm::radio {

template <typename T>
class SpatialGrid {
 public:
  /// Clears the grid and fixes the cell edge length (> 0).
  void reset(double cell_size_m) {
    LM_REQUIRE(cell_size_m > 0.0);
    cell_size_m_ = cell_size_m;
    cells_.clear();
    size_ = 0;
  }

  bool initialized() const { return cell_size_m_ > 0.0; }
  double cell_size_m() const { return cell_size_m_; }
  std::size_t size() const { return size_; }

  void insert(T* item, const phy::Position& pos) {
    cells_[key_of(pos)].push_back(item);
    ++size_;
  }

  void remove(T* item, const phy::Position& pos) {
    auto it = cells_.find(key_of(pos));
    LM_ASSERT(it != cells_.end());
    auto& bucket = it->second;
    for (auto b = bucket.begin(); b != bucket.end(); ++b) {
      if (*b == item) {
        bucket.erase(b);
        --size_;
        if (bucket.empty()) cells_.erase(it);
        return;
      }
    }
    LM_ASSERT(false && "item not present at the position it claims");
  }

  /// Relocates an item (mobility). No-op when both positions land in the
  /// same cell.
  void move(T* item, const phy::Position& from, const phy::Position& to) {
    if (key_of(from) == key_of(to)) return;
    remove(item, from);
    insert(item, to);
  }

  /// Calls `fn(T*)` for every item in a cell that intersects the disc of
  /// `radius_m` around `center`. Conservative: items up to one cell
  /// diagonal outside the disc may be visited.
  template <typename Fn>
  void for_each_within(const phy::Position& center, double radius_m,
                       Fn&& fn) const {
    LM_ASSERT(initialized());
    if (radius_m < 0.0) return;
    // A query disc spanning more cells than the grid holds non-empty ones
    // degenerates to a full scan — iterate the buckets directly instead of
    // walking an enormous coordinate range.
    const double cells_across = 2.0 * radius_m / cell_size_m_ + 2.0;
    if (cells_across * cells_across > static_cast<double>(cells_.size()) * 4.0 ||
        cells_across > 1e6) {
      for (const auto& [key, bucket] : cells_) {
        (void)key;
        for (T* item : bucket) fn(item);
      }
      return;
    }
    const std::int64_t cx_lo = coord(center.x - radius_m);
    const std::int64_t cx_hi = coord(center.x + radius_m);
    const std::int64_t cy_lo = coord(center.y - radius_m);
    const std::int64_t cy_hi = coord(center.y + radius_m);
    for (std::int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
      for (std::int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
        // Skip cells whose nearest point is beyond the radius.
        const double dx = axis_distance(center.x, cx);
        const double dy = axis_distance(center.y, cy);
        if (dx * dx + dy * dy > radius_m * radius_m) continue;
        const auto it = cells_.find(pack(cx, cy));
        if (it == cells_.end()) continue;
        for (T* item : it->second) fn(item);
      }
    }
  }

 private:
  std::int64_t coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_size_m_));
  }

  static std::uint64_t pack(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }

  std::uint64_t key_of(const phy::Position& pos) const {
    return pack(coord(pos.x), coord(pos.y));
  }

  /// Distance from `v` to the nearest edge of cell index `c` along one
  /// axis; 0 when `v` lies inside that cell's span.
  double axis_distance(double v, std::int64_t c) const {
    const double lo = static_cast<double>(c) * cell_size_m_;
    const double hi = lo + cell_size_m_;
    if (v < lo) return lo - v;
    if (v > hi) return v - hi;
    return 0.0;
  }

  double cell_size_m_ = 0.0;
  std::unordered_map<std::uint64_t, std::vector<T*>> cells_;
  std::size_t size_ = 0;
};

}  // namespace lm::radio
