// Shared vocabulary types for the virtual radio layer.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/lora_params.h"
#include "support/time.h"

namespace lm::radio {

/// Identifies a radio within a Channel. Distinct from the mesh-layer
/// Address: the radio layer knows nothing about mesh addressing.
using RadioId = std::uint32_t;

/// SX127x-style operating states. Exactly one is active at a time; the
/// device is half-duplex.
enum class RadioState : std::uint8_t {
  Sleep,    // powered down; hears nothing
  Standby,  // idle, ready to change state; hears nothing
  Rx,       // continuous receive
  Tx,       // transmitting a frame
  Cad,      // channel-activity detection in progress
};

const char* to_string(RadioState s);

/// Per-frame reception metadata, mirroring what an SX127x driver reports.
struct FrameMeta {
  double rssi_dbm = 0.0;
  double snr_db = 0.0;
  TimePoint start;            // frame start on air
  TimePoint end;              // frame end on air (== delivery time)
  RadioId transmitter = 0;    // ground truth, for tests/metrics only
};

/// Static configuration of one radio.
struct RadioConfig {
  phy::Modulation modulation;
  double frequency_hz = 868.1e6;
  double tx_power_dbm = 14.0;   // EU868 ERP limit
  double antenna_gain_db = 0.0; // applied on both TX and RX
  double noise_figure_db = 6.0;
};

/// Callbacks from the radio to the protocol stack. All callbacks fire from
/// simulator events; implementations may call back into the radio.
class RadioListener {
 public:
  virtual ~RadioListener() = default;

  /// A frame fully received and decoded. The radio stays in Rx.
  virtual void on_frame_received(const std::vector<std::uint8_t>& frame,
                                 const FrameMeta& meta) = 0;

  /// The frame passed to transmit() finished; radio is now in Standby.
  virtual void on_tx_done() {}

  /// CAD completed; `channel_active` is true when a same-modulation
  /// transmission was detectable. Radio is now in Standby.
  virtual void on_cad_done(bool channel_active) { (void)channel_active; }
};

}  // namespace lm::radio
