#include "radio/virtual_radio.h"

#include "phy/airtime.h"
#include "support/assert.h"
#include "support/log.h"

namespace lm::radio {

const char* to_string(RadioState s) {
  switch (s) {
    case RadioState::Sleep: return "Sleep";
    case RadioState::Standby: return "Standby";
    case RadioState::Rx: return "Rx";
    case RadioState::Tx: return "Tx";
    case RadioState::Cad: return "Cad";
  }
  return "?";
}

VirtualRadio::VirtualRadio(sim::Simulator& sim, Channel& channel, RadioId id,
                           phy::Position position, RadioConfig config)
    : sim_(sim),
      channel_(channel),
      id_(id),
      position_(position),
      config_(config),
      state_entered_(sim.now()) {
  channel_.register_radio(*this);
}

VirtualRadio::~VirtualRadio() { channel_.unregister_radio(*this); }

void VirtualRadio::enter(RadioState next) {
  if (state_ == next) return;
  state_time_[static_cast<std::size_t>(state_)] += sim_.now() - state_entered_;
  state_entered_ = sim_.now();
  if (next == RadioState::Rx) rx_since_ = sim_.now();
  state_ = next;
}

Duration VirtualRadio::time_in_state(RadioState state) const {
  Duration total = state_time_[static_cast<std::size_t>(state)];
  if (state == state_) total += sim_.now() - state_entered_;
  return total;
}

void VirtualRadio::start_receive() {
  LM_REQUIRE(state_ != RadioState::Tx && state_ != RadioState::Cad);
  enter(RadioState::Rx);
}

void VirtualRadio::standby() {
  LM_REQUIRE(state_ != RadioState::Tx && state_ != RadioState::Cad);
  enter(RadioState::Standby);
}

void VirtualRadio::sleep() {
  LM_REQUIRE(state_ != RadioState::Tx && state_ != RadioState::Cad);
  enter(RadioState::Sleep);
}

bool VirtualRadio::transmit(std::vector<std::uint8_t> frame) {
  LM_REQUIRE(!frame.empty());
  LM_REQUIRE(frame.size() <= phy::kMaxPhyPayload);
  if (state_ == RadioState::Tx || state_ == RadioState::Cad ||
      state_ == RadioState::Sleep) {
    return false;
  }
  enter(RadioState::Tx);
  tx_started_ = sim_.now();
  stats_.tx_frames++;
  stats_.tx_bytes += frame.size();
  channel_.begin_tx(*this, std::move(frame));
  return true;
}

bool VirtualRadio::start_cad() {
  if (state_ == RadioState::Tx || state_ == RadioState::Cad ||
      state_ == RadioState::Sleep) {
    return false;
  }
  enter(RadioState::Cad);
  stats_.cad_runs++;
  // The SX127x CAD integrates over its whole window: a transmission present
  // at any point during the ~1.5 symbols is detected. Evaluate at window
  // end so frames starting mid-window are caught too.
  const TimePoint window_start = sim_.now();
  cad_timer_ = sim_.schedule_after(
      phy::cad_time(config_.modulation), [this, window_start] {
        LM_ASSERT(state_ == RadioState::Cad);
        const bool busy = channel_.carrier_sensed_during(*this, window_start);
        if (busy) stats_.cad_busy++;
        if (tracer_ != nullptr) {
          trace::TraceEvent e;
          e.t_us = sim_.now().us();
          e.node = id_;
          e.kind = trace::EventKind::CadDone;
          e.bytes = busy ? 1 : 0;
          tracer_->emit(e);
        }
        enter(RadioState::Standby);
        if (listener_ != nullptr) listener_->on_cad_done(busy);
      });
  return true;
}

bool VirtualRadio::medium_busy() const {
  return channel_.carrier_sensed_by(*this);
}

void VirtualRadio::set_position(phy::Position p) {
  const phy::Position old = position_;
  position_ = p;
  channel_.radio_moved(*this, old);
}

bool VirtualRadio::listening_since(TimePoint t) const {
  return state_ == RadioState::Rx && rx_since_ <= t;
}

void VirtualRadio::deliver(const std::vector<std::uint8_t>& frame,
                           const FrameMeta& meta) {
  LM_ASSERT(state_ == RadioState::Rx);
  stats_.rx_frames++;
  stats_.rx_bytes += frame.size();
  if (listener_ != nullptr) listener_->on_frame_received(frame, meta);
}

void VirtualRadio::finish_tx() {
  LM_ASSERT(state_ == RadioState::Tx);
  stats_.tx_airtime += sim_.now() - tx_started_;
  enter(RadioState::Standby);
  if (listener_ != nullptr) listener_->on_tx_done();
}

}  // namespace lm::radio
