#include "radio/energy.h"

#include "support/assert.h"

namespace lm::radio {

double EnergyProfile::current_for(RadioState state) const {
  switch (state) {
    case RadioState::Sleep: return sleep_ma;
    case RadioState::Standby: return standby_ma;
    case RadioState::Rx: return rx_ma;
    case RadioState::Tx: return tx_ma;
    case RadioState::Cad: return cad_ma;
  }
  LM_ASSERT(false);
}

double charge_consumed_mah(const VirtualRadio& radio, const EnergyProfile& profile) {
  double mah = 0.0;
  for (RadioState state : {RadioState::Sleep, RadioState::Standby, RadioState::Rx,
                           RadioState::Tx, RadioState::Cad}) {
    const double hours = radio.time_in_state(state).seconds_d() / 3600.0;
    mah += profile.current_for(state) * hours;
  }
  return mah;
}

double average_current_ma(const VirtualRadio& radio, const EnergyProfile& profile) {
  Duration total = Duration::zero();
  for (RadioState state : {RadioState::Sleep, RadioState::Standby, RadioState::Rx,
                           RadioState::Tx, RadioState::Cad}) {
    total += radio.time_in_state(state);
  }
  if (total.is_zero()) return 0.0;
  return charge_consumed_mah(radio, profile) / (total.seconds_d() / 3600.0);
}

double battery_life_days(double average_ma, double capacity_mah) {
  LM_REQUIRE(average_ma > 0.0);
  LM_REQUIRE(capacity_mah > 0.0);
  return capacity_mah / average_ma / 24.0;
}

}  // namespace lm::radio
