// Energy model for the virtual radio.
//
// LoRaMesher's target devices are battery-powered, and the protocol keeps
// the radio in continuous receive between transmissions — unlike LoRaWAN
// class A, a mesh router must always listen. This model turns the radio's
// per-state time accounting into charge consumed and projected battery
// life, so experiments can quantify that trade (E10). Current draws follow
// the SX1276 datasheet (band 1, RFO/PA_BOOST at +13 dBm, LnaBoost off).
#pragma once

#include "radio/virtual_radio.h"
#include "support/time.h"

namespace lm::radio {

/// Current draw (mA) per radio state.
struct EnergyProfile {
  double sleep_ma = 0.0002;   // 0.2 uA register-retention sleep
  double standby_ma = 1.6;    // crystal running
  double rx_ma = 11.5;        // RxContinuous, band 1
  double tx_ma = 28.0;        // +13 dBm on PA_BOOST
  double cad_ma = 11.5;       // receiver path active

  /// SX1276 datasheet values (table 10), the radio in the paper's testbed.
  static EnergyProfile sx1276() { return {}; }

  double current_for(RadioState state) const;
};

/// Charge consumed by `radio` since construction, in mAh.
double charge_consumed_mah(const VirtualRadio& radio,
                           const EnergyProfile& profile = EnergyProfile::sx1276());

/// Average current over the radio's lifetime so far, in mA.
double average_current_ma(const VirtualRadio& radio,
                          const EnergyProfile& profile = EnergyProfile::sx1276());

/// Days a battery of `capacity_mah` lasts at `average_ma` constant draw.
double battery_life_days(double average_ma, double capacity_mah);

}  // namespace lm::radio
