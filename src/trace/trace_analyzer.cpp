#include "trace/trace_analyzer.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <set>

namespace lm::trace {

namespace {

constexpr std::uint16_t kBroadcastAddr = 0xFFFF;
constexpr std::uint8_t kRoutingType = 1;
constexpr std::uint8_t kAckedDataType = 9;

bool has_packet_identity(const TraceEvent& e) {
  switch (e.kind) {
    case EventKind::TxStart:
    case EventKind::TxEnd:
    case EventKind::CadDone:
    case EventKind::ChannelDeliver:
    case EventKind::ChannelDrop:
    case EventKind::RouteAdd:
    case EventKind::NodeUp:
    case EventKind::NodeDown:
      return false;
    default:
      return e.origin != 0 || e.packet_type != 0;
  }
}

}  // namespace

TraceAnalyzer::TraceAnalyzer(std::vector<TraceEvent> events)
    : events_(std::move(events)) {
  build_journeys();
}

void TraceAnalyzer::build_journeys() {
  // A node's MeshTx and the channel's TxStart for the same frame are
  // emitted back-to-back at the same timestamp (radio.transmit() runs
  // synchronously under transmit_now()), which is what lets the identity
  // cross the mesh/radio layer boundary without widening the radio API.
  struct LastTx {
    PacketKey key;
    std::int64_t t_us = -1;
  };
  std::map<std::uint32_t, LastTx> last_mesh_tx;

  for (const TraceEvent& e : events_) {
    if (has_packet_identity(e)) {
      const PacketKey key{e.origin, e.packet_id, e.packet_type};
      Journey& j = journeys_[key];
      j.key = key;
      j.events.push_back(e);
      if (e.kind == EventKind::Deliver) j.delivered = true;
      if (e.kind == EventKind::MeshTx) last_mesh_tx[e.node] = LastTx{key, e.t_us};
      continue;
    }
    if (e.kind == EventKind::TxStart) {
      const auto it = last_mesh_tx.find(e.node);
      if (it != last_mesh_tx.end() && it->second.t_us == e.t_us) {
        tx_owner_.emplace(e.tx_seq, it->second.key);
      }
    }
    if (e.kind == EventKind::TxStart || e.kind == EventKind::TxEnd ||
        e.kind == EventKind::ChannelDeliver ||
        e.kind == EventKind::ChannelDrop) {
      const auto owner = tx_owner_.find(e.tx_seq);
      if (owner != tx_owner_.end()) {
        journeys_[owner->second].events.push_back(e);
      }
    }
  }
}

std::map<DropReason, std::uint64_t> TraceAnalyzer::loss_by_cause() const {
  std::map<DropReason, std::uint64_t> out;
  for (const TraceEvent& e : events_) {
    if (e.kind == EventKind::Drop || e.kind == EventKind::QueueDrop) {
      out[e.reason]++;
    }
  }
  return out;
}

std::map<DropReason, std::uint64_t> TraceAnalyzer::channel_loss_by_cause()
    const {
  std::map<DropReason, std::uint64_t> out;
  for (const TraceEvent& e : events_) {
    if (e.kind != EventKind::ChannelDrop) continue;
    // Spatial-index culling reports whole batches: bytes carries the count.
    out[e.reason] += e.reason == DropReason::OutOfRange ? e.bytes : 1;
  }
  return out;
}

std::uint64_t TraceAnalyzer::delivered_count() const {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == EventKind::Deliver) ++n;
  }
  return n;
}

std::string TraceAnalyzer::loss_table() const {
  std::string out;
  char line[128];
  out += "mesh-layer drops by cause:\n";
  for (const auto& [reason, count] : loss_by_cause()) {
    std::snprintf(line, sizeof line, "  %-20s %8llu\n", to_string(reason),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  out += "channel receptions lost by cause:\n";
  for (const auto& [reason, count] : channel_loss_by_cause()) {
    std::snprintf(line, sizeof line, "  %-20s %8llu\n", to_string(reason),
                  static_cast<unsigned long long>(count));
    out += line;
  }
  std::snprintf(line, sizeof line, "delivered: %llu\n",
                static_cast<unsigned long long>(delivered_count()));
  out += line;
  return out;
}

std::string TraceAnalyzer::canonical_text(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96);
  for (const TraceEvent& e : events) {
    out += canonical_line(e);
    out += '\n';
  }
  return out;
}

std::vector<std::string> TraceAnalyzer::check_invariants(
    const InvariantOptions& opts) const {
  std::vector<std::string> violations;
  char msg[256];
  auto report = [&](const char* text) { violations.emplace_back(text); };

  // --- 1. No double delivery without a duplicate event ----------------------
  std::map<std::pair<std::uint32_t, PacketKey>, std::uint64_t> delivers;
  for (const TraceEvent& e : events_) {
    if (e.kind != EventKind::Deliver) continue;
    const auto count =
        ++delivers[{e.node, PacketKey{e.origin, e.packet_id, e.packet_type}}];
    if (count > 1) {
      std::snprintf(msg, sizeof msg,
                    "double delivery: node %u origin %u id %u type %u",
                    e.node, e.origin, e.packet_id, e.packet_type);
      report(msg);
    }
  }

  // --- 2. Hop counts monotone along a journey -------------------------------
  // AckedData retries legitimately restart at hops 0 under one packet_id,
  // so the ARQ family is exempt; every other type mints a fresh packet_id
  // per wire copy.
  for (const auto& [key, journey] : journeys_) {
    if (key.packet_type == kAckedDataType || key.packet_type == kRoutingType) {
      continue;
    }
    int last_hops = -1;
    int last_ttl = 256;
    for (const TraceEvent& e : journey.events) {
      if (e.kind != EventKind::MeshTx && e.kind != EventKind::RxFrame &&
          e.kind != EventKind::Forward && e.kind != EventKind::Deliver) {
        continue;
      }
      if (e.hops < last_hops || e.ttl > last_ttl) {
        std::snprintf(msg, sizeof msg,
                      "hop/ttl not monotone: origin %u id %u type %u at "
                      "t=%lld (hops %u after %d, ttl %u after %d)",
                      key.origin, key.packet_id, key.packet_type,
                      static_cast<long long>(e.t_us), e.hops, last_hops, e.ttl,
                      last_ttl);
        report(msg);
        break;
      }
      last_hops = e.hops;
      last_ttl = e.ttl;
    }
  }

  // --- 3. Every TX inside the duty-cycle budget -----------------------------
  // Replays the limiter's sliding window per node: an emission leaves the
  // window once start + window <= now; budget = window * limit, computed
  // with the same Duration arithmetic DutyCycleLimiter uses.
  if (opts.duty_cycle_limit < 1.0) {
    const Duration budget = opts.duty_cycle_window * opts.duty_cycle_limit;
    std::map<std::uint32_t, std::deque<std::pair<TimePoint, Duration>>> window;
    for (const TraceEvent& e : events_) {
      if (e.kind != EventKind::MeshTx) continue;
      const TimePoint now = TimePoint::from_us(e.t_us);
      const Duration airtime = Duration::microseconds(e.aux_us);
      auto& emissions = window[e.node];
      while (!emissions.empty() &&
             emissions.front().first + opts.duty_cycle_window <= now) {
        emissions.pop_front();
      }
      Duration used = Duration::zero();
      for (const auto& [start, spent] : emissions) used += spent;
      if (used + airtime > budget) {
        std::snprintf(msg, sizeof msg,
                      "duty budget exceeded: node %u at t=%lld (used %lld us "
                      "+ %lld us > budget %lld us)",
                      e.node, static_cast<long long>(e.t_us),
                      static_cast<long long>(used.us()),
                      static_cast<long long>(airtime.us()),
                      static_cast<long long>(budget.us()));
        report(msg);
      }
      emissions.emplace_back(now, airtime);
    }
  }

  // --- 4. Every RX matched to exactly one TX --------------------------------
  std::map<std::uint64_t, std::uint64_t> tx_starts;
  std::map<std::uint64_t, std::int64_t> tx_ends;
  for (const TraceEvent& e : events_) {
    if (e.kind == EventKind::TxStart) tx_starts[e.tx_seq]++;
    if (e.kind == EventKind::TxEnd) tx_ends.emplace(e.tx_seq, e.t_us);
  }
  for (const auto& [seq, count] : tx_starts) {
    if (count > 1) {
      std::snprintf(msg, sizeof msg, "tx_seq %llu started %llu times",
                    static_cast<unsigned long long>(seq),
                    static_cast<unsigned long long>(count));
      report(msg);
    }
  }
  std::set<std::pair<std::uint64_t, std::uint32_t>> seen_deliveries;
  std::multiset<std::pair<std::uint32_t, std::int64_t>> channel_deliveries;
  for (const TraceEvent& e : events_) {
    if (e.kind != EventKind::ChannelDeliver) continue;
    channel_deliveries.emplace(e.node, e.t_us);
    if (tx_starts.find(e.tx_seq) == tx_starts.end()) {
      std::snprintf(msg, sizeof msg,
                    "delivery at node %u references unknown tx_seq %llu",
                    e.node, static_cast<unsigned long long>(e.tx_seq));
      report(msg);
      continue;
    }
    if (!seen_deliveries.emplace(e.tx_seq, e.node).second) {
      std::snprintf(msg, sizeof msg,
                    "tx_seq %llu delivered twice to node %u",
                    static_cast<unsigned long long>(e.tx_seq), e.node);
      report(msg);
    }
    const auto end = tx_ends.find(e.tx_seq);
    if (end == tx_ends.end() || end->second != e.t_us) {
      std::snprintf(msg, sizeof msg,
                    "delivery of tx_seq %llu at t=%lld not at frame end",
                    static_cast<unsigned long long>(e.tx_seq),
                    static_cast<long long>(e.t_us));
      report(msg);
    }
  }
  for (const TraceEvent& e : events_) {
    if (e.kind != EventKind::RxFrame) continue;
    const auto it = channel_deliveries.find({e.node, e.t_us});
    if (it == channel_deliveries.end()) {
      std::snprintf(msg, sizeof msg,
                    "rx_frame at node %u t=%lld without a channel delivery",
                    e.node, static_cast<long long>(e.t_us));
      report(msg);
    } else {
      channel_deliveries.erase(it);
    }
  }

  // --- 5. No forward via a route the table never held -----------------------
  if (opts.check_routes) {
    std::set<std::tuple<std::uint32_t, std::uint16_t, std::uint16_t>> held;
    for (const TraceEvent& e : events_) {
      if (e.kind == EventKind::RouteAdd) {
        held.emplace(e.node, e.final_dst, e.via);
        continue;
      }
      if (e.kind != EventKind::MeshTx) continue;
      if (e.packet_type == kRoutingType) continue;   // beacons are broadcast
      if (e.via == 0 || e.via == kBroadcastAddr) continue;
      if (!held.contains({e.node, e.final_dst, e.via})) {
        std::snprintf(msg, sizeof msg,
                      "node %u transmitted toward %u via %u at t=%lld but "
                      "never held that route",
                      e.node, e.final_dst, e.via,
                      static_cast<long long>(e.t_us));
        report(msg);
      }
    }
  }

  return violations;
}

}  // namespace lm::trace
