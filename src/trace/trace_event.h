// Flight-recorder vocabulary: one flat event per packet-lifecycle step.
//
// Every instrumented layer (MeshNode, VirtualRadio, Channel, the reliable
// sessions) emits TraceEvents through a Tracer when a sink is attached.
// Events are deliberately a flat POD of integers: the trace layer depends
// only on lm_support, so mesh addresses and radio ids arrive as raw
// uint16/uint32 values (in a MeshScenario both are index + 1, so they
// coincide). The `value` double carries layer-specific analog data
// (RSSI dBm, duty-cycle utilization, a success flag) and is excluded from
// the canonical text rendering so golden traces never depend on
// floating-point formatting.
#pragma once

#include <cstdint>
#include <string>

namespace lm::trace {

/// What happened. Grouped by layer: application/queueing, channel access,
/// the radio medium, reception/forwarding, ARQ, reliable transfers,
/// routing-table and lifecycle bookkeeping.
enum class EventKind : std::uint8_t {
  // Application + TX queue (MeshNode).
  AppSubmit = 1,    // application handed a packet to the node
  Enqueue,          // packet accepted into a TX queue
  QueueDrop,        // TX queue full; packet dropped at submission
  DutyDefer,        // head-of-line TX deferred by the duty-cycle limiter
  CadBusy,          // CAD/carrier sense found the channel busy; backing off
  ForcedTx,         // CAD retries exhausted; transmitting anyway
  MeshTx,           // node handed a resolved frame to its radio
  // Radio medium (Channel / VirtualRadio).
  TxStart,          // transmission entered the air
  TxEnd,            // transmission left the air
  CadDone,          // CAD window closed (value: 1 busy, 0 clear)
  ChannelDeliver,   // one receiver decoded the frame (value: RSSI dBm)
  ChannelDrop,      // one reception opportunity lost (reason says why)
  // Reception + forwarding (MeshNode).
  RxFrame,          // frame decoded and accepted by the mesh layer
  Forward,          // packet re-queued toward its final destination
  Deliver,          // payload handed to the application at final_dst
  DuplicateDeliver, // duplicate suppressed at the receiver (ARQ dedup)
  Drop,             // terminal drop inside the mesh layer (reason says why)
  // Acked datagrams (NEED_ACK).
  AckSent,          // receiver emitted the end-to-end ACK
  AckedRetry,       // sender retransmitted after an ACK timeout
  AckedConfirmed,   // sender matched the ACK; transfer confirmed
  // Reliable large-payload transfers.
  TransferStart,    // sender session created (packet_id = transfer seq)
  TransferSyncRetry,// SYNC retransmitted (bytes = attempt count)
  TransferPoll,     // sender polled the receiver for status
  TransferEnd,      // sender session finished (value: 1 success, 0 failure)
  TransferRxStart,  // receiver session created from the first SYNC
  LostRequest,      // receiver requested missing fragments (bytes = count)
  // Routing + lifecycle.
  RouteAdd,         // routing table adopted/updated a route (bytes = metric)
  NodeUp,           // node started
  NodeDown,         // node stopped
};

/// Why a packet (or one reception opportunity) was lost. The first block
/// is produced by the mesh layer, the second by the channel model; the
/// same enum feeds PacketTracker's per-cause refusal accounting.
enum class DropReason : std::uint8_t {
  None = 0,
  // Mesh-layer refusals and terminal drops.
  NotRunning,        // node stopped
  InvalidDestination,// self / unassigned / broadcast where not allowed
  PayloadTooLarge,
  NoRoute,
  QueueFull,
  TtlExpired,
  Malformed,         // frame failed to decode
  SessionLimit,      // reliable RX session cap reached
  RetriesExhausted,  // ARQ gave up
  Duplicate,
  // Channel-model reception losses.
  NotListening,
  BlockedLink,       // scripted block or extra-loss draw
  ModulationMismatch,
  BelowSensitivity,
  SnrDecode,         // interference-free decode Bernoulli failed
  Collision,
  OutOfRange,        // culled by the spatial index (counted in bulk)
};

const char* to_string(EventKind k);
const char* to_string(DropReason r);

/// One lifecycle step. Identity fields are zero when not applicable; a
/// packet journey is keyed by (origin, packet_id, packet_type).
struct TraceEvent {
  std::int64_t t_us = 0;         // simulation time, microseconds
  std::uint32_t node = 0;        // mesh address / radio id of the actor
  EventKind kind = EventKind::Drop;
  DropReason reason = DropReason::None;
  std::uint8_t packet_type = 0;  // raw net::PacketType; 0 = not applicable
  std::uint8_t hops = 0;
  std::uint8_t ttl = 0;
  std::uint16_t origin = 0;      // route origin address
  std::uint16_t final_dst = 0;   // route final destination
  std::uint16_t via = 0;         // resolved next hop / route via
  std::uint16_t packet_id = 0;   // route packet_id or transfer seq
  std::uint32_t bytes = 0;       // frame/payload size, count, or metric
  std::uint64_t tx_seq = 0;      // channel transmission sequence number
  std::int64_t aux_us = 0;       // airtime or wait duration, microseconds
  double value = 0.0;            // RSSI / utilization / flag (not canonical)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Name of a raw PacketType value ("DATA", "ROUTING", ...); mirrors
/// net::PacketType without depending on lm_net. Unknown values render as
/// "T<n>".
std::string packet_type_name(std::uint8_t raw);

/// One-line JSON rendering (JSONL sinks, docs). Includes `value`.
std::string to_jsonl(const TraceEvent& e);

/// Canonical single-line rendering: every integral field, no floats, no
/// pointers — byte-identical across runs and thread counts whenever the
/// simulation is deterministic. The golden-trace tests diff exactly this.
std::string canonical_line(const TraceEvent& e);

}  // namespace lm::trace
