// Trace sinks: where flight-recorder events go.
//
// Instrumented classes hold a `Tracer*` (null by default — the untraced hot
// path costs exactly one branch). A Tracer forwards to one TraceSink:
//   * VectorSink  — unbounded in-memory capture, for tests and analysis;
//   * RingSink    — bounded in-memory ring, drops the oldest (black box on
//                   a memory budget);
//   * JsonlSink   — one JSON object per line to a file, for offline tools.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "trace/trace_event.h"

namespace lm::trace {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

/// Dispatch point the instrumented layers talk to. Holding a Tracer with no
/// sink attached is valid and silent.
class Tracer {
 public:
  void attach(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }
  bool on() const { return sink_ != nullptr; }
  void emit(const TraceEvent& event) {
    if (sink_ != nullptr) sink_->record(event);
  }

 private:
  TraceSink* sink_ = nullptr;
};

/// Unbounded capture. The workhorse of the trace tests.
class VectorSink final : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> take() { return std::move(events_); }
  void clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Bounded ring: keeps the last `capacity` events, counts what it shed.
class RingSink final : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity);
  void record(const TraceEvent& event) override;
  /// Oldest-to-newest snapshot of the retained window.
  std::vector<TraceEvent> snapshot() const;
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> ring_;
  std::uint64_t dropped_ = 0;
};

/// Streams events to a JSONL file as they happen. Failure to open leaves
/// the sink inert (ok() == false) rather than aborting a simulation.
class JsonlSink final : public TraceSink {
 public:
  explicit JsonlSink(const std::string& path);
  ~JsonlSink() override;

  JsonlSink(const JsonlSink&) = delete;
  JsonlSink& operator=(const JsonlSink&) = delete;

  void record(const TraceEvent& event) override;
  bool ok() const { return file_ != nullptr; }
  std::uint64_t lines_written() const { return lines_; }

 private:
  std::FILE* file_ = nullptr;
  std::uint64_t lines_ = 0;
};

}  // namespace lm::trace
