// Offline analysis over a captured flight-recorder trace.
//
// The analyzer reconstructs per-packet journeys (every event touching one
// (origin, packet_id, type) identity, with channel events joined in via the
// MeshTx -> TxStart adjacency), attributes losses to their typed cause, and
// checks the cross-layer invariants the randomized trace tests enforce:
//   1. no packet delivered twice to one node's application without a
//      duplicate event;
//   2. hop counts monotonically non-decreasing (and TTL non-increasing)
//      along a journey;
//   3. every transmission inside the node's sliding-window duty budget;
//   4. every channel delivery matched to exactly one transmission (and
//      stamped with its end-of-frame time);
//   5. no unicast transmitted via a next hop the routing table never held
//      for that destination.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/time.h"
#include "trace/trace_event.h"

namespace lm::trace {

/// Identity of one packet journey across the mesh.
struct PacketKey {
  std::uint16_t origin = 0;
  std::uint16_t packet_id = 0;
  std::uint8_t packet_type = 0;

  friend auto operator<=>(const PacketKey&, const PacketKey&) = default;
};

struct Journey {
  PacketKey key;
  std::vector<TraceEvent> events;  // in emission (= chronological) order
  bool delivered = false;          // any Deliver event observed
};

/// Knobs for check_invariants(); mirror the MeshConfig the scenario ran
/// with (the trace layer cannot see lm_net's config type).
struct InvariantOptions {
  /// Duty-cycle limit fraction; >= 1.0 skips the duty invariant (the
  /// limiter is disabled in that regime).
  double duty_cycle_limit = 1.0;
  Duration duty_cycle_window = Duration::hours(1);
  /// Check invariant 5 (routes held). Disable for traces captured without
  /// RouteAdd events.
  bool check_routes = true;
};

class TraceAnalyzer {
 public:
  /// Takes the events in emission order (as any sink recorded them).
  explicit TraceAnalyzer(std::vector<TraceEvent> events);

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Per-packet journeys, keyed by (origin, packet_id, type). Channel
  /// events (TxStart/TxEnd/ChannelDeliver/ChannelDrop) are attached to the
  /// journey that transmitted them.
  const std::map<PacketKey, Journey>& journeys() const { return journeys_; }

  /// Mesh-layer terminal losses by cause: every QueueDrop and Drop event.
  std::map<DropReason, std::uint64_t> loss_by_cause() const;

  /// Channel-layer reception losses by cause; spatial-index culling
  /// (OutOfRange) arrives as bulk counts and is expanded here.
  std::map<DropReason, std::uint64_t> channel_loss_by_cause() const;

  std::uint64_t delivered_count() const;

  /// Human-readable per-cause loss table (EXPERIMENTS.md, demo output).
  std::string loss_table() const;

  /// Runs all invariants; returns one message per violation (empty = clean).
  std::vector<std::string> check_invariants(const InvariantOptions& opts) const;

  /// Canonical multi-line rendering of a whole trace (one canonical_line
  /// per event). This is what golden files store and what the
  /// determinism tests compare byte-for-byte.
  static std::string canonical_text(const std::vector<TraceEvent>& events);

 private:
  void build_journeys();

  std::vector<TraceEvent> events_;
  std::map<PacketKey, Journey> journeys_;
  // tx_seq -> journey key, derived from MeshTx/TxStart adjacency.
  std::map<std::uint64_t, PacketKey> tx_owner_;
};

}  // namespace lm::trace
