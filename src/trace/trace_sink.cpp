#include "trace/trace_sink.h"

#include "support/assert.h"

namespace lm::trace {

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {
  LM_REQUIRE(capacity > 0);
}

void RingSink::record(const TraceEvent& event) {
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(event);
}

std::vector<TraceEvent> RingSink::snapshot() const {
  return {ring_.begin(), ring_.end()};
}

JsonlSink::JsonlSink(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
}

JsonlSink::~JsonlSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void JsonlSink::record(const TraceEvent& event) {
  if (file_ == nullptr) return;
  const std::string line = to_jsonl(event);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  ++lines_;
}

}  // namespace lm::trace
