#include "trace/trace_event.h"

#include <cinttypes>
#include <cstdio>

namespace lm::trace {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::AppSubmit: return "app_submit";
    case EventKind::Enqueue: return "enqueue";
    case EventKind::QueueDrop: return "queue_drop";
    case EventKind::DutyDefer: return "duty_defer";
    case EventKind::CadBusy: return "cad_busy";
    case EventKind::ForcedTx: return "forced_tx";
    case EventKind::MeshTx: return "mesh_tx";
    case EventKind::TxStart: return "tx_start";
    case EventKind::TxEnd: return "tx_end";
    case EventKind::CadDone: return "cad_done";
    case EventKind::ChannelDeliver: return "chan_deliver";
    case EventKind::ChannelDrop: return "chan_drop";
    case EventKind::RxFrame: return "rx_frame";
    case EventKind::Forward: return "forward";
    case EventKind::Deliver: return "deliver";
    case EventKind::DuplicateDeliver: return "dup_deliver";
    case EventKind::Drop: return "drop";
    case EventKind::AckSent: return "ack_sent";
    case EventKind::AckedRetry: return "acked_retry";
    case EventKind::AckedConfirmed: return "acked_confirmed";
    case EventKind::TransferStart: return "transfer_start";
    case EventKind::TransferSyncRetry: return "transfer_sync_retry";
    case EventKind::TransferPoll: return "transfer_poll";
    case EventKind::TransferEnd: return "transfer_end";
    case EventKind::TransferRxStart: return "transfer_rx_start";
    case EventKind::LostRequest: return "lost_request";
    case EventKind::RouteAdd: return "route_add";
    case EventKind::NodeUp: return "node_up";
    case EventKind::NodeDown: return "node_down";
  }
  return "?";
}

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::None: return "none";
    case DropReason::NotRunning: return "not_running";
    case DropReason::InvalidDestination: return "invalid_destination";
    case DropReason::PayloadTooLarge: return "payload_too_large";
    case DropReason::NoRoute: return "no_route";
    case DropReason::QueueFull: return "queue_full";
    case DropReason::TtlExpired: return "ttl_expired";
    case DropReason::Malformed: return "malformed";
    case DropReason::SessionLimit: return "session_limit";
    case DropReason::RetriesExhausted: return "retries_exhausted";
    case DropReason::Duplicate: return "duplicate";
    case DropReason::NotListening: return "not_listening";
    case DropReason::BlockedLink: return "blocked_link";
    case DropReason::ModulationMismatch: return "modulation_mismatch";
    case DropReason::BelowSensitivity: return "below_sensitivity";
    case DropReason::SnrDecode: return "snr_decode";
    case DropReason::Collision: return "collision";
    case DropReason::OutOfRange: return "out_of_range";
  }
  return "?";
}

std::string packet_type_name(std::uint8_t raw) {
  // Mirrors net::PacketType (net/packet.h); kept in sync by
  // trace tests so lm_trace can stay below lm_net in the layering.
  switch (raw) {
    case 0: return "-";
    case 1: return "ROUTING";
    case 2: return "DATA";
    case 3: return "SYNC";
    case 4: return "SYNC_ACK";
    case 5: return "FRAGMENT";
    case 6: return "LOST";
    case 7: return "DONE";
    case 8: return "POLL";
    case 9: return "ACKED_DATA";
    case 10: return "ACK";
    default: break;
  }
  return "T" + std::to_string(raw);
}

std::string to_jsonl(const TraceEvent& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"t_us\":%" PRId64 ",\"node\":%u,\"kind\":\"%s\",\"reason\":\"%s\","
      "\"type\":\"%s\",\"origin\":%u,\"dst\":%u,\"id\":%u,\"via\":%u,"
      "\"hops\":%u,\"ttl\":%u,\"bytes\":%u,\"tx_seq\":%" PRIu64
      ",\"aux_us\":%" PRId64 ",\"value\":%.3f}",
      e.t_us, e.node, to_string(e.kind), to_string(e.reason),
      packet_type_name(e.packet_type).c_str(), e.origin, e.final_dst,
      e.packet_id, e.via, e.hops, e.ttl, e.bytes, e.tx_seq, e.aux_us, e.value);
  return buf;
}

std::string canonical_line(const TraceEvent& e) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "t=%" PRId64 " n=%u k=%s r=%s pt=%s o=%u d=%u id=%u via=%u h=%u ttl=%u "
      "b=%u seq=%" PRIu64 " aux=%" PRId64,
      e.t_us, e.node, to_string(e.kind), to_string(e.reason),
      packet_type_name(e.packet_type).c_str(), e.origin, e.final_dst,
      e.packet_id, e.via, e.hops, e.ttl, e.bytes, e.tx_seq, e.aux_us);
  return buf;
}

}  // namespace lm::trace
