#include "testbed/topology.h"

#include <cmath>
#include <queue>

#include "support/assert.h"

namespace lm::testbed {

std::vector<phy::Position> chain(std::size_t n, double spacing_m) {
  LM_REQUIRE(spacing_m > 0.0);
  std::vector<phy::Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<double>(i) * spacing_m, 0.0});
  }
  return out;
}

std::vector<phy::Position> grid(std::size_t rows, std::size_t cols,
                                double spacing_m) {
  LM_REQUIRE(spacing_m > 0.0);
  std::vector<phy::Position> out;
  out.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      out.push_back({static_cast<double>(c) * spacing_m,
                     static_cast<double>(r) * spacing_m});
    }
  }
  return out;
}

std::vector<phy::Position> star(std::size_t leaves, double radius_m) {
  LM_REQUIRE(radius_m > 0.0);
  std::vector<phy::Position> out;
  out.reserve(leaves + 1);
  out.push_back({0.0, 0.0});
  for (std::size_t i = 0; i < leaves; ++i) {
    const double angle = 2.0 * M_PI * static_cast<double>(i) /
                         static_cast<double>(leaves);
    out.push_back({radius_m * std::cos(angle), radius_m * std::sin(angle)});
  }
  return out;
}

std::vector<phy::Position> random_field(std::size_t n, double width_m,
                                        double height_m, Rng& rng) {
  LM_REQUIRE(width_m > 0.0 && height_m > 0.0);
  std::vector<phy::Position> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)});
  }
  return out;
}

std::vector<phy::Position> connected_random_field(std::size_t n, double width_m,
                                                  double height_m,
                                                  double max_link_m, Rng& rng,
                                                  int max_tries) {
  LM_REQUIRE(max_link_m > 0.0);
  for (int attempt = 0; attempt < max_tries; ++attempt) {
    auto candidate = random_field(n, width_m, height_m, rng);
    const auto linked = [&](std::size_t a, std::size_t b) {
      return phy::distance_m(candidate[a], candidate[b]) <= max_link_m;
    };
    if (is_connected(n, linked)) return candidate;
  }
  throw ContractViolation(
      "connected_random_field: layout parameters infeasible (no connected "
      "layout found)");
}

std::vector<std::vector<int>> hop_matrix(
    std::size_t n, const std::function<bool(std::size_t, std::size_t)>& linked) {
  std::vector<std::vector<int>> hops(n, std::vector<int>(n, -1));
  for (std::size_t src = 0; src < n; ++src) {
    hops[src][src] = 0;
    std::queue<std::size_t> frontier;
    frontier.push(src);
    while (!frontier.empty()) {
      const std::size_t cur = frontier.front();
      frontier.pop();
      for (std::size_t next = 0; next < n; ++next) {
        if (hops[src][next] == -1 && linked(cur, next)) {
          hops[src][next] = hops[src][cur] + 1;
          frontier.push(next);
        }
      }
    }
  }
  return hops;
}

bool is_connected(std::size_t n,
                  const std::function<bool(std::size_t, std::size_t)>& linked) {
  if (n == 0) return true;
  const auto hops = hop_matrix(n, linked);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (hops[i][j] == -1) return false;
    }
  }
  return true;
}

}  // namespace lm::testbed
