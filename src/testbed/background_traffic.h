// Background interference: a co-located LoRaWAN deployment sharing the
// channel.
//
// Real LoRa mesh networks do not get a clean band — LoRaWAN sensors,
// trackers and meters transmit on the same frequencies. This generator
// models that population: independent virtual transmitters scattered over
// an area, each firing Poisson-timed uplinks with LoRaWAN-like payload
// sizes and (optionally) mixed spreading factors. They never listen —
// class-A devices are pure ALOHA — so to the mesh they are pure
// interference. E13 measures what that does to delivery.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace lm::testbed {

struct BackgroundConfig {
  std::size_t devices = 10;
  /// Mean time between uplinks per device (Poisson).
  Duration mean_uplink_interval = Duration::minutes(10);
  /// Uplink payload size range (uniform), LoRaWAN-typical.
  std::size_t min_payload = 12;
  std::size_t max_payload = 51;
  /// Area the devices are scattered over.
  double area_width_m = 2000.0;
  double area_height_m = 2000.0;
  /// When true, devices use SF7..SF12 uniformly (quasi-orthogonal to the
  /// mesh's SF); when false, all use the mesh's own SF (worst case).
  bool mixed_spreading_factors = false;
  radio::RadioConfig radio;  // frequency/power template
};

class BackgroundTraffic {
 public:
  /// Radio ids 0x8000+i are claimed for the background devices.
  BackgroundTraffic(sim::Simulator& sim, radio::Channel& channel,
                    BackgroundConfig config, std::uint64_t seed);
  ~BackgroundTraffic();

  BackgroundTraffic(const BackgroundTraffic&) = delete;
  BackgroundTraffic& operator=(const BackgroundTraffic&) = delete;

  void start();
  void stop();

  std::uint64_t uplinks_sent() const { return uplinks_sent_; }
  /// Total airtime the background population injected.
  Duration airtime_injected() const;

 private:
  void schedule_uplink(std::size_t device);

  sim::Simulator& sim_;
  BackgroundConfig config_;
  Rng rng_;
  std::vector<std::unique_ptr<radio::VirtualRadio>> devices_;
  std::vector<sim::TimerId> timers_;
  bool running_ = false;
  std::uint64_t uplinks_sent_ = 0;
};

}  // namespace lm::testbed
