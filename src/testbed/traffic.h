// Application traffic generators wired to a PacketTracker.
//
// DatagramTraffic emits fixed-size datagrams from one node to another on a
// periodic or Poisson schedule; every send registers with the tracker and
// the payload carries the tracker token, so deliveries at the destination
// close the loop. attach_tracker() installs the matching delivery handler
// on every node of a scenario.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/packet_tracker.h"
#include "sim/simulator.h"
#include "support/rng.h"
#include "testbed/flood_scenario.h"
#include "testbed/scenario.h"

namespace lm::testbed {

/// Installs datagram handlers on all current nodes of `scenario` that report
/// token-carrying payloads to `tracker`. Call after add_node()s, before
/// traffic starts. The tracker must outlive the scenario run.
void attach_tracker(MeshScenario& scenario, metrics::PacketTracker& tracker);

/// Same for a flooding scenario.
void attach_tracker(FloodScenario& scenario, metrics::PacketTracker& tracker);

struct TrafficConfig {
  Duration mean_interval = Duration::seconds(30);
  std::size_t payload_size = 16;  // >= 8 (token)
  bool poisson = true;            // false: fixed period
};

/// One unidirectional datagram flow inside a MeshScenario.
class DatagramTraffic {
 public:
  DatagramTraffic(MeshScenario& scenario, metrics::PacketTracker& tracker,
                  std::size_t src, std::size_t dst, TrafficConfig config,
                  std::uint64_t seed);
  ~DatagramTraffic();

  DatagramTraffic(const DatagramTraffic&) = delete;
  DatagramTraffic& operator=(const DatagramTraffic&) = delete;

  void start();
  void stop();

  std::uint64_t sends_attempted() const { return sends_attempted_; }

 private:
  void schedule_next();
  void fire();

  MeshScenario& scenario_;
  metrics::PacketTracker& tracker_;
  const std::size_t src_;
  const std::size_t dst_;
  TrafficConfig config_;
  Rng rng_;
  bool running_ = false;
  sim::TimerId timer_ = 0;
  std::uint64_t sends_attempted_ = 0;
};

/// One unidirectional flow inside a FloodScenario.
class FloodTraffic {
 public:
  FloodTraffic(FloodScenario& scenario, metrics::PacketTracker& tracker,
               std::size_t src, std::size_t dst, TrafficConfig config,
               std::uint64_t seed);
  ~FloodTraffic();

  FloodTraffic(const FloodTraffic&) = delete;
  FloodTraffic& operator=(const FloodTraffic&) = delete;

  void start();
  void stop();

 private:
  void schedule_next();
  void fire();

  FloodScenario& scenario_;
  metrics::PacketTracker& tracker_;
  const std::size_t src_;
  const std::size_t dst_;
  TrafficConfig config_;
  Rng rng_;
  bool running_ = false;
  sim::TimerId timer_ = 0;
};

}  // namespace lm::testbed
