#include "testbed/chaos.h"

#include <algorithm>

#include "support/assert.h"
#include "support/log.h"

namespace lm::testbed {

ChaosMonkey::ChaosMonkey(MeshScenario& scenario, ChaosConfig config,
                         std::uint64_t seed)
    : scenario_(scenario), config_(std::move(config)), rng_(seed) {
  LM_REQUIRE(config_.mean_time_between_failures > Duration::zero());
  LM_REQUIRE(config_.min_outage > Duration::zero());
  LM_REQUIRE(config_.max_outage >= config_.min_outage);
}

ChaosMonkey::~ChaosMonkey() { stop(); }

void ChaosMonkey::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  schedule_next_failure();
}

void ChaosMonkey::stop() {
  running_ = false;
  if (timer_ != 0) {
    scenario_.simulator().cancel(timer_);
    timer_ = 0;
  }
}

bool ChaosMonkey::is_protected(std::size_t index) const {
  return std::find(config_.protected_nodes.begin(), config_.protected_nodes.end(),
                   index) != config_.protected_nodes.end();
}

std::size_t ChaosMonkey::running_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < scenario_.size(); ++i) {
    if (scenario_.node(i).running()) ++n;
  }
  return n;
}

void ChaosMonkey::schedule_next_failure() {
  const Duration gap = Duration::from_seconds(
      rng_.exponential(config_.mean_time_between_failures.seconds_d()));
  timer_ = scenario_.simulator().schedule_after(gap, [this] {
    timer_ = 0;
    inject_failure();
  });
}

void ChaosMonkey::inject_failure() {
  if (!running_) return;
  // Pick a random victim among running, unprotected nodes.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < scenario_.size(); ++i) {
    if (scenario_.node(i).running() && !is_protected(i)) candidates.push_back(i);
  }
  if (!candidates.empty() && running_count() > config_.min_alive) {
    const std::size_t victim = candidates[rng_.index(candidates.size())];
    scenario_.node(victim).stop();
    ++failures_;
    LM_DEBUG("chaos", "killed node %zu", victim);
    const Duration outage = Duration::from_seconds(rng_.uniform(
        config_.min_outage.seconds_d(), config_.max_outage.seconds_d() + 1e-9));
    scenario_.simulator().schedule_after(outage, [this, victim] {
      if (!scenario_.node(victim).running()) {
        scenario_.node(victim).start();
        ++recoveries_;
        LM_DEBUG("chaos", "revived node %zu", victim);
      }
    });
  }
  if (running_) schedule_next_failure();
}

}  // namespace lm::testbed
