#include "testbed/mobility.h"

#include <cmath>

#include "support/assert.h"

namespace lm::testbed {

WaypointMover::WaypointMover(sim::Simulator& sim, radio::VirtualRadio& radio,
                             std::vector<phy::Position> waypoints,
                             double speed_mps, Duration tick)
    : sim_(sim),
      radio_(radio),
      waypoints_(std::move(waypoints)),
      speed_mps_(speed_mps),
      tick_(tick) {
  LM_REQUIRE(speed_mps > 0.0);
  LM_REQUIRE(tick > Duration::zero());
}

WaypointMover::~WaypointMover() { stop(); }

void WaypointMover::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  timer_ = sim_.schedule_after(tick_, [this] { step(); });
}

void WaypointMover::stop() {
  running_ = false;
  if (timer_ != 0) {
    sim_.cancel(timer_);
    timer_ = 0;
  }
}

void WaypointMover::step() {
  timer_ = 0;
  if (!running_) return;
  double budget_m = speed_mps_ * tick_.seconds_d();
  phy::Position pos = radio_.position();
  while (budget_m > 0.0 && next_waypoint_ < waypoints_.size()) {
    const phy::Position& target = waypoints_[next_waypoint_];
    const double dist = phy::distance_m(pos, target);
    if (dist <= budget_m) {
      pos = target;
      budget_m -= dist;
      travelled_m_ += dist;
      ++next_waypoint_;
      continue;
    }
    const double frac = budget_m / dist;
    pos.x += (target.x - pos.x) * frac;
    pos.y += (target.y - pos.y) * frac;
    travelled_m_ += budget_m;
    budget_m = 0.0;
  }
  radio_.set_position(pos);
  if (!done()) {
    timer_ = sim_.schedule_after(tick_, [this] { step(); });
  }
}

}  // namespace lm::testbed
