#include "testbed/sniffer.h"

#include <cstdio>

namespace lm::testbed {

Sniffer::Sniffer(sim::Simulator& sim, radio::Channel& channel, radio::RadioId id,
                 phy::Position position, radio::RadioConfig config)
    : sim_(sim), radio_(sim, channel, id, position, config) {
  radio_.set_listener(this);
  radio_.start_receive();
}

Sniffer::~Sniffer() { radio_.set_listener(nullptr); }

void Sniffer::on_frame_received(const std::vector<std::uint8_t>& frame,
                                const radio::FrameMeta& meta) {
  CapturedFrame capture;
  capture.at = sim_.now();
  capture.meta = meta;
  capture.raw = frame;
  capture.packet = net::decode(frame);
  if (callback_) callback_(capture);
  captures_.push_back(std::move(capture));
}

std::size_t Sniffer::count_of(net::PacketType type) const {
  std::size_t n = 0;
  for (const CapturedFrame& c : captures_) {
    if (c.packet && net::link_of(*c.packet).type == type) ++n;
  }
  return n;
}

std::size_t Sniffer::undecodable() const {
  std::size_t n = 0;
  for (const CapturedFrame& c : captures_) {
    if (!c.packet) ++n;
  }
  return n;
}

std::string Sniffer::dump() const {
  std::string out;
  char line[256];
  for (const CapturedFrame& c : captures_) {
    std::snprintf(line, sizeof line, "%-14s %6.1f dBm  %s\n",
                  c.at.to_string().c_str(), c.meta.rssi_dbm,
                  c.packet ? net::describe(*c.packet).c_str()
                           : "(not a LoRaMesher frame)");
    out += line;
  }
  return out;
}

}  // namespace lm::testbed
