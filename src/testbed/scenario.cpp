#include "testbed/scenario.h"

#include "support/assert.h"

namespace lm::testbed {

void apply_region(ScenarioConfig& config, const phy::RegionParams& region) {
  LM_REQUIRE(!region.default_channels_hz.empty());
  config.radio.frequency_hz = region.default_channels_hz.front();
  const phy::SubBand* band =
      phy::sub_band_of(region, config.radio.frequency_hz);
  LM_ASSERT(band != nullptr);
  if (config.radio.tx_power_dbm > band->max_erp_dbm) {
    config.radio.tx_power_dbm = band->max_erp_dbm;
  }
  config.mesh.duty_cycle_limit = band->duty_cycle_limit;
  config.mesh.max_dwell_time = region.max_dwell_time;
}

MeshScenario::MeshScenario(ScenarioConfig config) : config_(std::move(config)) {
  channel_ = std::make_unique<radio::Channel>(sim_, config_.propagation,
                                              config_.channel,
                                              config_.seed ^ 0xC0FFEE);
}

MeshScenario::~MeshScenario() {
  // Nodes reference radios; destroy them first.
  nodes_.clear();
  radios_.clear();
}

std::size_t MeshScenario::add_node(phy::Position position, net::Role role) {
  const std::size_t index = nodes_.size();
  const net::Address address = address_of(index);
  radios_.push_back(std::make_unique<radio::VirtualRadio>(
      sim_, *channel_, static_cast<radio::RadioId>(index + 1), position,
      config_.radio));
  net::MeshConfig node_config = config_.mesh;
  node_config.role = role;
  nodes_.push_back(std::make_unique<net::MeshNode>(
      sim_, *radios_.back(), address, node_config,
      config_.seed * 0x9E3779B97F4A7C15ULL + index + 1,
      config_.strategy_factory ? config_.strategy_factory() : nullptr));
  if (tracer_ != nullptr) {
    radios_.back()->set_tracer(tracer_);
    nodes_.back()->set_tracer(tracer_);
  }
  return index;
}

void MeshScenario::attach_tracer(trace::Tracer& tracer) {
  tracer_ = &tracer;
  channel_->set_tracer(tracer_);
  for (auto& radio : radios_) radio->set_tracer(tracer_);
  for (auto& node : nodes_) node->set_tracer(tracer_);
}

std::size_t MeshScenario::add_node(phy::Position position) {
  return add_node(position, config_.mesh.role);
}

void MeshScenario::add_nodes(const std::vector<phy::Position>& positions) {
  for (const phy::Position& p : positions) add_node(p);
}

net::Address MeshScenario::address_of(std::size_t i) const {
  LM_REQUIRE(i < 0xFFFE);
  return static_cast<net::Address>(i + 1);
}

std::optional<std::size_t> MeshScenario::index_of(net::Address address) const {
  if (address == net::kUnassigned || address == net::kBroadcast) return std::nullopt;
  const std::size_t index = static_cast<std::size_t>(address) - 1;
  if (index >= nodes_.size()) return std::nullopt;
  return index;
}

void MeshScenario::start_all() {
  for (auto& node : nodes_) node->start();
}

bool MeshScenario::good_link(std::size_t a, std::size_t b, double threshold) const {
  if (a == b) return false;
  return channel_->link_quality(*radios_.at(a), *radios_.at(b)) >= threshold &&
         channel_->link_quality(*radios_.at(b), *radios_.at(a)) >= threshold;
}

std::vector<std::vector<int>> MeshScenario::expected_hops(double threshold) const {
  const std::size_t n = nodes_.size();
  auto hops = hop_matrix(n, [&](std::size_t a, std::size_t b) {
    return nodes_[a]->running() && nodes_[b]->running() &&
           good_link(a, b, threshold);
  });
  for (std::size_t i = 0; i < n; ++i) {
    if (!nodes_[i]->running()) {
      for (std::size_t j = 0; j < n; ++j) hops[i][j] = hops[j][i] = -1;
    }
  }
  return hops;
}

bool MeshScenario::route_usable(std::size_t from, std::size_t to,
                                double threshold) const {
  LM_REQUIRE(from < nodes_.size() && to < nodes_.size());
  if (from == to) return true;
  std::size_t cur = from;
  // A loop-free path visits each node at most once.
  for (std::size_t steps = 0; steps < nodes_.size(); ++steps) {
    if (!nodes_[cur]->running()) return false;
    const auto via = nodes_[cur]->routing_table().next_hop(address_of(to));
    if (!via) return false;
    const auto next = index_of(*via);
    if (!next || !nodes_[*next]->running()) return false;
    if (!good_link(cur, *next, threshold)) return false;
    if (*next == to) return true;
    cur = *next;
  }
  return false;  // looped
}

bool MeshScenario::converged(double threshold, bool exact_metric) const {
  const auto expected = expected_hops(threshold);
  const std::size_t n = nodes_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!nodes_[i]->running()) continue;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j || expected[i][j] < 0) continue;
      const auto route = nodes_[i]->routing_table().route_to(address_of(j));
      if (!route) return false;
      if (exact_metric && route->metric != expected[i][j]) return false;
      if (!route_usable(i, j, threshold)) return false;
    }
  }
  return true;
}

std::optional<Duration> MeshScenario::run_until_converged(Duration deadline,
                                                          Duration check_every,
                                                          double threshold,
                                                          bool exact_metric) {
  LM_REQUIRE(check_every > Duration::zero());
  const TimePoint begin = sim_.now();
  const TimePoint limit = begin + deadline;
  while (sim_.now() < limit) {
    if (converged(threshold, exact_metric)) return sim_.now() - begin;
    Duration step = check_every;
    if (sim_.now() + step > limit) step = limit - sim_.now();
    sim_.run_for(step);
  }
  if (converged(threshold, exact_metric)) return sim_.now() - begin;
  return std::nullopt;
}

std::string MeshScenario::dump_routing_tables() const {
  std::string out;
  for (const auto& node : nodes_) {
    out += node->routing_table().to_string();
  }
  return out;
}

net::NodeStats MeshScenario::total_stats() const {
  net::NodeStats total;
  for (const auto& node : nodes_) {
    const net::NodeStats& s = node->stats();
    total.beacons_sent += s.beacons_sent;
    total.beacons_received += s.beacons_received;
    total.routing_changes += s.routing_changes;
    total.datagrams_sent += s.datagrams_sent;
    total.datagrams_delivered += s.datagrams_delivered;
    total.broadcasts_sent += s.broadcasts_sent;
    total.broadcasts_delivered += s.broadcasts_delivered;
    total.packets_forwarded += s.packets_forwarded;
    total.dropped_no_route += s.dropped_no_route;
    total.dropped_ttl += s.dropped_ttl;
    total.dropped_queue_full += s.dropped_queue_full;
    total.malformed_frames += s.malformed_frames;
    total.foreign_frames += s.foreign_frames;
    total.cad_busy_events += s.cad_busy_events;
    total.forced_transmissions += s.forced_transmissions;
    total.duty_cycle_delays += s.duty_cycle_delays;
    total.control_bytes_sent += s.control_bytes_sent;
    total.data_bytes_sent += s.data_bytes_sent;
    total.control_airtime += s.control_airtime;
    total.data_airtime += s.data_airtime;
    total.transfers_started += s.transfers_started;
    total.transfers_completed += s.transfers_completed;
    total.transfers_failed += s.transfers_failed;
    total.transfers_received += s.transfers_received;
    total.fragments_sent += s.fragments_sent;
    total.fragments_retransmitted += s.fragments_retransmitted;
  }
  return total;
}

}  // namespace lm::testbed
