// Promiscuous mesh sniffer.
//
// A passive radio that overhears every decodable frame on the channel and
// keeps a decoded capture log — the simulated equivalent of the monitor
// node developers attach to a LoRaMesher testbed. Tests use it to assert
// on-air behaviour (what was actually transmitted, not what nodes claim),
// and examples use it to print live protocol traces.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"

namespace lm::testbed {

struct CapturedFrame {
  TimePoint at;                 // end of frame (decode instant)
  radio::FrameMeta meta;        // rssi/snr/transmitter ground truth
  std::vector<std::uint8_t> raw;
  std::optional<net::Packet> packet;  // nullopt: not a LoRaMesher frame
};

class Sniffer final : public radio::RadioListener {
 public:
  /// Creates the monitor radio at `position` and starts listening.
  Sniffer(sim::Simulator& sim, radio::Channel& channel, radio::RadioId id,
          phy::Position position, radio::RadioConfig config = {});
  ~Sniffer() override;

  Sniffer(const Sniffer&) = delete;
  Sniffer& operator=(const Sniffer&) = delete;

  /// Optional live callback per captured frame (in addition to the log).
  void set_callback(std::function<void(const CapturedFrame&)> callback) {
    callback_ = std::move(callback);
  }

  const std::vector<CapturedFrame>& captures() const { return captures_; }
  void clear() { captures_.clear(); }

  /// Captured frames of one packet type.
  std::size_t count_of(net::PacketType type) const;
  /// Frames that failed to decode as LoRaMesher packets.
  std::size_t undecodable() const;

  /// Multi-line rendering of the capture log ("t=... RSSI dBm DESC").
  std::string dump() const;

  radio::VirtualRadio& radio() { return radio_; }

  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const radio::FrameMeta& meta) override;

 private:
  sim::Simulator& sim_;
  radio::VirtualRadio radio_;
  std::vector<CapturedFrame> captures_;
  std::function<void(const CapturedFrame&)> callback_;
};

}  // namespace lm::testbed
