#include "testbed/trace.h"

#include <cstdarg>
#include <cstdio>

namespace lm::testbed {

namespace {

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string frame_to_json(const CapturedFrame& frame) {
  std::string out;
  append(out, R"({"kind":"frame","t":%.6f,"rssi":%.1f,"snr":%.1f,"tx":%u)",
         frame.at.seconds_d(), frame.meta.rssi_dbm, frame.meta.snr_db,
         frame.meta.transmitter);
  if (!frame.packet) {
    append(out, R"(,"undecodable":true,"bytes":%zu})", frame.raw.size());
    out += '\n';
    return out;
  }
  const net::LinkHeader& link = net::link_of(*frame.packet);
  append(out, R"(,"type":"%s","src":"%s","dst":"%s")",
         net::to_string(link.type), net::to_string(link.src).c_str(),
         net::to_string(link.dst).c_str());
  if (const net::RouteHeader* route = net::route_of(*frame.packet)) {
    append(out, R"(,"origin":"%s","final":"%s","ttl":%u,"id":%u)",
           net::to_string(route->origin).c_str(),
           net::to_string(route->final_dst).c_str(), route->ttl,
           route->packet_id);
  }
  append(out, R"(,"bytes":%zu})", frame.raw.size());
  out += '\n';
  return out;
}

std::string captures_to_json(const Sniffer& sniffer) {
  std::string out;
  for (const CapturedFrame& frame : sniffer.captures()) {
    out += frame_to_json(frame);
  }
  return out;
}

std::string routes_to_json(const MeshScenario& scenario) {
  std::string out;
  const double t = scenario.now().seconds_d();
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    const net::MeshNode& node = scenario.node(i);
    for (const net::RouteEntry& e : node.routing_table().entries()) {
      append(out,
             R"({"kind":"route","t":%.6f,"node":"%s","dst":"%s","via":"%s",)"
             R"("metric":%u,"role":"%s"})",
             t, net::to_string(node.address()).c_str(),
             net::to_string(e.destination).c_str(),
             net::to_string(e.via).c_str(), e.metric,
             net::role_to_string(e.role).c_str());
      out += '\n';
    }
  }
  return out;
}

bool write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = written == text.size() && std::fclose(f) == 0;
  if (!ok && written != text.size()) std::fclose(f);
  return ok;
}

}  // namespace lm::testbed
