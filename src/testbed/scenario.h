// MeshScenario — one fully wired LoRaMesher deployment: simulator, channel,
// radios and nodes, plus the convergence oracle the experiments need.
//
// The oracle: from the channel's own link-quality estimates we build the
// "good link" graph (both directions decode with probability >= threshold),
// BFS it for ground-truth hop counts, and declare the mesh converged when
// every running node's routing table holds a route to every reachable
// running peer (optionally with the exact shortest-path metric).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/mesh_node.h"
#include "phy/geometry.h"
#include "phy/region.h"
#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"
#include "testbed/topology.h"

namespace lm::testbed {

struct ScenarioConfig {
  std::uint64_t seed = 1;
  radio::PropagationConfig propagation = radio::PropagationConfig::campus();
  /// Delivery-policy knobs: spatial-index culling (default) vs the O(N^2)
  /// brute-force sweep, for A/B comparisons and scaling experiments.
  radio::ChannelConfig channel;
  radio::RadioConfig radio;  // modulation, frequency, power shared by all nodes
  net::MeshConfig mesh;
  /// Routing-strategy factory, called once per added node. Null (default)
  /// selects the hop-count distance-vector protocol; strategy_test swaps in
  /// net::FloodingStrategy to compare policies over the identical stack.
  std::function<std::unique_ptr<net::RoutingStrategy>()> strategy_factory;
};

/// Applies a regional band plan to a scenario config: tunes the radio to
/// the region's first default channel, caps TX power at the sub-band's ERP
/// ceiling, and adopts its duty-cycle limit for the mesh.
void apply_region(ScenarioConfig& config, const phy::RegionParams& region);

class MeshScenario {
 public:
  explicit MeshScenario(ScenarioConfig config);
  ~MeshScenario();

  MeshScenario(const MeshScenario&) = delete;
  MeshScenario& operator=(const MeshScenario&) = delete;

  // --- Construction -----------------------------------------------------------
  /// Adds a node at `position`; returns its index. Addresses are assigned
  /// 0x0001, 0x0002, ... in creation order. `role` overrides the shared
  /// MeshConfig role for this node (e.g. one gateway in a field of sensors).
  std::size_t add_node(phy::Position position, net::Role role);
  std::size_t add_node(phy::Position position);
  void add_nodes(const std::vector<phy::Position>& positions);

  // --- Access ------------------------------------------------------------------
  std::size_t size() const { return nodes_.size(); }
  sim::Simulator& simulator() { return sim_; }
  TimePoint now() const { return sim_.now(); }
  radio::Channel& channel() { return *channel_; }
  net::MeshNode& node(std::size_t i) { return *nodes_.at(i); }
  const net::MeshNode& node(std::size_t i) const { return *nodes_.at(i); }
  radio::VirtualRadio& radio(std::size_t i) { return *radios_.at(i); }
  net::Address address_of(std::size_t i) const;
  /// Index of the node owning `address`; nullopt if unknown.
  std::optional<std::size_t> index_of(net::Address address) const;

  /// Attaches a flight recorder to the channel, every radio and every node
  /// (existing and future). The tracer must outlive the scenario.
  void attach_tracer(trace::Tracer& tracer);

  // --- Lifecycle ------------------------------------------------------------------
  void start_all();
  /// Stops one node (crash/power-off). Its routes age out of the others.
  void fail_node(std::size_t i) { node(i).stop(); }
  void run_for(Duration d) { sim_.run_for(d); }
  void run_until(TimePoint t) { sim_.run_until(t); }

  // --- Convergence oracle ------------------------------------------------------------
  /// True when both directions of (a, b) decode with probability >= threshold.
  bool good_link(std::size_t a, std::size_t b, double threshold = 0.9) const;

  /// Ground-truth hop counts over good links between *running* nodes;
  /// -1 for unreachable or stopped endpoints.
  std::vector<std::vector<int>> expected_hops(double threshold = 0.9) const;

  /// True when the tables at `from` actually carry a packet to `to`:
  /// follows next_hop() node by node, requiring every hop to be a running
  /// node over a good link, without loops. This is the data-plane truth —
  /// a stale route pointing at a dead relay fails it.
  bool route_usable(std::size_t from, std::size_t to, double threshold = 0.9) const;

  /// True when every running node has a *usable* route (see route_usable)
  /// to every reachable running peer. With `exact_metric`, the route metric
  /// must additionally equal the BFS optimum.
  bool converged(double threshold = 0.9, bool exact_metric = true) const;

  /// Runs until converged() or `deadline` elapses, probing every
  /// `check_every`. Returns simulated time elapsed (from call) on success.
  std::optional<Duration> run_until_converged(
      Duration deadline, Duration check_every = Duration::seconds(5),
      double threshold = 0.9, bool exact_metric = true);

  /// Multi-line dump of every routing table (demo output).
  std::string dump_routing_tables() const;

  /// Aggregate of all nodes' counters.
  net::NodeStats total_stats() const;

  const ScenarioConfig& config() const { return config_; }

 private:
  ScenarioConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<radio::Channel> channel_;
  std::vector<std::unique_ptr<radio::VirtualRadio>> radios_;
  std::vector<std::unique_ptr<net::MeshNode>> nodes_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace lm::testbed
