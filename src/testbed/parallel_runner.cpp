#include "testbed/parallel_runner.h"

namespace lm::testbed {

ParallelRunner::ParallelRunner(std::size_t threads)
    : pool_(threads == 0 ? ThreadPool::default_thread_count() : threads) {}

std::size_t ParallelRunner::threads() const { return pool_.size(); }

}  // namespace lm::testbed
