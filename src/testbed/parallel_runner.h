// Shards independent scenario runs across a worker pool.
//
// Every experiment in this repository is a sweep of self-contained
// (scenario, seed) simulations: each run constructs its own Simulator,
// Channel and Rng from an explicit seed and shares no mutable state with any
// other run. That makes the sweep embarrassingly parallel — and, because
// each run's result is a pure function of its inputs and results are
// collected at their input index, the output vector is byte-identical
// whether the sweep executes on 1 thread or 16.
//
// Usage:
//   ParallelRunner runner;                    // LM_THREADS or hardware size
//   auto results = runner.map<RunResult>(jobs.size(), [&](std::size_t i) {
//     return run_scenario(jobs[i]);           // builds its own MeshScenario
//   });
//
// Contract for job closures: construct every simulation object (scenario,
// tracker, traffic, RNG) inside the closure, seeded explicitly; never touch
// globals (the logger stays at its default level) or another job's state.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "support/thread_pool.h"

namespace lm::testbed {

class ParallelRunner {
 public:
  /// `threads == 0` (the default) sizes the pool from
  /// ThreadPool::default_thread_count() — the LM_THREADS environment
  /// variable when set, else the hardware concurrency.
  explicit ParallelRunner(std::size_t threads = 0);

  std::size_t threads() const;

  /// Runs fn(0) .. fn(count-1) across the pool; returns results in input
  /// order regardless of completion order. Rethrows the first job exception
  /// after every job has run.
  template <typename Result, typename Fn>
  std::vector<Result> map(std::size_t count, Fn&& fn) {
    std::vector<Result> results(count);
    parallel_for_each(pool_, count,
                      [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Convenience overload: one pre-built closure per run.
  template <typename Result>
  std::vector<Result> run(const std::vector<std::function<Result()>>& jobs) {
    return map<Result>(jobs.size(), [&](std::size_t i) { return jobs[i](); });
  }

 private:
  ThreadPool pool_;
};

}  // namespace lm::testbed
