#include "testbed/flood_scenario.h"

#include "support/assert.h"

namespace lm::testbed {

FloodScenario::FloodScenario(FloodScenarioConfig config)
    : config_(std::move(config)) {
  channel_ = std::make_unique<radio::Channel>(sim_, config_.propagation,
                                              config_.seed ^ 0xC0FFEE);
}

FloodScenario::~FloodScenario() {
  nodes_.clear();
  radios_.clear();
}

std::size_t FloodScenario::add_node(phy::Position position) {
  const std::size_t index = nodes_.size();
  radios_.push_back(std::make_unique<radio::VirtualRadio>(
      sim_, *channel_, static_cast<radio::RadioId>(index + 1), position,
      config_.radio));
  nodes_.push_back(std::make_unique<baseline::FloodingNode>(
      sim_, *radios_.back(), address_of(index), config_.flood,
      config_.seed * 0x9E3779B97F4A7C15ULL + index + 1));
  return index;
}

void FloodScenario::add_nodes(const std::vector<phy::Position>& positions) {
  for (const phy::Position& p : positions) add_node(p);
}

net::Address FloodScenario::address_of(std::size_t i) const {
  LM_REQUIRE(i < 0xFFFE);
  return static_cast<net::Address>(i + 1);
}

void FloodScenario::start_all() {
  for (auto& node : nodes_) node->start();
}

Duration FloodScenario::total_airtime() const {
  Duration total = Duration::zero();
  for (const auto& node : nodes_) total += node->stats().airtime;
  return total;
}

std::uint64_t FloodScenario::total_bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().bytes_sent;
  return total;
}

}  // namespace lm::testbed
