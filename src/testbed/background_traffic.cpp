#include "testbed/background_traffic.h"

#include "support/assert.h"

namespace lm::testbed {

BackgroundTraffic::BackgroundTraffic(sim::Simulator& sim, radio::Channel& channel,
                                     BackgroundConfig config, std::uint64_t seed)
    : sim_(sim), config_(std::move(config)), rng_(seed) {
  LM_REQUIRE(config_.devices > 0);
  LM_REQUIRE(config_.min_payload >= 1);
  LM_REQUIRE(config_.max_payload >= config_.min_payload);
  LM_REQUIRE(config_.mean_uplink_interval > Duration::zero());
  for (std::size_t i = 0; i < config_.devices; ++i) {
    radio::RadioConfig rc = config_.radio;
    if (config_.mixed_spreading_factors) {
      rc.modulation.sf =
          static_cast<phy::SpreadingFactor>(rng_.uniform_int(7, 12));
    }
    devices_.push_back(std::make_unique<radio::VirtualRadio>(
        sim_, channel, static_cast<radio::RadioId>(0x8000 + i),
        phy::Position{rng_.uniform(0.0, config_.area_width_m),
                      rng_.uniform(0.0, config_.area_height_m)},
        rc));
  }
  timers_.resize(config_.devices, 0);
}

BackgroundTraffic::~BackgroundTraffic() { stop(); }

void BackgroundTraffic::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  for (std::size_t i = 0; i < devices_.size(); ++i) schedule_uplink(i);
}

void BackgroundTraffic::stop() {
  running_ = false;
  for (sim::TimerId& t : timers_) {
    if (t != 0) {
      sim_.cancel(t);
      t = 0;
    }
  }
}

void BackgroundTraffic::schedule_uplink(std::size_t device) {
  const Duration gap = Duration::from_seconds(
      rng_.exponential(config_.mean_uplink_interval.seconds_d()));
  timers_[device] = sim_.schedule_after(gap, [this, device] {
    timers_[device] = 0;
    if (!running_) return;
    const auto size = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(config_.min_payload),
                         static_cast<std::int64_t>(config_.max_payload)));
    // Class-A ALOHA: fire blindly; the radio refuses only if still mid-TX
    // (possible at extreme rates — the uplink is then simply skipped).
    if (devices_[device]->transmit(std::vector<std::uint8_t>(size, 0x5A))) {
      uplinks_sent_++;
    }
    schedule_uplink(device);
  });
}

Duration BackgroundTraffic::airtime_injected() const {
  Duration total = Duration::zero();
  for (const auto& d : devices_) total += d->stats().tx_airtime;
  return total;
}

}  // namespace lm::testbed
