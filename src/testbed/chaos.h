// ChaosMonkey: random node failures and recoveries for robustness testing.
//
// At random intervals it stops a random running node; stopped nodes come
// back after a random outage. The mesh must keep (eventually) routing
// around whatever is up — the property the long-haul stability tests pin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "support/rng.h"
#include "testbed/scenario.h"

namespace lm::testbed {

struct ChaosConfig {
  /// Mean time between kill events (exponential).
  Duration mean_time_between_failures = Duration::minutes(10);
  /// Outage duration range (uniform).
  Duration min_outage = Duration::minutes(2);
  Duration max_outage = Duration::minutes(20);
  /// Never take the network below this many running nodes.
  std::size_t min_alive = 2;
  /// Indices the monkey must not touch (e.g. the sink under test).
  std::vector<std::size_t> protected_nodes;
};

class ChaosMonkey {
 public:
  ChaosMonkey(MeshScenario& scenario, ChaosConfig config, std::uint64_t seed);
  ~ChaosMonkey();

  ChaosMonkey(const ChaosMonkey&) = delete;
  ChaosMonkey& operator=(const ChaosMonkey&) = delete;

  void start();
  /// Stops scheduling new failures; nodes already down still recover.
  void stop();

  std::uint64_t failures_injected() const { return failures_; }
  std::uint64_t recoveries() const { return recoveries_; }

 private:
  void schedule_next_failure();
  void inject_failure();
  bool is_protected(std::size_t index) const;
  std::size_t running_count() const;

  MeshScenario& scenario_;
  ChaosConfig config_;
  Rng rng_;
  bool running_ = false;
  sim::TimerId timer_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace lm::testbed
