// Waypoint mobility for scenario radios.
//
// Moves a radio along a polyline at constant speed, updating its position
// every `tick`. Coarse ticks are fine: propagation is evaluated per frame,
// and LoRa-scale movement (walking/vehicle) changes path loss slowly.
#pragma once

#include <cstddef>
#include <vector>

#include "phy/geometry.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"

namespace lm::testbed {

class WaypointMover {
 public:
  /// Starts moving `radio` from its current position through `waypoints`
  /// at `speed_mps`, updating every `tick`. The mover idles at the last
  /// waypoint (query `done()`).
  WaypointMover(sim::Simulator& sim, radio::VirtualRadio& radio,
                std::vector<phy::Position> waypoints, double speed_mps,
                Duration tick = Duration::seconds(1));
  ~WaypointMover();

  WaypointMover(const WaypointMover&) = delete;
  WaypointMover& operator=(const WaypointMover&) = delete;

  void start();
  void stop();

  bool done() const { return next_waypoint_ >= waypoints_.size(); }
  double distance_travelled_m() const { return travelled_m_; }

 private:
  void step();

  sim::Simulator& sim_;
  radio::VirtualRadio& radio_;
  std::vector<phy::Position> waypoints_;
  double speed_mps_;
  Duration tick_;
  std::size_t next_waypoint_ = 0;
  double travelled_m_ = 0.0;
  sim::TimerId timer_ = 0;
  bool running_ = false;
};

}  // namespace lm::testbed
