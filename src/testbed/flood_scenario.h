// FloodScenario — the flooding-baseline counterpart of MeshScenario: one
// simulator + channel + FloodingNodes, with the same address assignment so
// experiments can swap protocols without touching the rest of the harness.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "baseline/flooding_node.h"
#include "phy/geometry.h"
#include "radio/channel.h"
#include "radio/virtual_radio.h"
#include "sim/simulator.h"

namespace lm::testbed {

struct FloodScenarioConfig {
  std::uint64_t seed = 1;
  radio::PropagationConfig propagation = radio::PropagationConfig::campus();
  radio::RadioConfig radio;
  baseline::FloodConfig flood;
};

class FloodScenario {
 public:
  explicit FloodScenario(FloodScenarioConfig config);
  ~FloodScenario();

  FloodScenario(const FloodScenario&) = delete;
  FloodScenario& operator=(const FloodScenario&) = delete;

  std::size_t add_node(phy::Position position);
  void add_nodes(const std::vector<phy::Position>& positions);

  std::size_t size() const { return nodes_.size(); }
  sim::Simulator& simulator() { return sim_; }
  radio::Channel& channel() { return *channel_; }
  baseline::FloodingNode& node(std::size_t i) { return *nodes_.at(i); }
  radio::VirtualRadio& radio(std::size_t i) { return *radios_.at(i); }
  net::Address address_of(std::size_t i) const;

  void start_all();
  void run_for(Duration d) { sim_.run_for(d); }

  /// Total airtime spent by all nodes.
  Duration total_airtime() const;
  std::uint64_t total_bytes_sent() const;

 private:
  FloodScenarioConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<radio::Channel> channel_;
  std::vector<std::unique_ptr<radio::VirtualRadio>> radios_;
  std::vector<std::unique_ptr<baseline::FloodingNode>> nodes_;
};

}  // namespace lm::testbed
