// Node placement generators for scenarios.
//
// All generators return positions in meters. The paper's testbed is a
// handful of boards spread over a campus; chain/grid/star are the canonical
// controlled abstractions of such deployments and the random field scales
// them up for the larger experiments.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "phy/geometry.h"
#include "support/rng.h"

namespace lm::testbed {

/// n nodes on a line, `spacing` meters apart: 0 — 1 — 2 — ...
std::vector<phy::Position> chain(std::size_t n, double spacing_m);

/// rows x cols lattice with `spacing` meters between neighbors.
std::vector<phy::Position> grid(std::size_t rows, std::size_t cols, double spacing_m);

/// One hub at the origin (index 0) and `leaves` nodes evenly spread on a
/// circle of `radius` meters.
std::vector<phy::Position> star(std::size_t leaves, double radius_m);

/// n nodes uniformly at random in a width x height rectangle.
std::vector<phy::Position> random_field(std::size_t n, double width_m,
                                        double height_m, Rng& rng);

/// Random field resampled until the unit-disk graph with radius
/// `max_link_m` is connected. Throws ContractViolation when `max_tries`
/// resamples never produce a connected layout (parameters are infeasible).
std::vector<phy::Position> connected_random_field(std::size_t n, double width_m,
                                                  double height_m,
                                                  double max_link_m, Rng& rng,
                                                  int max_tries = 200);

/// BFS hop counts over an arbitrary link predicate. result[i][j] is the
/// minimum number of hops from i to j, or -1 when unreachable. `linked`
/// need not be symmetric; hops follow directed edges i -> j.
std::vector<std::vector<int>> hop_matrix(
    std::size_t n, const std::function<bool(std::size_t, std::size_t)>& linked);

/// True when every node reaches every other over `linked`.
bool is_connected(std::size_t n,
                  const std::function<bool(std::size_t, std::size_t)>& linked);

}  // namespace lm::testbed
