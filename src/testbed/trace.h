// JSONL trace export — the scenario's flight recorder.
//
// Serializes sniffer captures and routing-table snapshots as JSON Lines
// (one self-contained JSON object per line), the format log pipelines and
// notebooks ingest directly. Everything is written with a minimal
// hand-rolled emitter — the schema is flat, so no JSON library is needed.
//
// Record kinds:
//   {"kind":"frame","t":12.345,"rssi":-98.2,"snr":18.8,"tx":3,
//    "type":"DATA","src":"0x0001","dst":"0x0002","origin":"0x0001",
//    "final":"0x0004","ttl":15,"id":7,"bytes":18}
//   {"kind":"frame","t":...,"undecodable":true,"bytes":2}
//   {"kind":"route","t":60.0,"node":"0x0001","dst":"0x0004",
//    "via":"0x0002","metric":3,"role":"-"}
#pragma once

#include <string>

#include "testbed/scenario.h"
#include "testbed/sniffer.h"

namespace lm::testbed {

/// One captured frame as a JSON line (newline-terminated).
std::string frame_to_json(const CapturedFrame& frame);

/// The whole capture log as JSONL.
std::string captures_to_json(const Sniffer& sniffer);

/// Every routing-table entry of every node, stamped with the current
/// simulated time, as JSONL.
std::string routes_to_json(const MeshScenario& scenario);

/// Writes `text` to `path` (truncating). Returns false on I/O failure.
bool write_file(const std::string& path, const std::string& text);

}  // namespace lm::testbed
