#include "testbed/traffic.h"

#include "support/assert.h"

namespace lm::testbed {

void attach_tracker(MeshScenario& scenario, metrics::PacketTracker& tracker) {
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    net::MeshNode& node = scenario.node(i);
    sim::Simulator& sim = scenario.simulator();
    node.set_datagram_handler(
        [&tracker, &sim](net::Address /*origin*/,
                         const std::vector<std::uint8_t>& payload,
                         std::uint8_t hops) {
          const auto token = metrics::PacketTracker::extract_token(payload);
          if (token) tracker.register_delivery(*token, sim.now(), hops);
        });
  }
}

void attach_tracker(FloodScenario& scenario, metrics::PacketTracker& tracker) {
  for (std::size_t i = 0; i < scenario.size(); ++i) {
    baseline::FloodingNode& node = scenario.node(i);
    sim::Simulator& sim = scenario.simulator();
    node.set_handler([&tracker, &sim](net::Address /*origin*/,
                                      const std::vector<std::uint8_t>& payload,
                                      std::uint8_t hops) {
      const auto token = metrics::PacketTracker::extract_token(payload);
      if (token) tracker.register_delivery(*token, sim.now(), hops);
    });
  }
}

// --- DatagramTraffic ------------------------------------------------------------

DatagramTraffic::DatagramTraffic(MeshScenario& scenario,
                                 metrics::PacketTracker& tracker, std::size_t src,
                                 std::size_t dst, TrafficConfig config,
                                 std::uint64_t seed)
    : scenario_(scenario),
      tracker_(tracker),
      src_(src),
      dst_(dst),
      config_(config),
      rng_(seed) {
  LM_REQUIRE(src != dst);
  LM_REQUIRE(config.payload_size >= 8);
  LM_REQUIRE(config.mean_interval > Duration::zero());
}

DatagramTraffic::~DatagramTraffic() { stop(); }

void DatagramTraffic::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  schedule_next();
}

void DatagramTraffic::stop() {
  running_ = false;
  if (timer_ != 0) {
    scenario_.simulator().cancel(timer_);
    timer_ = 0;
  }
}

void DatagramTraffic::schedule_next() {
  const Duration gap =
      config_.poisson
          ? Duration::from_seconds(rng_.exponential(config_.mean_interval.seconds_d()))
          : config_.mean_interval;
  timer_ = scenario_.simulator().schedule_after(gap, [this] {
    timer_ = 0;
    fire();
  });
}

void DatagramTraffic::fire() {
  if (!running_) return;
  sends_attempted_++;
  const std::uint64_t token =
      tracker_.register_send(scenario_.simulator().now());
  auto payload = metrics::PacketTracker::make_payload(token, config_.payload_size);
  trace::DropReason why = trace::DropReason::None;
  if (!scenario_.node(src_).send_datagram(scenario_.address_of(dst_),
                                          std::move(payload), &why)) {
    tracker_.register_refused(why);
  }
  schedule_next();
}

// --- FloodTraffic ----------------------------------------------------------------

FloodTraffic::FloodTraffic(FloodScenario& scenario,
                           metrics::PacketTracker& tracker, std::size_t src,
                           std::size_t dst, TrafficConfig config,
                           std::uint64_t seed)
    : scenario_(scenario),
      tracker_(tracker),
      src_(src),
      dst_(dst),
      config_(config),
      rng_(seed) {
  LM_REQUIRE(src != dst);
  LM_REQUIRE(config.payload_size >= 8);
  LM_REQUIRE(config.mean_interval > Duration::zero());
}

FloodTraffic::~FloodTraffic() { stop(); }

void FloodTraffic::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  schedule_next();
}

void FloodTraffic::stop() {
  running_ = false;
  if (timer_ != 0) {
    scenario_.simulator().cancel(timer_);
    timer_ = 0;
  }
}

void FloodTraffic::schedule_next() {
  const Duration gap =
      config_.poisson
          ? Duration::from_seconds(rng_.exponential(config_.mean_interval.seconds_d()))
          : config_.mean_interval;
  timer_ = scenario_.simulator().schedule_after(gap, [this] {
    timer_ = 0;
    fire();
  });
}

void FloodTraffic::fire() {
  if (!running_) return;
  const std::uint64_t token =
      tracker_.register_send(scenario_.simulator().now());
  auto payload = metrics::PacketTracker::make_payload(token, config_.payload_size);
  if (!scenario_.node(src_).send(scenario_.address_of(dst_), std::move(payload))) {
    tracker_.register_refused();
  }
  schedule_next();
}

}  // namespace lm::testbed
