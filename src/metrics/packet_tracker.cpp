#include "metrics/packet_tracker.h"

#include "support/assert.h"
#include "support/byte_codec.h"

namespace lm::metrics {

std::uint64_t PacketTracker::register_send(TimePoint now) {
  const std::uint64_t token = next_token_++;
  pending_.emplace(token, Pending{now, false});
  return token;
}

std::vector<std::uint8_t> PacketTracker::make_payload(std::uint64_t token,
                                                      std::size_t size) {
  LM_REQUIRE(size >= 8);
  ByteWriter w;
  w.u64(token);
  std::vector<std::uint8_t> out = w.take();
  out.resize(size, 0);
  return out;
}

std::optional<std::uint64_t> PacketTracker::extract_token(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 8) return std::nullopt;
  ByteReader r(payload.subspan(0, 8));
  return r.u64();
}

void PacketTracker::register_delivery(std::uint64_t token, TimePoint now,
                                      std::uint8_t hops) {
  const auto it = pending_.find(token);
  if (it == pending_.end()) return;  // token from another tracker/run
  if (it->second.delivered) {
    duplicates_++;
    return;
  }
  it->second.delivered = true;
  delivered_++;
  latency_.add((now - it->second.sent_at).seconds_d());
  hops_.add(static_cast<double>(hops));
}

double PacketTracker::pdr() const {
  if (next_token_ == 0) return 0.0;
  return static_cast<double>(delivered_) / static_cast<double>(next_token_);
}

}  // namespace lm::metrics
