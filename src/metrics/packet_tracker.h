// End-to-end delivery accounting.
//
// Workload generators register every application send and stamp the issued
// token into the first 8 payload bytes; the receiving handler extracts the
// token and reports the delivery. The tracker then yields the PDR, latency
// distribution and hop distribution a bench table needs. Tokens are opaque
// sequence numbers, so duplicates and reordering are detected exactly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "support/stats.h"
#include "support/time.h"
#include "trace/trace_event.h"

namespace lm::metrics {

class PacketTracker {
 public:
  /// Registers an attempted send at `now`; returns the token to embed.
  std::uint64_t register_send(TimePoint now);

  /// Builds a payload of exactly `size` bytes (>= 8) carrying `token` in its
  /// first 8 bytes, zero-padded.
  static std::vector<std::uint8_t> make_payload(std::uint64_t token, std::size_t size);

  /// Token from a payload built by make_payload; nullopt if too short.
  static std::optional<std::uint64_t> extract_token(
      std::span<const std::uint8_t> payload);

  /// The network refused the send. The cause (from the flight recorder's
  /// DropReason vocabulary — NoRoute, QueueFull, ...) keys the per-cause
  /// breakdown; callers without cause information record None.
  void register_refused(trace::DropReason reason = trace::DropReason::None) {
    refused_++;
    refused_by_cause_[reason]++;
  }

  /// A payload with `token` reached its destination after `hops` hops.
  /// Duplicate deliveries of the same token are counted separately and do
  /// not affect PDR.
  void register_delivery(std::uint64_t token, TimePoint now, std::uint8_t hops);

  // --- Results ---------------------------------------------------------------
  std::uint64_t attempted() const { return next_token_; }
  std::uint64_t refused() const { return refused_; }
  /// Refusals recorded under `reason`.
  std::uint64_t refused(trace::DropReason reason) const {
    const auto it = refused_by_cause_.find(reason);
    return it == refused_by_cause_.end() ? 0 : it->second;
  }
  const std::map<trace::DropReason, std::uint64_t>& refusals_by_cause() const {
    return refused_by_cause_;
  }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t duplicates() const { return duplicates_; }
  /// delivered / attempted (attempted includes refused sends: a send the
  /// network would not accept is a delivery failure for the application).
  double pdr() const;
  /// Seconds from send to first delivery.
  const Histogram& latency() const { return latency_; }
  const Histogram& hops() const { return hops_; }

 private:
  struct Pending {
    TimePoint sent_at;
    bool delivered = false;
  };

  std::uint64_t next_token_ = 0;
  std::uint64_t refused_ = 0;
  std::map<trace::DropReason, std::uint64_t> refused_by_cause_;
  std::uint64_t delivered_ = 0;
  std::uint64_t duplicates_ = 0;
  std::map<std::uint64_t, Pending> pending_;
  Histogram latency_;
  Histogram hops_;
};

}  // namespace lm::metrics
