// Minimal leveled logger with a pluggable simulation-time source.
//
// The discrete-event engine installs a time source so every line carries the
// *simulated* timestamp — essential when debugging protocol traces where wall
// time is meaningless. Logging defaults to Warn so tests and benches stay
// quiet; examples raise it to Info/Debug to show protocol behaviour.
#pragma once

#include <cstdarg>
#include <functional>
#include <string>

namespace lm {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Installs a callback returning the current simulated time in us, shown as
  /// a prefix on every line. Pass nullptr to revert to no prefix.
  void set_time_source(std::function<long long()> source) {
    time_source_ = std::move(source);
  }

  bool enabled(LogLevel level) const { return level >= level_; }

  void log(LogLevel level, const char* tag, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Warn;
  std::function<long long()> time_source_;
};

}  // namespace lm

#define LM_LOG(level, tag, ...)                                      \
  do {                                                               \
    if (::lm::Logger::instance().enabled(level))                     \
      ::lm::Logger::instance().log(level, tag, __VA_ARGS__);         \
  } while (false)

#define LM_TRACE(tag, ...) LM_LOG(::lm::LogLevel::Trace, tag, __VA_ARGS__)
#define LM_DEBUG(tag, ...) LM_LOG(::lm::LogLevel::Debug, tag, __VA_ARGS__)
#define LM_INFO(tag, ...) LM_LOG(::lm::LogLevel::Info, tag, __VA_ARGS__)
#define LM_WARN(tag, ...) LM_LOG(::lm::LogLevel::Warn, tag, __VA_ARGS__)
#define LM_ERROR(tag, ...) LM_LOG(::lm::LogLevel::Error, tag, __VA_ARGS__)
