#include "support/byte_codec.h"

#include <cstdio>

namespace lm {

std::string to_hex(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 3);
  char buf[4];
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf, sizeof buf, i == 0 ? "%02X" : " %02X", data[i]);
    out += buf;
  }
  return out;
}

}  // namespace lm
