// A small fixed-size worker pool for embarrassingly-parallel work.
//
// The simulation engine itself is strictly single-threaded — determinism
// comes from one event loop per Simulator. Parallelism in this codebase
// therefore lives *between* simulations: every experiment is a sweep of
// independent (scenario, seed) runs, and the pool shards those runs across
// cores (see testbed/parallel_runner.h). No external dependencies: plain
// std::thread workers draining a mutex/condvar-protected job queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lm {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). The pool is usable
  /// immediately and reusable after drains — submit/wait cycles can repeat.
  explicit ThreadPool(std::size_t threads);

  /// Waits for queued jobs to finish, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a job. Jobs start in submission order (completion order is up
  /// to the scheduler). Must not be called after destruction begins.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  /// Thread count to use when the caller expresses no preference: the
  /// LM_THREADS environment variable if set to a positive integer, else
  /// std::thread::hardware_concurrency(), else 1.
  static std::size_t default_thread_count();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // wakes workers when jobs arrive
  std::condition_variable idle_cv_;  // wakes wait_idle when all is drained
  std::deque<std::function<void()>> jobs_;
  std::size_t active_ = 0;  // jobs currently executing
  bool stop_ = false;
};

/// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
/// Every index runs even if earlier ones throw; the first exception (in
/// index order of observation) is rethrown in the caller.
void parallel_for_each(ThreadPool& pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn);

}  // namespace lm
