// Deterministic random number generation.
//
// Every stochastic element of a scenario (shadowing, packet jitter, traffic
// arrival, backoff) draws from an Rng seeded from the scenario seed, so a
// scenario replays bit-identically given the same seed. The generator is
// xoshiro256** (public domain, Blackman & Vigna), seeded via SplitMix64;
// it is much faster than std::mt19937_64 and has no std-library
// implementation-defined distribution behaviour — the distributions below
// are our own, so results are identical across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.h"

namespace lm {

class Rng {
 public:
  /// Seeds the stream; two Rng objects with equal seeds produce equal output.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream, e.g. one per node. Children with
  /// distinct tags are statistically independent of each other and of the
  /// parent's future output.
  Rng fork(std::uint64_t tag);

  /// Uniform on the full 64-bit range.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard normal via Box-Muller (cached second variate).
  double normal();

  /// Normal with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Exponential with the given mean (> 0); used for Poisson arrivals.
  double exponential(double mean);

  /// A uniformly random element index for a container of size n (n > 0).
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace lm
