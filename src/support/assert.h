// Contract-checking macros used throughout the library.
//
// LM_REQUIRE  — precondition on a public API; violations indicate caller bugs.
// LM_ASSERT   — internal invariant; violations indicate library bugs.
//
// Both throw lm::ContractViolation so that tests can assert on misuse and a
// long-running simulation fails loudly instead of corrupting state. They are
// always on: this library's hot paths are dominated by simulated airtime, not
// by checks, and silent corruption in a routing simulation is worse than the
// nanoseconds saved.
#pragma once

#include <stdexcept>
#include <string>

namespace lm {

/// Thrown when a precondition or invariant check fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace lm

#define LM_REQUIRE(expr)                                                    \
  do {                                                                      \
    if (!(expr)) ::lm::detail::contract_fail("precondition", #expr, __FILE__, __LINE__); \
  } while (false)

#define LM_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::lm::detail::contract_fail("invariant", #expr, __FILE__, __LINE__); \
  } while (false)
