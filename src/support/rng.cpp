#include "support/rng.h"

#include <cmath>

namespace lm {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the tag with fresh output so child streams with different tags do not
  // overlap, and forking does not replay the parent's stream.
  return Rng(next_u64() ^ (tag * 0x9E3779B97F4A7C15ULL) ^ 0xA5A5A5A55A5A5A5AULL);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  LM_REQUIRE(lo < hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  LM_REQUIRE(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) {
  LM_REQUIRE(sigma >= 0.0);
  return mean + sigma * normal();
}

double Rng::exponential(double mean) {
  LM_REQUIRE(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -mean * std::log(u);
}

std::size_t Rng::index(std::size_t n) {
  LM_REQUIRE(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

}  // namespace lm
