#include "support/time.h"

#include <cstdio>

namespace lm {

std::string Duration::to_string() const {
  char buf[48];
  const std::int64_t a = us_ < 0 ? -us_ : us_;
  if (a >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(us_) / 1e6);
  } else if (a >= 1000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(us_) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

std::string TimePoint::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "t=%.6fs", static_cast<double>(us_) / 1e6);
  return buf;
}

}  // namespace lm
