#include "support/log.h"

#include <cstdio>

namespace lm {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const char* tag, const char* fmt, ...) {
  static const char* const kNames[] = {"TRACE", "DEBUG", "INFO", "WARN", "ERROR"};
  char line[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(line, sizeof line, fmt, args);
  va_end(args);
  if (time_source_) {
    const long long us = time_source_();
    std::fprintf(stderr, "[%12.6f] %-5s %-10s %s\n",
                 static_cast<double>(us) / 1e6,
                 kNames[static_cast<int>(level)], tag, line);
  } else {
    std::fprintf(stderr, "%-5s %-10s %s\n", kNames[static_cast<int>(level)], tag, line);
  }
}

}  // namespace lm
