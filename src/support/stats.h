// Streaming statistics used by the metrics layer and benches.
//
// RunningStats keeps count/mean/variance/min/max in O(1) memory (Welford's
// algorithm). Histogram keeps all samples to report exact percentiles; the
// sample counts in these simulations (up to ~1e6) make that affordable and
// exactness matters when comparing protocol variants.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lm {

class RunningStats {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return count_ > 0 ? mean_ * static_cast<double>(count_) : 0.0; }

  void merge(const RunningStats& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Histogram {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Exact percentile by linear interpolation between order statistics.
  /// q in [0, 100]; returns 0 for an empty histogram.
  double percentile(double q) const;

  double median() const { return percentile(50.0); }
  double mean() const;
  double min() const { return percentile(0.0); }
  double max() const { return percentile(100.0); }

  /// "n=..., mean=..., p50=..., p95=..., max=..." — for bench tables.
  std::string summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace lm
