// Bounded little-endian byte encoding/decoding for over-the-air packets.
//
// LoRaMesher frames are byte arrays at most 255 bytes long (SX127x FIFO).
// ByteWriter appends fields to a growable buffer; ByteReader consumes fields
// with explicit bounds checking and never reads past the end — a malformed
// frame results in `ok() == false` rather than UB, mirroring how a robust
// on-device parser must behave with corrupted radio payloads.
//
// Wire order is little-endian, matching the ESP32 (Xtensa LE) layout the
// original library serializes structs with.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "support/assert.h"

namespace lm {

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// False once any read has run past the end; all subsequent reads yield 0.
  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  /// True when the frame was fully consumed without overrun.
  bool exhausted() const { return ok_ && pos_ == data_.size(); }

  std::uint8_t u8() {
    if (!ensure(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!ensure(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
  }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int16_t i16() { return static_cast<std::int16_t>(u16()); }

  /// Reads exactly n bytes; returns an empty vector (and poisons the reader)
  /// if fewer remain.
  std::vector<std::uint8_t> bytes(std::size_t n) {
    if (!ensure(n)) return {};
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  /// Consumes the rest of the frame.
  std::vector<std::uint8_t> rest() { return bytes(remaining()); }

 private:
  bool ensure(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Renders bytes as hex for logs and test diagnostics, e.g. "0A FF 12".
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace lm
