// Strong time types for the simulation and protocol layers.
//
// All protocol timing (airtime, beacon intervals, timeouts) is expressed in
// these types rather than raw integers so that seconds/milliseconds mixups
// are compile errors. Resolution is one microsecond, which comfortably
// resolves LoRa symbol times (the shortest, SF5@500kHz, is 64 us; the
// configurations this library supports, SF7..SF12 at 125-500 kHz, are all
// >= 256 us).
#pragma once

#include <compare>
#include <concepts>
#include <cstdint>
#include <limits>
#include <string>

namespace lm {

/// A signed span of simulated time with microsecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration microseconds(std::int64_t us) { return Duration(us); }
  static constexpr Duration milliseconds(std::int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration seconds(std::int64_t s) { return Duration(s * 1'000'000); }
  static constexpr Duration minutes(std::int64_t m) { return Duration(m * 60'000'000); }
  static constexpr Duration hours(std::int64_t h) { return Duration(h * 3'600'000'000LL); }

  /// Converts a floating-point second count, rounding to the nearest us.
  static constexpr Duration from_seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6 + (s >= 0 ? 0.5 : -0.5)));
  }

  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr std::int64_t ms() const { return us_ / 1000; }
  constexpr double seconds_d() const { return static_cast<double>(us_) / 1e6; }

  constexpr bool is_zero() const { return us_ == 0; }
  constexpr bool is_negative() const { return us_ < 0; }

  friend constexpr Duration operator+(Duration a, Duration b) { return Duration(a.us_ + b.us_); }
  friend constexpr Duration operator-(Duration a, Duration b) { return Duration(a.us_ - b.us_); }
  template <std::integral I>
  friend constexpr Duration operator*(Duration a, I k) {
    return Duration(a.us_ * static_cast<std::int64_t>(k));
  }
  template <std::integral I>
  friend constexpr Duration operator*(I k, Duration a) {
    return a * k;
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration::from_seconds(a.seconds_d() * k);
  }
  template <std::integral I>
  friend constexpr Duration operator/(Duration a, I k) {
    return Duration(a.us_ / static_cast<std::int64_t>(k));
  }
  friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.us_) / static_cast<double>(b.us_);
  }
  constexpr Duration operator-() const { return Duration(-us_); }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

  /// Human-readable rendering, e.g. "1.500s", "250ms", "64us".
  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute instant on the simulation clock (us since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() = default;

  static constexpr TimePoint origin() { return TimePoint(0); }
  static constexpr TimePoint from_us(std::int64_t us) { return TimePoint(us); }
  static constexpr TimePoint max() {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t us() const { return us_; }
  constexpr double seconds_d() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr TimePoint operator+(TimePoint t, Duration d) {
    return TimePoint(t.us_ + d.us());
  }
  friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  friend constexpr TimePoint operator-(TimePoint t, Duration d) {
    return TimePoint(t.us_ - d.us());
  }
  friend constexpr Duration operator-(TimePoint a, TimePoint b) {
    return Duration::microseconds(a.us_ - b.us_);
  }
  constexpr TimePoint& operator+=(Duration d) { us_ += d.us(); return *this; }

  friend constexpr auto operator<=>(TimePoint, TimePoint) = default;

  std::string to_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace lm
