#include "support/thread_pool.h"

#include <cstdlib>
#include <exception>
#include <memory>

#include "support/assert.h"

namespace lm {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  LM_REQUIRE(job != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    LM_REQUIRE(!stop_);
    jobs_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop_ set and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++active_;
    }
    job();  // job exceptions are the submitter's contract to catch
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (jobs_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("LM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for_each(ThreadPool& pool, std::size_t n,
                       const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;

  struct Shared {
    std::mutex mu;
    std::condition_variable done_cv;
    std::size_t remaining;
    std::exception_ptr first_error;
  };
  auto shared = std::make_shared<Shared>();
  shared->remaining = n;

  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([shared, &fn, i] {
      std::exception_ptr error;
      try {
        fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(shared->mu);
      if (error && !shared->first_error) shared->first_error = error;
      if (--shared->remaining == 0) shared->done_cv.notify_all();
    });
  }

  std::unique_lock<std::mutex> lock(shared->mu);
  shared->done_cv.wait(lock, [&] { return shared->remaining == 0; });
  if (shared->first_error) std::rethrow_exception(shared->first_error);
}

}  // namespace lm
