#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lm {

void RunningStats::add(double x) {
  ++count_;
  if (count_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0.0) return samples_.front();
  if (q >= 100.0) return samples_.back();
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Histogram::mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

std::string Histogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "n=%zu mean=%.3f p50=%.3f p95=%.3f max=%.3f",
                count(), mean(), percentile(50), percentile(95), max());
  return buf;
}

}  // namespace lm
