// Plane geometry for node placement.
//
// The testbed places nodes on a 2-D plane in meters; the propagation model
// only consumes pairwise distances, so 2-D suffices for every experiment in
// the paper's scope.
#pragma once

#include <cmath>

namespace lm::phy {

struct Position {
  double x = 0.0;  // meters
  double y = 0.0;  // meters

  friend bool operator==(const Position&, const Position&) = default;
};

inline double distance_m(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace lm::phy
