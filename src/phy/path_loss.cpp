#include "phy/path_loss.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace lm::phy {

namespace {
constexpr double kSpeedOfLight = 299'792'458.0;
constexpr double kMinDistanceM = 1.0;
}  // namespace

FreeSpacePathLoss::FreeSpacePathLoss(double frequency_hz)
    : frequency_hz_(frequency_hz) {
  LM_REQUIRE(frequency_hz > 0.0);
}

double FreeSpacePathLoss::path_loss_db(double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  // Friis: 20 log10(4 * pi * d * f / c).
  return 20.0 * std::log10(4.0 * M_PI * d * frequency_hz_ / kSpeedOfLight);
}

LogDistancePathLoss::LogDistancePathLoss(double exponent,
                                         double reference_loss_db,
                                         double reference_distance_m)
    : exponent_(exponent),
      reference_loss_db_(reference_loss_db),
      reference_distance_m_(reference_distance_m) {
  LM_REQUIRE(exponent > 0.0);
  LM_REQUIRE(reference_distance_m > 0.0);
}

double LogDistancePathLoss::path_loss_db(double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  return reference_loss_db_ +
         10.0 * exponent_ * std::log10(d / reference_distance_m_);
}

std::unique_ptr<PathLossModel> make_free_space(double frequency_hz) {
  return std::make_unique<FreeSpacePathLoss>(frequency_hz);
}

std::unique_ptr<PathLossModel> make_log_distance(double exponent,
                                                 double reference_loss_db) {
  return std::make_unique<LogDistancePathLoss>(exponent, reference_loss_db);
}

}  // namespace lm::phy
