#include "phy/path_loss.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace lm::phy {

namespace {
constexpr double kSpeedOfLight = 299'792'458.0;
constexpr double kMinDistanceM = 1.0;
}  // namespace

double PathLossModel::max_range_m(double max_loss_db) const {
  if (path_loss_db(kMinDistanceM) > max_loss_db) return 0.0;
  if (path_loss_db(kMaxRangeCapM) <= max_loss_db) return kMaxRangeCapM;
  double lo = kMinDistanceM;  // invariant: loss(lo) <= budget < loss(hi)
  double hi = kMaxRangeCapM;
  for (int i = 0; i < 200 && hi - lo > 1e-3; ++i) {
    const double mid = 0.5 * (lo + hi);
    (path_loss_db(mid) <= max_loss_db ? lo : hi) = mid;
  }
  return lo;
}

FreeSpacePathLoss::FreeSpacePathLoss(double frequency_hz)
    : frequency_hz_(frequency_hz) {
  LM_REQUIRE(frequency_hz > 0.0);
}

double FreeSpacePathLoss::path_loss_db(double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  // Friis: 20 log10(4 * pi * d * f / c).
  return 20.0 * std::log10(4.0 * M_PI * d * frequency_hz_ / kSpeedOfLight);
}

double FreeSpacePathLoss::max_range_m(double max_loss_db) const {
  // Invert Friis: d = 10^(L/20) * c / (4 * pi * f).
  const double d = std::pow(10.0, max_loss_db / 20.0) * kSpeedOfLight /
                   (4.0 * M_PI * frequency_hz_);
  if (d < kMinDistanceM) return path_loss_db(kMinDistanceM) <= max_loss_db
                                    ? kMinDistanceM : 0.0;
  return std::min(d, kMaxRangeCapM);
}

LogDistancePathLoss::LogDistancePathLoss(double exponent,
                                         double reference_loss_db,
                                         double reference_distance_m)
    : exponent_(exponent),
      reference_loss_db_(reference_loss_db),
      reference_distance_m_(reference_distance_m) {
  LM_REQUIRE(exponent > 0.0);
  LM_REQUIRE(reference_distance_m > 0.0);
}

double LogDistancePathLoss::path_loss_db(double distance_m) const {
  const double d = std::max(distance_m, kMinDistanceM);
  return reference_loss_db_ +
         10.0 * exponent_ * std::log10(d / reference_distance_m_);
}

double LogDistancePathLoss::max_range_m(double max_loss_db) const {
  // Invert PL(d) = L0 + 10 n log10(d / d0): d = d0 * 10^((L - L0) / (10 n)).
  const double d = reference_distance_m_ *
                   std::pow(10.0, (max_loss_db - reference_loss_db_) /
                                      (10.0 * exponent_));
  if (d < kMinDistanceM) return path_loss_db(kMinDistanceM) <= max_loss_db
                                    ? kMinDistanceM : 0.0;
  return std::min(d, kMaxRangeCapM);
}

std::unique_ptr<PathLossModel> make_free_space(double frequency_hz) {
  return std::make_unique<FreeSpacePathLoss>(frequency_hz);
}

std::unique_ptr<PathLossModel> make_log_distance(double exponent,
                                                 double reference_loss_db) {
  return std::make_unique<LogDistancePathLoss>(exponent, reference_loss_db);
}

}  // namespace lm::phy
