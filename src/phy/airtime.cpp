#include "phy/airtime.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace lm::phy {

std::size_t payload_symbols(const Modulation& mod, std::size_t payload_bytes) {
  LM_REQUIRE(payload_bytes <= kMaxPhyPayload);
  const double pl = static_cast<double>(payload_bytes);
  const double sf = sf_value(mod.sf);
  const double ih = mod.explicit_header ? 0.0 : 1.0;
  const double crc = mod.crc_on ? 1.0 : 0.0;
  const double de = mod.low_data_rate_optimize() ? 1.0 : 0.0;
  const double cr = static_cast<double>(mod.cr);

  // AN1200.13: nPayload = 8 + max(ceil((8PL - 4SF + 28 + 16CRC - 20IH)
  //                                     / (4(SF - 2DE))) * (CR + 4), 0)
  const double numerator = 8.0 * pl - 4.0 * sf + 28.0 + 16.0 * crc - 20.0 * ih;
  const double denominator = 4.0 * (sf - 2.0 * de);
  const double blocks = std::ceil(numerator / denominator);
  const double extra = std::max(blocks * (cr + 4.0), 0.0);
  return static_cast<std::size_t>(8.0 + extra);
}

Duration preamble_time(const Modulation& mod) {
  // Programmed preamble symbols plus the 4.25-symbol sync word/SFD.
  const double t =
      (static_cast<double>(mod.preamble_symbols) + 4.25) * mod.symbol_time().seconds_d();
  return Duration::from_seconds(t);
}

Duration time_on_air(const Modulation& mod, std::size_t payload_bytes) {
  const double tsym = mod.symbol_time().seconds_d();
  const double tpayload =
      static_cast<double>(payload_symbols(mod, payload_bytes)) * tsym;
  return Duration::from_seconds(preamble_time(mod).seconds_d() + tpayload);
}

Duration cad_time(const Modulation& mod) {
  // One full symbol of capture plus ~0.5 symbol of processing (SX1276
  // datasheet section 4.1.6.2 gives ~1.92 ms total at SF7/125 kHz).
  return Duration::from_seconds(1.5 * mod.symbol_time().seconds_d());
}

}  // namespace lm::phy
