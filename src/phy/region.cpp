#include "phy/region.h"

namespace lm::phy {

const RegionParams& eu868() {
  static const RegionParams region{
      "EU868",
      {
          // ETSI EN 300 220 annex B sub-bands used by LoRa devices.
          {"g", 865.0e6, 868.0e6, 0.01, 14.0},
          {"g1", 868.0e6, 868.6e6, 0.01, 14.0},
          {"g2", 868.7e6, 869.2e6, 0.001, 14.0},
          {"g3", 869.4e6, 869.65e6, 0.10, 27.0},
          {"g4", 869.7e6, 870.0e6, 0.01, 14.0},
      },
      {868.1e6, 868.3e6, 868.5e6},
      Duration::zero(),  // no dwell rule
  };
  return region;
}

const RegionParams& us915() {
  static const RegionParams region{
      "US915",
      {
          // FCC: no duty limit; +30 dBm with hopping, dwell-limited.
          {"uplink", 902.3e6, 914.9e6, 1.0, 30.0},
          {"downlink", 923.3e6, 927.5e6, 1.0, 30.0},
      },
      {902.3e6, 902.5e6, 902.7e6, 902.9e6, 903.1e6, 903.3e6, 903.5e6, 903.7e6},
      Duration::milliseconds(400),
  };
  return region;
}

const SubBand* sub_band_of(const RegionParams& region, double frequency_hz) {
  for (const SubBand& band : region.sub_bands) {
    if (frequency_hz >= band.low_hz && frequency_hz < band.high_hz) return &band;
  }
  return nullptr;
}

double duty_limit_at(const RegionParams& region, double frequency_hz) {
  const SubBand* band = sub_band_of(region, frequency_hz);
  return band != nullptr ? band->duty_cycle_limit : 1.0;
}

bool dwell_time_ok(const RegionParams& region, Duration airtime) {
  if (region.max_dwell_time.is_zero()) return true;
  return airtime <= region.max_dwell_time;
}

}  // namespace lm::phy
