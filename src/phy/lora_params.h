// LoRa modulation parameters and their radio-level consequences.
//
// Covers the SX127x configurations LoRaMesher exposes: spreading factors
// SF7..SF12, bandwidths 125/250/500 kHz, coding rates 4/5..4/8. Sensitivity
// and SNR demodulation floors follow the SX1276 datasheet; they drive both
// the link-budget check and the collision/capture model.
#pragma once

#include <cstdint>
#include <string>

#include "support/time.h"

namespace lm::phy {

enum class SpreadingFactor : std::uint8_t {
  SF7 = 7,
  SF8 = 8,
  SF9 = 9,
  SF10 = 10,
  SF11 = 11,
  SF12 = 12,
};

enum class Bandwidth : std::uint8_t {
  BW125 = 0,  // 125 kHz
  BW250 = 1,  // 250 kHz
  BW500 = 2,  // 500 kHz
};

enum class CodingRate : std::uint8_t {
  CR4_5 = 1,  // 4/5
  CR4_6 = 2,  // 4/6
  CR4_7 = 3,  // 4/7
  CR4_8 = 4,  // 4/8
};

/// Bandwidth in Hz.
double bandwidth_hz(Bandwidth bw);

/// Numeric spreading factor (7..12).
int sf_value(SpreadingFactor sf);

const char* to_string(SpreadingFactor sf);
const char* to_string(Bandwidth bw);
const char* to_string(CodingRate cr);

/// A complete LoRa PHY configuration. Frames are only mutually receivable
/// when the modulation (sf, bw) and the carrier frequency match.
struct Modulation {
  SpreadingFactor sf = SpreadingFactor::SF7;
  Bandwidth bw = Bandwidth::BW125;
  CodingRate cr = CodingRate::CR4_5;
  std::uint16_t preamble_symbols = 8;  // programmed length, excl. 4.25 sync
  bool explicit_header = true;
  bool crc_on = true;

  /// Low-data-rate optimization is mandated when the symbol time exceeds
  /// 16 ms (SF11/SF12 at 125 kHz); the airtime formula depends on it.
  bool low_data_rate_optimize() const;

  /// Duration of one LoRa symbol: 2^SF / BW.
  Duration symbol_time() const;

  friend bool operator==(const Modulation&, const Modulation&) = default;

  std::string to_string() const;
};

/// SX1276 receiver sensitivity in dBm for the given configuration.
double sensitivity_dbm(SpreadingFactor sf, Bandwidth bw);

/// Minimum SNR (dB) at which the demodulator still decodes the given SF.
/// SX1276 datasheet: -7.5 dB at SF7 down to -20 dB at SF12.
double snr_floor_db(SpreadingFactor sf);

/// Largest PHY payload (bytes) a single frame can carry: the SX127x FIFO
/// limit of 255 bytes.
constexpr std::size_t kMaxPhyPayload = 255;

}  // namespace lm::phy
