// Regional band plans.
//
// LoRa operation is bounded by regional regulation: which carrier
// frequencies exist, how loud a device may transmit, and how much airtime
// it may occupy. LoRaMesher's testbed runs in the EU868 band (1 % duty in
// the g1 sub-band); US915 regulates per-transmission dwell time instead of
// duty cycle. This module captures the parameters the mesh needs so
// configurations can be derived from a named region instead of hand-typed
// numbers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/time.h"

namespace lm::phy {

/// One regulatory sub-band: a frequency range sharing a duty budget.
struct SubBand {
  const char* name;
  double low_hz;
  double high_hz;
  double duty_cycle_limit;   // fraction of airtime (1.0 = unlimited)
  double max_erp_dbm;        // radiated power ceiling
};

struct RegionParams {
  const char* name;
  std::vector<SubBand> sub_bands;
  std::vector<double> default_channels_hz;  // common channel grid
  Duration max_dwell_time;  // per-transmission cap (zero = none)
};

/// EU 863-870 MHz (ETSI EN 300 220): duty-cycle regulated. The default
/// LoRaWAN channels (868.1/868.3/868.5) sit in g1 (1 %).
const RegionParams& eu868();

/// US 902-928 MHz (FCC part 15.247): no duty cycle, but 400 ms dwell per
/// transmission on the uplink channels.
const RegionParams& us915();

/// Sub-band containing `frequency_hz`, or nullptr when out of band.
const SubBand* sub_band_of(const RegionParams& region, double frequency_hz);

/// Duty-cycle limit applying at `frequency_hz` (1.0 when the region does
/// not duty-limit or the frequency is out of band — the dwell limit then
/// rules instead).
double duty_limit_at(const RegionParams& region, double frequency_hz);

/// True when a frame of `airtime` is legal per the region's dwell rule.
bool dwell_time_ok(const RegionParams& region, Duration airtime);

}  // namespace lm::phy
