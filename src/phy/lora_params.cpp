#include "phy/lora_params.h"

#include <cstdio>

#include "support/assert.h"

namespace lm::phy {

double bandwidth_hz(Bandwidth bw) {
  switch (bw) {
    case Bandwidth::BW125: return 125e3;
    case Bandwidth::BW250: return 250e3;
    case Bandwidth::BW500: return 500e3;
  }
  LM_ASSERT(false);
}

int sf_value(SpreadingFactor sf) { return static_cast<int>(sf); }

const char* to_string(SpreadingFactor sf) {
  switch (sf) {
    case SpreadingFactor::SF7: return "SF7";
    case SpreadingFactor::SF8: return "SF8";
    case SpreadingFactor::SF9: return "SF9";
    case SpreadingFactor::SF10: return "SF10";
    case SpreadingFactor::SF11: return "SF11";
    case SpreadingFactor::SF12: return "SF12";
  }
  return "SF?";
}

const char* to_string(Bandwidth bw) {
  switch (bw) {
    case Bandwidth::BW125: return "125kHz";
    case Bandwidth::BW250: return "250kHz";
    case Bandwidth::BW500: return "500kHz";
  }
  return "?kHz";
}

const char* to_string(CodingRate cr) {
  switch (cr) {
    case CodingRate::CR4_5: return "4/5";
    case CodingRate::CR4_6: return "4/6";
    case CodingRate::CR4_7: return "4/7";
    case CodingRate::CR4_8: return "4/8";
  }
  return "4/?";
}

bool Modulation::low_data_rate_optimize() const {
  // Semtech mandates LDRO when the symbol period exceeds 16 ms.
  return symbol_time() > Duration::milliseconds(16);
}

Duration Modulation::symbol_time() const {
  const double t = static_cast<double>(1 << sf_value(sf)) / bandwidth_hz(bw);
  return Duration::from_seconds(t);
}

std::string Modulation::to_string() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s/%s CR%s pre=%u%s%s",
                phy::to_string(sf), phy::to_string(bw), phy::to_string(cr),
                static_cast<unsigned>(preamble_symbols),
                explicit_header ? "" : " implicit-hdr", crc_on ? " crc" : "");
  return buf;
}

double sensitivity_dbm(SpreadingFactor sf, Bandwidth bw) {
  // SX1276 datasheet table 13 (125 kHz column), with the standard
  // +3 dB per bandwidth doubling (noise floor scales with 10*log10(BW)).
  double base;  // at 125 kHz
  switch (sf) {
    case SpreadingFactor::SF7: base = -123.0; break;
    case SpreadingFactor::SF8: base = -126.0; break;
    case SpreadingFactor::SF9: base = -129.0; break;
    case SpreadingFactor::SF10: base = -132.0; break;
    case SpreadingFactor::SF11: base = -134.5; break;
    case SpreadingFactor::SF12: base = -137.0; break;
    default: LM_ASSERT(false);
  }
  switch (bw) {
    case Bandwidth::BW125: return base;
    case Bandwidth::BW250: return base + 3.0;
    case Bandwidth::BW500: return base + 6.0;
  }
  LM_ASSERT(false);
}

double snr_floor_db(SpreadingFactor sf) {
  switch (sf) {
    case SpreadingFactor::SF7: return -7.5;
    case SpreadingFactor::SF8: return -10.0;
    case SpreadingFactor::SF9: return -12.5;
    case SpreadingFactor::SF10: return -15.0;
    case SpreadingFactor::SF11: return -17.5;
    case SpreadingFactor::SF12: return -20.0;
  }
  LM_ASSERT(false);
}

}  // namespace lm::phy
