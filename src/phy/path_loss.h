// Large-scale propagation models.
//
// The authors' testbed spans a university campus (mixed indoor/outdoor).
// We model that environment with log-distance path loss plus log-normal
// shadowing, the standard abstraction for LoRa simulation studies; free-space
// is provided as the optimistic baseline. Shadowing is drawn once per
// (ordered) link and held constant — it models obstacles, which do not change
// packet-to-packet — while fast fading is applied per packet in the
// reception model.
#pragma once

#include <memory>

#include "phy/geometry.h"

namespace lm::phy {

/// Computes mean path loss in dB over a given distance. Implementations must
/// be deterministic functions of distance (randomness lives elsewhere).
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Mean path loss (dB, >= 0) at `distance` meters; distance is clamped to
  /// a minimum of 1 m so co-located radios do not produce -inf.
  virtual double path_loss_db(double distance_m) const = 0;

  /// Largest distance (m) whose mean path loss does not exceed
  /// `max_loss_db` — the inverse of path_loss_db, used to turn a link
  /// budget into a culling radius for the channel's spatial index. Models
  /// are monotone in distance, so the base implementation bisects;
  /// concrete models override with the closed form. Returns 0 when even
  /// the minimum distance exceeds the budget, and `kMaxRangeCapM` when the
  /// budget is never exhausted within that cap.
  virtual double max_range_m(double max_loss_db) const;

  /// Upper bound on any returned range (40,000 km: nothing on a planetary
  /// testbed is farther). Keeps the bisection finite for models whose loss
  /// plateaus.
  static constexpr double kMaxRangeCapM = 4.0e7;
};

/// Free-space (Friis) path loss at the given carrier frequency.
class FreeSpacePathLoss final : public PathLossModel {
 public:
  explicit FreeSpacePathLoss(double frequency_hz = 868e6);
  double path_loss_db(double distance_m) const override;
  double max_range_m(double max_loss_db) const override;

 private:
  double frequency_hz_;
};

/// Log-distance: PL(d) = PL(d0) + 10 * n * log10(d / d0).
///
/// Defaults (n = 3.0, PL(1 m) = 40 dB at 868 MHz) reproduce typical suburban
/// campus measurements reported in LoRa coverage studies: roughly 1-2 km of
/// reliable SF7 range at 14 dBm, a few hundred meters in cluttered segments.
class LogDistancePathLoss final : public PathLossModel {
 public:
  LogDistancePathLoss(double exponent = 3.0, double reference_loss_db = 40.0,
                      double reference_distance_m = 1.0);
  double path_loss_db(double distance_m) const override;
  double max_range_m(double max_loss_db) const override;

  double exponent() const { return exponent_; }

 private:
  double exponent_;
  double reference_loss_db_;
  double reference_distance_m_;
};

std::unique_ptr<PathLossModel> make_free_space(double frequency_hz = 868e6);
std::unique_ptr<PathLossModel> make_log_distance(double exponent = 3.0,
                                                 double reference_loss_db = 40.0);

}  // namespace lm::phy
