#include "phy/reception.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace lm::phy {

double noise_floor_dbm(Bandwidth bw, double noise_figure_db) {
  return -174.0 + 10.0 * std::log10(bandwidth_hz(bw)) + noise_figure_db;
}

double snr_db(double rssi_dbm, Bandwidth bw, double noise_figure_db) {
  return rssi_dbm - noise_floor_dbm(bw, noise_figure_db);
}

double sir_threshold_db(SpreadingFactor signal_sf, SpreadingFactor interferer_sf) {
  // Croce et al. 2018, table I (co-channel SIR thresholds, dB). Rows: signal
  // SF7..SF12; columns: interferer SF7..SF12. Diagonal = capture threshold.
  static constexpr double kMatrix[6][6] = {
      //        i=SF7   SF8    SF9    SF10   SF11   SF12
      /*SF7*/ {6.0, -8.0, -9.0, -9.0, -9.0, -9.0},
      /*SF8*/ {-11.0, 6.0, -11.0, -12.0, -13.0, -13.0},
      /*SF9*/ {-15.0, -13.0, 6.0, -13.0, -14.0, -15.0},
      /*SF10*/ {-19.0, -18.0, -17.0, 6.0, -17.0, -18.0},
      /*SF11*/ {-22.0, -22.0, -21.0, -20.0, 6.0, -20.0},
      /*SF12*/ {-25.0, -25.0, -25.0, -24.0, -23.0, 6.0},
  };
  const int row = sf_value(signal_sf) - 7;
  const int col = sf_value(interferer_sf) - 7;
  LM_ASSERT(row >= 0 && row < 6 && col >= 0 && col < 6);
  return kMatrix[row][col];
}

double max_sir_threshold_db(SpreadingFactor signal_sf) {
  double worst = -1e9;
  for (int sf = 7; sf <= 12; ++sf) {
    worst = std::max(worst, sir_threshold_db(signal_sf,
                                             static_cast<SpreadingFactor>(sf)));
  }
  return worst;
}

double min_sensitivity_dbm() {
  double floor = 0.0;
  for (int sf = 7; sf <= 12; ++sf) {
    for (int bw = 0; bw <= 2; ++bw) {
      floor = std::min(floor,
                       sensitivity_dbm(static_cast<SpreadingFactor>(sf),
                                       static_cast<Bandwidth>(bw)));
    }
  }
  return floor;
}

double decode_probability(double snr, SpreadingFactor sf) {
  // Logistic PER curve centered on the demodulation floor. Slope 2.2/dB
  // puts the 1 %..99 % transition inside a ~4 dB window, matching measured
  // SX1276 waterfall curves.
  constexpr double kSlopePerDb = 2.2;
  const double margin = snr - snr_floor_db(sf);
  return 1.0 / (1.0 + std::exp(-kSlopePerDb * margin));
}

double sample_fading_db(Rng& rng, double sigma_db) {
  LM_REQUIRE(sigma_db >= 0.0);
  if (sigma_db == 0.0) return 0.0;
  return rng.normal(0.0, sigma_db);
}

bool decode_success(Rng& rng, double rssi_dbm, const Modulation& mod,
                    double noise_figure_db) {
  if (rssi_dbm < sensitivity_dbm(mod.sf, mod.bw)) return false;
  const double snr = snr_db(rssi_dbm, mod.bw, noise_figure_db);
  return rng.bernoulli(decode_probability(snr, mod.sf));
}

}  // namespace lm::phy
