// Reception and interference model.
//
// Decodability of a LoRa frame depends on (1) absolute signal level vs the
// receiver's sensitivity, (2) SNR vs the per-SF demodulation floor, and
// (3) co-channel interference vs the capture threshold. This header holds
// the pure computations; the radio::Channel applies them to concrete
// overlapping transmissions.
//
// The interference rules follow the model used by LoRaSim and by Croce et
// al., "Impact of LoRa imperfect orthogonality" (IEEE Comm. Letters 2018):
// a frame survives a co-SF interferer if it is at least 6 dB stronger (the
// capture effect), and survives a different-SF interferer — spreading
// factors are only *quasi*-orthogonal — if it clears the SIR threshold in
// the Croce matrix (large negative values: strong rejection).
#pragma once

#include "phy/lora_params.h"
#include "support/rng.h"

namespace lm::phy {

/// Thermal noise floor for the given bandwidth, in dBm:
/// -174 dBm/Hz + 10 log10(BW) + receiver noise figure (6 dB for SX1276).
double noise_floor_dbm(Bandwidth bw, double noise_figure_db = 6.0);

/// SNR (dB) seen by a receiver for a signal of `rssi_dbm`.
double snr_db(double rssi_dbm, Bandwidth bw, double noise_figure_db = 6.0);

/// Minimum signal-to-interference ratio (dB) for a frame at `signal_sf` to
/// survive an interferer at `interferer_sf` on the same carrier.
/// Diagonal (co-SF) entries are +6 dB (capture threshold); off-diagonal
/// entries are negative (quasi-orthogonality rejection).
double sir_threshold_db(SpreadingFactor signal_sf, SpreadingFactor interferer_sf);

/// Largest SIR threshold a frame at `signal_sf` faces across all interferer
/// SFs (the co-SF capture threshold in practice). An interferer weaker than
/// signal_rssi - this value can never destroy the frame, which is the bound
/// the channel's spatial index uses to cull interference candidates.
double max_sir_threshold_db(SpreadingFactor signal_sf);

/// The most forgiving receiver sensitivity across all SF/BW combinations
/// (SF12 at 125 kHz). Any frame below this at a receiver is undecodable in
/// every configuration — the global floor for carrier-sense culling.
double min_sensitivity_dbm();

/// Probability that an interference-free frame decodes, given its SNR.
///
/// Deterministic thresholding (decode iff SNR >= floor) makes links binary
/// and hides the gray zone real deployments show; we instead use a logistic
/// transition centered on the demodulation floor whose width matches
/// measured LoRa PER-vs-SNR curves: ~0.5 at the floor, > 0.99 at +2 dB,
/// < 0.01 at -2 dB margin.
double decode_probability(double snr_db, SpreadingFactor sf);

/// Samples per-packet fast fading (dB) to add to the mean RSSI. Rayleigh-like
/// amplitude fading expressed in dB: zero-median, sigma_db spread.
double sample_fading_db(Rng& rng, double sigma_db);

/// Convenience: full interference-free reception decision.
bool decode_success(Rng& rng, double rssi_dbm, const Modulation& mod,
                    double noise_figure_db = 6.0);

}  // namespace lm::phy
