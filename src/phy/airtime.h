// LoRa time-on-air, per Semtech AN1200.13 / SX1276 datasheet.
//
// Airtime is the single most important quantity in a LoRa mesh: it sets
// per-hop latency, collision windows, and the duty-cycle budget. E8
// (bench_airtime) validates this implementation against published Semtech
// calculator values.
#pragma once

#include <cstddef>

#include "phy/lora_params.h"
#include "support/time.h"

namespace lm::phy {

/// Number of payload symbols for `payload_bytes` of PHY payload.
std::size_t payload_symbols(const Modulation& mod, std::size_t payload_bytes);

/// Duration of the preamble (programmed symbols + 4.25 sync symbols).
Duration preamble_time(const Modulation& mod);

/// Total frame time on air for `payload_bytes` of PHY payload
/// (payload_bytes <= kMaxPhyPayload).
Duration time_on_air(const Modulation& mod, std::size_t payload_bytes);

/// Airtime consumed by a channel-activity-detection cycle: the SX127x CAD
/// takes roughly one symbol of listening plus ~half a symbol of processing.
Duration cad_time(const Modulation& mod);

}  // namespace lm::phy
