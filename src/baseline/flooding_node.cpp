#include "baseline/flooding_node.h"

#include <algorithm>

#include "phy/airtime.h"
#include "support/assert.h"
#include "support/byte_codec.h"
#include "support/log.h"

namespace lm::baseline {

FloodingNode::FloodingNode(sim::Simulator& sim, radio::Radio& radio,
                           net::Address address, FloodConfig config,
                           std::uint64_t seed)
    : sim_(sim),
      radio_(radio),
      address_(address),
      config_(config),
      rng_(seed),
      duty_(config.duty_cycle_limit, config.duty_cycle_window) {
  LM_REQUIRE(address != net::kUnassigned && address != net::kBroadcast);
  radio_.set_listener(this);
}

FloodingNode::~FloodingNode() {
  if (pipeline_timer_ != 0) sim_.cancel(pipeline_timer_);
  radio_.set_listener(nullptr);
}

void FloodingNode::start() {
  LM_REQUIRE(!running_);
  running_ = true;
  radio_.start_receive();
}

void FloodingNode::stop() {
  if (!running_) return;
  running_ = false;
  if (pipeline_timer_ != 0) {
    sim_.cancel(pipeline_timer_);
    pipeline_timer_ = 0;
  }
  queue_.clear();
  if (tx_phase_ != TxPhase::Transmitting) {
    current_.reset();
    tx_phase_ = TxPhase::Idle;
  }
  const radio::RadioState s = radio_.state();
  if (s == radio::RadioState::Rx || s == radio::RadioState::Standby) {
    radio_.sleep();
  }
}

std::vector<std::uint8_t> FloodingNode::encode(const Flood& f) {
  ByteWriter w;
  w.u16(f.dst);
  w.u16(f.origin);
  w.u16(f.packet_id);
  w.u8(f.ttl);
  w.u8(f.hops);
  w.bytes(f.payload);
  return w.take();
}

std::optional<FloodingNode::Flood> FloodingNode::decode(
    const std::vector<std::uint8_t>& frame) {
  ByteReader r(frame);
  Flood f;
  f.dst = r.u16();
  f.origin = r.u16();
  f.packet_id = r.u16();
  f.ttl = r.u8();
  f.hops = r.u8();
  if (!r.ok()) return std::nullopt;
  f.payload = r.rest();
  return f;
}

bool FloodingNode::send(net::Address destination, std::vector<std::uint8_t> payload) {
  if (!running_) return false;
  if (destination == address_ || destination == net::kUnassigned) return false;
  if (payload.size() > kMaxFloodPayload) return false;
  Flood f;
  f.dst = destination;
  f.origin = address_;
  f.packet_id = next_packet_id_++;
  f.ttl = config_.max_ttl;
  f.payload = std::move(payload);
  // Mark our own packet as seen so an echoed relay is not re-flooded.
  seen_before(f.origin, f.packet_id);
  if (!enqueue(std::move(f))) return false;
  stats_.originated++;
  return true;
}

bool FloodingNode::seen_before(net::Address origin, std::uint16_t packet_id) {
  const auto key = std::pair{origin, packet_id};
  if (seen_.contains(key)) return true;
  seen_.insert(key);
  seen_order_.push_back(key);
  while (seen_order_.size() > config_.dedup_cache) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  return false;
}

void FloodingNode::on_frame_received(const std::vector<std::uint8_t>& frame,
                                     const radio::FrameMeta& meta) {
  (void)meta;
  if (!running_) return;
  auto decoded = decode(frame);
  if (!decoded) {
    stats_.malformed_frames++;
    return;
  }
  Flood f = std::move(*decoded);
  if (f.origin == address_) return;  // our own flood relayed back
  if (seen_before(f.origin, f.packet_id)) {
    stats_.duplicates_suppressed++;
    return;
  }
  if (f.dst == address_ || f.dst == net::kBroadcast) {
    stats_.delivered++;
    // f.hops counts relays; the app sees radio links traversed.
    if (handler_) handler_(f.origin, f.payload, static_cast<std::uint8_t>(f.hops + 1));
    if (f.dst == address_) return;  // unicast reached its target: stop here
  }
  if (f.ttl <= 1) {
    stats_.dropped_ttl++;
    return;
  }
  f.ttl--;
  f.hops++;
  const Duration jitter = Duration::from_seconds(rng_.uniform(
      0.0, std::max(config_.rebroadcast_jitter.seconds_d(), 1e-4)));
  sim_.schedule_after(jitter, [this, f = std::move(f)]() mutable {
    if (!running_) return;
    if (enqueue(std::move(f))) stats_.relayed++;
  });
}

bool FloodingNode::enqueue(Flood f) {
  if (queue_.size() >= config_.max_queue) {
    stats_.dropped_queue_full++;
    return false;
  }
  queue_.push_back(std::move(f));
  pump();
  return true;
}

void FloodingNode::pump() {
  if (!running_ || tx_phase_ != TxPhase::Idle) return;
  if (!current_) {
    if (queue_.empty()) return;
    current_ = std::move(queue_.front());
    queue_.pop_front();
    cad_attempts_ = 0;
  }
  const Duration airtime =
      phy::time_on_air(radio_.modulation(), 8 + current_->payload.size());
  const TimePoint now = sim_.now();
  if (!duty_.allowed(now, airtime)) {
    stats_.duty_cycle_delays++;
    tx_phase_ = TxPhase::WaitingDuty;
    pipeline_timer_ = sim_.schedule_at(duty_.next_allowed(now, airtime), [this] {
      pipeline_timer_ = 0;
      tx_phase_ = TxPhase::Idle;
      pump();
    });
    return;
  }
  if (config_.use_cad) {
    // Soft carrier sense first (see MeshNode::pump): never abort an
    // ongoing reception just to run CAD.
    if (radio_.medium_busy()) {
      channel_busy_backoff();
      return;
    }
    tx_phase_ = TxPhase::Cad;
    const bool started = radio_.start_cad();
    LM_ASSERT(started);
  } else {
    transmit_now();
  }
}

void FloodingNode::channel_busy_backoff() {
  stats_.cad_busy_events++;
  cad_attempts_++;
  if (cad_attempts_ > config_.max_cad_retries) {
    stats_.forced_transmissions++;
    transmit_now();
    return;
  }
  tx_phase_ = TxPhase::Backoff;
  if (radio_.state() == radio::RadioState::Standby) radio_.start_receive();
  const int exponent = std::min(cad_attempts_, 6);
  Duration window = config_.backoff_base * (std::int64_t{1} << exponent);
  if (window > config_.backoff_max) window = config_.backoff_max;
  const Duration delay = Duration::from_seconds(
      rng_.uniform(0.0, std::max(window.seconds_d(), 1e-4)));
  pipeline_timer_ = sim_.schedule_after(delay, [this] {
    pipeline_timer_ = 0;
    tx_phase_ = TxPhase::Idle;
    pump();
  });
}

void FloodingNode::on_cad_done(bool channel_active) {
  if (!running_) {
    radio_.sleep();
    return;
  }
  LM_ASSERT(tx_phase_ == TxPhase::Cad);
  if (!channel_active) {
    transmit_now();
    return;
  }
  channel_busy_backoff();
}

void FloodingNode::transmit_now() {
  LM_ASSERT(current_.has_value());
  std::vector<std::uint8_t> frame = encode(*current_);
  const Duration airtime = phy::time_on_air(radio_.modulation(), frame.size());
  stats_.bytes_sent += frame.size();
  stats_.airtime += airtime;
  duty_.record(sim_.now(), airtime);
  tx_phase_ = TxPhase::Transmitting;
  const bool started = radio_.transmit(std::move(frame));
  LM_ASSERT(started);
}

void FloodingNode::on_tx_done() {
  LM_ASSERT(tx_phase_ == TxPhase::Transmitting);
  tx_phase_ = TxPhase::Idle;
  current_.reset();
  if (!running_) {
    radio_.sleep();
    return;
  }
  radio_.start_receive();
  pump();
}

}  // namespace lm::baseline
