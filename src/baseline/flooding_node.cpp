#include "baseline/flooding_node.h"

#include <memory>
#include <utility>
#include <variant>

#include "support/assert.h"

namespace lm::baseline {

net::MeshConfig FloodingNode::to_mesh_config(const FloodConfig& config) {
  net::MeshConfig mesh;
  mesh.max_ttl = config.max_ttl;
  mesh.use_cad = config.use_cad;
  mesh.max_cad_retries = config.max_cad_retries;
  mesh.backoff_base = config.backoff_base;
  mesh.backoff_max = config.backoff_max;
  mesh.max_queue = config.max_queue;
  mesh.duty_cycle_limit = config.duty_cycle_limit;
  mesh.duty_cycle_window = config.duty_cycle_window;
  return mesh;
}

FloodingNode::FloodingNode(sim::Simulator& sim, radio::Radio& radio,
                           net::Address address, FloodConfig config,
                           std::uint64_t seed)
    : ctx_{sim,           address, to_mesh_config(config),
           Rng(seed),     net::NodeStats{},
           /*tracer=*/nullptr,     /*running=*/false},
      link_(ctx_, radio,
            net::LinkLayer::Callbacks{
                [this](const net::RouteHeader& route) {
                  return network_.resolve_next_hop(route);
                },
                [this](net::Packet packet) {
                  network_.on_packet(std::move(packet));
                },
                [](const net::Packet&) {},   // no sessions to pace
                [](const net::Packet&) {}}),
      network_(ctx_, link_,
               std::make_unique<net::FloodingStrategy>(
                   net::FloodingStrategyConfig{config.rebroadcast_jitter,
                                               config.dedup_cache}),
               [this](net::Packet packet) { deliver(std::move(packet)); }) {
  LM_REQUIRE(address != net::kUnassigned && address != net::kBroadcast);
}

FloodingNode::~FloodingNode() = default;

void FloodingNode::start() {
  LM_REQUIRE(!ctx_.running);
  ctx_.running = true;
  link_.enter_receive();
  network_.start();  // flooding: no beacons, but keeps the seam uniform
}

void FloodingNode::stop() {
  if (!ctx_.running) return;
  ctx_.running = false;
  network_.stop();
  link_.cancel_timers();
  link_.clear_queues();
  link_.settle_radio();
}

bool FloodingNode::send(net::Address destination,
                        std::vector<std::uint8_t> payload) {
  return network_.send_datagram(destination, std::move(payload), nullptr);
}

void FloodingNode::deliver(net::Packet packet) {
  const auto* data = std::get_if<net::DataPacket>(&packet);
  if (data == nullptr) return;  // flooding carries plain datagrams only
  delivered_++;
  if (handler_) {
    // route.hops counts relays; the app sees radio links traversed.
    handler_(data->route.origin, data->payload,
             static_cast<std::uint8_t>(data->route.hops + 1));
  }
}

const FloodStats& FloodingNode::stats() const {
  const net::NodeStats& s = ctx_.stats;
  const auto& strategy =
      static_cast<const net::FloodingStrategy&>(network_.strategy());
  stats_.originated = s.datagrams_sent;
  stats_.relayed = s.packets_forwarded;
  stats_.delivered = delivered_;
  stats_.duplicates_suppressed = strategy.duplicates_suppressed();
  stats_.dropped_ttl = s.dropped_ttl;
  stats_.dropped_queue_full = s.dropped_queue_full;
  stats_.malformed_frames = s.malformed_frames;
  stats_.cad_busy_events = s.cad_busy_events;
  stats_.forced_transmissions = s.forced_transmissions;
  stats_.duty_cycle_delays = s.duty_cycle_delays;
  stats_.bytes_sent = s.control_bytes_sent + s.data_bytes_sent;
  stats_.airtime = s.control_airtime + s.data_airtime;
  return stats_;
}

}  // namespace lm::baseline
