#include "baseline/star_network.h"

#include <algorithm>

#include "phy/airtime.h"
#include "support/assert.h"
#include "support/byte_codec.h"

namespace lm::baseline {

GatewayNode::GatewayNode(radio::Radio& radio, UplinkHandler handler)
    : radio_(radio), handler_(std::move(handler)) {
  radio_.set_listener(this);
}

GatewayNode::~GatewayNode() { radio_.set_listener(nullptr); }

void GatewayNode::on_frame_received(const std::vector<std::uint8_t>& frame,
                                    const radio::FrameMeta& meta) {
  (void)meta;
  ByteReader r(frame);
  const net::Address device = r.u16();
  const std::uint16_t seq = r.u16();
  if (!r.ok()) {
    malformed_frames_++;
    return;
  }
  const std::vector<std::uint8_t> payload = r.rest();
  uplinks_received_++;
  if (handler_) handler_(device, seq, payload);
}

EndDeviceNode::EndDeviceNode(sim::Simulator& sim, radio::Radio& radio,
                             net::Address address, EndDeviceConfig config,
                             std::uint64_t seed)
    : sim_(sim),
      radio_(radio),
      address_(address),
      config_(config),
      rng_(seed),
      duty_(config.duty_cycle_limit, config.duty_cycle_window) {
  LM_REQUIRE(address != net::kUnassigned && address != net::kBroadcast);
  radio_.set_listener(this);
}

EndDeviceNode::~EndDeviceNode() {
  if (timer_ != 0) sim_.cancel(timer_);
  radio_.set_listener(nullptr);
}

void EndDeviceNode::stop() {
  running_ = false;
  queue_.clear();
  if (timer_ != 0) {
    sim_.cancel(timer_);
    timer_ = 0;
  }
}

bool EndDeviceNode::send_uplink(std::vector<std::uint8_t> payload) {
  if (!running_) return false;
  if (payload.size() > kMaxUplinkPayload) return false;
  if (queue_.size() >= config_.max_queue) {
    dropped_queue_full_++;
    return false;
  }
  queue_.push_back(std::move(payload));
  pump();
  return true;
}

void EndDeviceNode::pump() {
  if (!running_ || busy_ || queue_.empty()) return;
  busy_ = true;
  const Duration airtime =
      phy::time_on_air(radio_.modulation(), 4 + queue_.front().size());
  const TimePoint now = sim_.now();
  Duration wait = Duration::from_seconds(
      rng_.uniform(0.0, std::max(config_.tx_dither.seconds_d(), 1e-4)));
  if (!duty_.allowed(now + wait, airtime)) {
    duty_cycle_delays_++;
    const TimePoint allowed = duty_.next_allowed(now, airtime);
    if (allowed > now + wait) wait = allowed - now;
  }
  timer_ = sim_.schedule_after(wait, [this] {
    timer_ = 0;
    transmit_now();
  });
}

void EndDeviceNode::transmit_now() {
  if (!running_) {
    busy_ = false;
    return;
  }
  LM_ASSERT(!queue_.empty());
  if (radio_.state() == radio::RadioState::Sleep) radio_.standby();
  ByteWriter w;
  w.u16(address_);
  w.u16(next_seq_++);
  w.bytes(queue_.front());
  queue_.pop_front();
  std::vector<std::uint8_t> frame = w.take();
  const Duration airtime = phy::time_on_air(radio_.modulation(), frame.size());
  duty_.record(sim_.now(), airtime);
  uplinks_sent_++;
  const bool started = radio_.transmit(std::move(frame));
  LM_ASSERT(started);
}

void EndDeviceNode::on_tx_done() {
  busy_ = false;
  if (config_.sleep_between_uplinks && queue_.empty()) radio_.sleep();
  // Queued traffic keeps us awake and transmitting.
  pump();
}

}  // namespace lm::baseline
