// LoRaWAN-style single-gateway star baseline.
//
// The paper motivates mesh networking against the standard LoRaWAN
// deployment, where every end device talks directly to a gateway. This
// module models that architecture's data plane at the fidelity the
// comparison needs: end devices transmit unconfirmed uplinks (pure ALOHA —
// LoRaWAN does no carrier sensing) under the same duty-cycle rules, and a
// gateway in permanent receive hands uplinks to the application. A device
// out of direct radio range of the gateway simply cannot deliver — the
// effect E7 measures against the mesh.
//
// Uplink frame: dev:u16 seq:u16 payload...
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/address.h"
#include "net/duty_cycle.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace lm::baseline {

constexpr std::size_t kMaxUplinkPayload = 255 - 4;

/// Always-listening gateway.
class GatewayNode final : public radio::RadioListener {
 public:
  /// (device, seq, payload) — an uplink decoded at the gateway.
  using UplinkHandler = std::function<void(net::Address device, std::uint16_t seq,
                                           const std::vector<std::uint8_t>& payload)>;

  GatewayNode(radio::Radio& radio, UplinkHandler handler);
  ~GatewayNode() override;

  void start() { radio_.start_receive(); }

  std::uint64_t uplinks_received() const { return uplinks_received_; }
  std::uint64_t malformed_frames() const { return malformed_frames_; }

  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const radio::FrameMeta& meta) override;

 private:
  radio::Radio& radio_;
  UplinkHandler handler_;
  std::uint64_t uplinks_received_ = 0;
  std::uint64_t malformed_frames_ = 0;
};

struct EndDeviceConfig {
  /// Random pre-transmission dither, as LoRaWAN stacks apply to decorrelate
  /// periodic sensors.
  Duration tx_dither = Duration::milliseconds(200);
  std::size_t max_queue = 16;
  double duty_cycle_limit = 0.01;
  Duration duty_cycle_window = Duration::hours(1);
  /// Class-A behaviour: the radio sleeps whenever no uplink is pending
  /// (the energy story LoRaWAN is built on; see radio/energy.h).
  bool sleep_between_uplinks = true;
};

/// Class-A-style end device: fire-and-forget uplinks, no listen-before-talk.
class EndDeviceNode final : public radio::RadioListener {
 public:
  EndDeviceNode(sim::Simulator& sim, radio::Radio& radio,
                net::Address address, EndDeviceConfig config, std::uint64_t seed);
  ~EndDeviceNode() override;

  void start() { running_ = true; }
  void stop();

  /// Queues one uplink. Returns false when stopped or the queue is full.
  bool send_uplink(std::vector<std::uint8_t> payload);

  net::Address address() const { return address_; }
  std::uint64_t uplinks_sent() const { return uplinks_sent_; }
  std::uint64_t dropped_queue_full() const { return dropped_queue_full_; }
  std::uint16_t last_seq() const { return next_seq_; }

  void on_tx_done() override;
  void on_frame_received(const std::vector<std::uint8_t>&,
                         const radio::FrameMeta&) override {}

 private:
  void pump();
  void transmit_now();

  sim::Simulator& sim_;
  radio::Radio& radio_;
  const net::Address address_;
  EndDeviceConfig config_;
  Rng rng_;
  net::DutyCycleLimiter duty_;

  bool running_ = false;
  bool busy_ = false;  // dithering, duty-waiting, or transmitting
  std::deque<std::vector<std::uint8_t>> queue_;
  std::uint16_t next_seq_ = 0;
  std::uint64_t uplinks_sent_ = 0;
  std::uint64_t dropped_queue_full_ = 0;
  std::uint64_t duty_cycle_delays_ = 0;
  sim::TimerId timer_ = 0;
};

}  // namespace lm::baseline
