// Controlled-flooding baseline.
//
// The natural alternative to distance-vector routing on tiny LoRa nodes is
// to flood: every node rebroadcasts every new packet once (TTL-limited,
// duplicate-suppressed, with random relay jitter to break synchronization).
// Flooding needs no routing state or beacons but pays for it in airtime —
// every packet occupies every node's channel — which is exactly the
// trade-off E4 quantifies against LoRaMesher.
//
// Frame format (little-endian, 8-byte header):
//   dst:u16 origin:u16 packet_id:u16 ttl:u8 hops:u8 payload...
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "net/address.h"
#include "net/config.h"
#include "net/duty_cycle.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace lm::baseline {

struct FloodConfig {
  std::uint8_t max_ttl = 8;
  /// Random delay before relaying, desynchronizing parallel relays (the
  /// dominant collision source in flooding).
  Duration rebroadcast_jitter = Duration::milliseconds(500);
  /// Remembered (origin, packet_id) pairs for duplicate suppression.
  std::size_t dedup_cache = 512;
  // Channel access (same scheme as MeshNode).
  bool use_cad = true;
  int max_cad_retries = 8;
  Duration backoff_base = Duration::milliseconds(100);
  Duration backoff_max = Duration::seconds(4);
  std::size_t max_queue = 64;
  double duty_cycle_limit = 0.01;
  Duration duty_cycle_window = Duration::hours(1);
};

struct FloodStats {
  std::uint64_t originated = 0;
  std::uint64_t relayed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t cad_busy_events = 0;
  std::uint64_t forced_transmissions = 0;
  std::uint64_t duty_cycle_delays = 0;
  std::uint64_t bytes_sent = 0;
  Duration airtime;
};

/// The payload limit of one flooded packet.
constexpr std::size_t kMaxFloodPayload = 255 - 8;

class FloodingNode final : public radio::RadioListener {
 public:
  /// (origin, payload, radio links traversed) — a flood addressed to us (or
  /// broadcast) arrived. A direct neighbor's flood reports 1 hop.
  using Handler = std::function<void(net::Address origin,
                                     const std::vector<std::uint8_t>& payload,
                                     std::uint8_t hops)>;

  FloodingNode(sim::Simulator& sim, radio::Radio& radio,
               net::Address address, FloodConfig config, std::uint64_t seed);
  ~FloodingNode() override;

  FloodingNode(const FloodingNode&) = delete;
  FloodingNode& operator=(const FloodingNode&) = delete;

  void start();
  void stop();
  bool running() const { return running_; }

  /// Floods `payload` toward `destination` (net::kBroadcast floods to all).
  bool send(net::Address destination, std::vector<std::uint8_t> payload);

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  net::Address address() const { return address_; }
  const FloodStats& stats() const { return stats_; }

  // RadioListener
  void on_frame_received(const std::vector<std::uint8_t>& frame,
                         const radio::FrameMeta& meta) override;
  void on_tx_done() override;
  void on_cad_done(bool channel_active) override;

 private:
  struct Flood {
    net::Address dst = net::kBroadcast;
    net::Address origin = net::kUnassigned;
    std::uint16_t packet_id = 0;
    std::uint8_t ttl = 0;
    std::uint8_t hops = 0;
    std::vector<std::uint8_t> payload;
  };

  static std::vector<std::uint8_t> encode(const Flood& f);
  static std::optional<Flood> decode(const std::vector<std::uint8_t>& frame);

  bool seen_before(net::Address origin, std::uint16_t packet_id);
  bool enqueue(Flood f);
  void pump();
  void channel_busy_backoff();
  void transmit_now();

  sim::Simulator& sim_;
  radio::Radio& radio_;
  const net::Address address_;
  FloodConfig config_;
  Rng rng_;
  net::DutyCycleLimiter duty_;
  FloodStats stats_;
  Handler handler_;

  bool running_ = false;
  enum class TxPhase : std::uint8_t { Idle, WaitingDuty, Cad, Backoff, Transmitting };
  TxPhase tx_phase_ = TxPhase::Idle;
  std::deque<Flood> queue_;
  std::optional<Flood> current_;
  int cad_attempts_ = 0;
  sim::TimerId pipeline_timer_ = 0;
  std::uint16_t next_packet_id_ = 1;

  std::set<std::pair<net::Address, std::uint16_t>> seen_;
  std::deque<std::pair<net::Address, std::uint16_t>> seen_order_;
};

}  // namespace lm::baseline
