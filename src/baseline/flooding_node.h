// Controlled-flooding baseline.
//
// The natural alternative to distance-vector routing on tiny LoRa nodes is
// to flood: every node rebroadcasts every new packet once (TTL-limited,
// duplicate-suppressed, with random relay jitter to break synchronization).
// Flooding needs no routing state or beacons but pays for it in airtime —
// every packet occupies every node's channel — which is exactly the
// trade-off E4 quantifies against LoRaMesher.
//
// Since the layered-stack refactor this node is a thin facade over the
// shared protocol stack: net::LinkLayer does the radio arbitration
// (CAD/backoff/queues/duty cycle — previously copy-pasted here) and
// net::NetworkLayer runs a net::FloodingStrategy. Floods ride the standard
// mesh wire format (5-byte link + 8-byte route header) instead of the old
// ad-hoc 8-byte header, so both protocols pay the same header tax in E4.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/address.h"
#include "net/config.h"
#include "net/flooding_strategy.h"
#include "net/layer_context.h"
#include "net/link_layer.h"
#include "net/network_layer.h"
#include "radio/radio_interface.h"
#include "sim/simulator.h"

namespace lm::baseline {

struct FloodConfig {
  std::uint8_t max_ttl = 8;
  /// Random delay before relaying, desynchronizing parallel relays (the
  /// dominant collision source in flooding).
  Duration rebroadcast_jitter = Duration::milliseconds(500);
  /// Remembered (origin, packet_id) pairs for duplicate suppression.
  std::size_t dedup_cache = 512;
  // Channel access (same scheme as MeshNode — same LinkLayer, in fact).
  bool use_cad = true;
  int max_cad_retries = 8;
  Duration backoff_base = Duration::milliseconds(100);
  Duration backoff_max = Duration::seconds(4);
  std::size_t max_queue = 64;
  double duty_cycle_limit = 0.01;
  Duration duty_cycle_window = Duration::hours(1);
};

struct FloodStats {
  std::uint64_t originated = 0;
  std::uint64_t relayed = 0;
  std::uint64_t delivered = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t malformed_frames = 0;
  std::uint64_t cad_busy_events = 0;
  std::uint64_t forced_transmissions = 0;
  std::uint64_t duty_cycle_delays = 0;
  std::uint64_t bytes_sent = 0;
  Duration airtime;
};

/// The payload limit of one flooded packet (standard mesh framing).
constexpr std::size_t kMaxFloodPayload = net::kMaxDataPayload;

class FloodingNode final {
 public:
  /// (origin, payload, radio links traversed) — a flood addressed to us (or
  /// broadcast) arrived. A direct neighbor's flood reports 1 hop.
  using Handler = std::function<void(net::Address origin,
                                     const std::vector<std::uint8_t>& payload,
                                     std::uint8_t hops)>;

  FloodingNode(sim::Simulator& sim, radio::Radio& radio,
               net::Address address, FloodConfig config, std::uint64_t seed);
  ~FloodingNode();

  FloodingNode(const FloodingNode&) = delete;
  FloodingNode& operator=(const FloodingNode&) = delete;

  void start();
  void stop();
  bool running() const { return ctx_.running; }

  /// Floods `payload` toward `destination` (net::kBroadcast floods to all).
  bool send(net::Address destination, std::vector<std::uint8_t> payload);

  void set_handler(Handler handler) { handler_ = std::move(handler); }

  net::Address address() const { return ctx_.address; }
  /// Flood-vocabulary view of the shared NodeStats counters.
  const FloodStats& stats() const;

 private:
  static net::MeshConfig to_mesh_config(const FloodConfig& config);
  void deliver(net::Packet packet);

  net::LayerContext ctx_;
  net::LinkLayer link_;
  net::NetworkLayer network_;
  Handler handler_;

  std::uint64_t delivered_ = 0;
  mutable FloodStats stats_;  // materialized view, refreshed by stats()
};

}  // namespace lm::baseline
