// Deterministic discrete-event simulation engine.
//
// This replaces the FreeRTOS task/queue executor the original LoRaMesher
// library runs on. All protocol logic in this repository is written as event
// handlers scheduled on a Simulator, so a whole multi-node mesh runs
// single-threaded and reproducibly: events at equal timestamps fire in
// scheduling order (FIFO), and no wall-clock time ever leaks in.
//
// Storage layout: closures live in a slab of reusable slots; the priority
// queue holds only POD (time, sequence, slot, generation) keys. Popping the
// queue therefore never copies a std::function, cancel() releases the
// closure (and everything it captures) immediately rather than when the
// timestamp is reached, and liveness is a generation compare instead of a
// hash-set lookup per pop.
//
// Usage:
//   Simulator sim;
//   sim.schedule_after(Duration::seconds(1), [&] { ... });
//   sim.run_for(Duration::hours(1));
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/time.h"

namespace lm::sim {

/// Opaque handle for cancelling a scheduled event. Id 0 is never issued.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now()). Returns a handle
  /// usable with cancel().
  TimerId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` to run `d` (>= 0) after the current time.
  TimerId schedule_after(Duration d, std::function<void()> fn);

  /// Cancels a pending event and releases its closure immediately (so
  /// captured resources are freed at cancel time, not at the event's
  /// timestamp). Cancelling an already-fired or already-cancelled id is a
  /// harmless no-op, which lets callers keep stale handles safely.
  void cancel(TimerId id);

  /// True if the id refers to an event that has not yet fired or been
  /// cancelled.
  bool is_pending(TimerId id) const;

  /// Runs events with timestamp <= `t`, then advances the clock to exactly
  /// `t`. Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Runs for a span of simulated time from now().
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Runs one event if any is pending; returns whether one ran.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  std::size_t run();

  /// Makes the innermost run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }

  /// Number of scheduled-but-not-fired events.
  std::size_t pending() const { return live_count_; }

  /// Total events executed over this simulator's lifetime (perf metric).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Installs this simulator's clock as the logging time source for the
  /// duration of the object's life (used by examples).
  void attach_logger_time_source();

 private:
  // One reusable home for a scheduled closure. `gen` is bumped every time
  // the slot is (re)allocated; a TimerId and a queue entry carry the
  // generation they were issued with, so stale references are detected by a
  // single compare.
  struct Slot {
    std::uint32_t gen = 0;
    bool live = false;
    std::function<void()> fn;
  };
  // POD key in the priority queue; the closure stays in the slab.
  struct QueueEntry {
    TimePoint at;
    std::uint64_t seq;  // global schedule order: FIFO tie-break at equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      // min-heap on (time, seq): equal-time events fire in schedule order.
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  static TimerId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<TimerId>(slot) << 32) | gen;
  }
  const Slot* find_live(TimerId id) const;
  void pop_dead();

  TimePoint now_ = TimePoint::origin();
  std::uint64_t next_seq_ = 1;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // indices of slots ready for reuse
  std::size_t live_count_ = 0;
  std::uint64_t events_processed_ = 0;
  bool stop_requested_ = false;
  bool logger_attached_ = false;
};

}  // namespace lm::sim
