// Deterministic discrete-event simulation engine.
//
// This replaces the FreeRTOS task/queue executor the original LoRaMesher
// library runs on. All protocol logic in this repository is written as event
// handlers scheduled on a Simulator, so a whole multi-node mesh runs
// single-threaded and reproducibly: events at equal timestamps fire in
// scheduling order (FIFO), and no wall-clock time ever leaks in.
//
// Usage:
//   Simulator sim;
//   sim.schedule_after(Duration::seconds(1), [&] { ... });
//   sim.run_for(Duration::hours(1));
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/time.h"

namespace lm::sim {

/// Opaque handle for cancelling a scheduled event. Id 0 is never issued.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time. Monotonically non-decreasing.
  TimePoint now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (>= now()). Returns a handle
  /// usable with cancel().
  TimerId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` to run `d` (>= 0) after the current time.
  TimerId schedule_after(Duration d, std::function<void()> fn);

  /// Cancels a pending event. Cancelling an already-fired or already-cancelled
  /// id is a harmless no-op, which lets callers keep stale handles safely.
  void cancel(TimerId id);

  /// True if the id refers to an event that has not yet fired or been
  /// cancelled.
  bool is_pending(TimerId id) const;

  /// Runs events with timestamp <= `t`, then advances the clock to exactly
  /// `t`. Returns the number of events processed.
  std::size_t run_until(TimePoint t);

  /// Runs for a span of simulated time from now().
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Runs one event if any is pending; returns whether one ran.
  bool step();

  /// Runs until the event queue drains or stop() is called.
  std::size_t run();

  /// Makes the innermost run()/run_until() return after the current event.
  void stop() { stop_requested_ = true; }

  /// Number of scheduled-but-not-fired events.
  std::size_t pending() const { return live_.size(); }

  /// Installs this simulator's clock as the logging time source for the
  /// duration of the object's life (used by examples).
  void attach_logger_time_source();

 private:
  struct Event {
    TimePoint at;
    TimerId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      // min-heap on (time, id): equal-time events fire in schedule order.
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  void pop_cancelled();

  TimePoint now_ = TimePoint::origin();
  TimerId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<TimerId> live_;  // ids scheduled and not cancelled/fired
  bool stop_requested_ = false;
  bool logger_attached_ = false;
};

}  // namespace lm::sim
