#include "sim/simulator.h"

#include "support/assert.h"
#include "support/log.h"

namespace lm::sim {

Simulator::Simulator() = default;

Simulator::~Simulator() {
  if (logger_attached_) Logger::instance().set_time_source(nullptr);
}

TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  LM_REQUIRE(t >= now_);
  LM_REQUIRE(fn != nullptr);
  const TimerId id = next_id_++;
  queue_.push(Event{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

TimerId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  LM_REQUIRE(!d.is_negative());
  return schedule_at(now_ + d, std::move(fn));
}

void Simulator::cancel(TimerId id) { live_.erase(id); }

bool Simulator::is_pending(TimerId id) const { return live_.contains(id); }

void Simulator::pop_cancelled() {
  while (!queue_.empty() && !live_.contains(queue_.top().id)) queue_.pop();
}

bool Simulator::step() {
  pop_cancelled();
  if (queue_.empty()) return false;
  // Copy out before pop: the handler may schedule new events, which mutates
  // the queue under us otherwise.
  Event ev = queue_.top();
  queue_.pop();
  live_.erase(ev.id);
  LM_ASSERT(ev.at >= now_);
  now_ = ev.at;
  ev.fn();
  return true;
}

std::size_t Simulator::run_until(TimePoint t) {
  LM_REQUIRE(t >= now_);
  stop_requested_ = false;
  std::size_t processed = 0;
  for (;;) {
    pop_cancelled();
    if (queue_.empty() || queue_.top().at > t) break;
    step();
    ++processed;
    if (stop_requested_) return processed;
  }
  now_ = t;
  return processed;
}

std::size_t Simulator::run() {
  stop_requested_ = false;
  std::size_t processed = 0;
  while (!stop_requested_ && step()) ++processed;
  return processed;
}

void Simulator::attach_logger_time_source() {
  Logger::instance().set_time_source([this] { return now_.us(); });
  logger_attached_ = true;
}

}  // namespace lm::sim
