#include "sim/simulator.h"

#include "support/assert.h"
#include "support/log.h"

namespace lm::sim {

Simulator::Simulator() = default;

Simulator::~Simulator() {
  if (logger_attached_) Logger::instance().set_time_source(nullptr);
}

TimerId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  LM_REQUIRE(t >= now_);
  LM_REQUIRE(fn != nullptr);
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  ++s.gen;  // gen >= 1 always, so make_id() never returns 0
  s.live = true;
  s.fn = std::move(fn);
  queue_.push(QueueEntry{t, next_seq_++, slot, s.gen});
  ++live_count_;
  return make_id(slot, s.gen);
}

TimerId Simulator::schedule_after(Duration d, std::function<void()> fn) {
  LM_REQUIRE(!d.is_negative());
  return schedule_at(now_ + d, std::move(fn));
}

const Simulator::Slot* Simulator::find_live(TimerId id) const {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (slot >= slots_.size()) return nullptr;
  const Slot& s = slots_[slot];
  return (s.live && s.gen == gen) ? &s : nullptr;
}

void Simulator::cancel(TimerId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.live || s.gen != gen) return;
  s.live = false;
  s.fn = nullptr;  // release the closure (and its captures) right now
  free_.push_back(slot);
  --live_count_;
  // The queue entry stays behind as a stale (slot, gen) key; pop_dead()
  // discards it when its timestamp surfaces.
}

bool Simulator::is_pending(TimerId id) const { return find_live(id) != nullptr; }

void Simulator::pop_dead() {
  while (!queue_.empty()) {
    const QueueEntry& e = queue_.top();
    const Slot& s = slots_[e.slot];
    if (s.live && s.gen == e.gen) return;
    queue_.pop();
  }
}

bool Simulator::step() {
  pop_dead();
  if (queue_.empty()) return false;
  const QueueEntry e = queue_.top();  // POD copy; the closure stays put
  queue_.pop();
  Slot& s = slots_[e.slot];
  // Move the closure out before firing: the handler may schedule new events,
  // which may reuse this very slot.
  std::function<void()> fn = std::move(s.fn);
  s.live = false;
  s.fn = nullptr;
  free_.push_back(e.slot);
  --live_count_;
  LM_ASSERT(e.at >= now_);
  now_ = e.at;
  ++events_processed_;
  fn();
  return true;
}

std::size_t Simulator::run_until(TimePoint t) {
  LM_REQUIRE(t >= now_);
  stop_requested_ = false;
  std::size_t processed = 0;
  for (;;) {
    pop_dead();
    if (queue_.empty() || queue_.top().at > t) break;
    step();
    ++processed;
    if (stop_requested_) return processed;
  }
  now_ = t;
  return processed;
}

std::size_t Simulator::run() {
  stop_requested_ = false;
  std::size_t processed = 0;
  while (!stop_requested_ && step()) ++processed;
  return processed;
}

void Simulator::attach_logger_time_source() {
  Logger::instance().set_time_source([this] { return now_.us(); });
  logger_attached_ = true;
}

}  // namespace lm::sim
