// meshsim — a command-line LoRaMesher network simulator.
//
// Builds a mesh from CLI parameters, runs it with background traffic, and
// prints a full report: convergence, delivery, airtime, duty-cycle and
// energy. The "swiss-army" entry point for exploring configurations
// without writing code.
//
//   ./build/examples/meshsim --topology chain --nodes 8 --hours 2
//   ./build/examples/meshsim --topology field --nodes 20 --sf 9 \
//       --hello 120 --interval 60 --seed 3 --loss 0.1
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "radio/energy.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"
#include "testbed/traffic.h"

using namespace lm;

namespace {

struct Options {
  std::string topology = "chain";  // chain | grid | field
  std::size_t nodes = 6;
  double spacing_m = 400.0;
  int sf = 7;
  int hello_s = 60;
  int traffic_interval_s = 60;
  double extra_loss = 0.0;
  double hours = 2.0;
  std::uint64_t seed = 1;
  bool dump_tables = false;
};

[[noreturn]] void usage() {
  std::puts(
      "meshsim — LoRaMesher network simulator\n"
      "  --topology chain|grid|field   node layout (default chain)\n"
      "  --nodes N                     node count (default 6)\n"
      "  --spacing M                   meters between neighbors (default 400)\n"
      "  --sf 7..12                    spreading factor (default 7)\n"
      "  --hello S                     beacon period seconds (default 60)\n"
      "  --interval S                  traffic mean period seconds (default 60)\n"
      "  --loss P                      extra per-link loss 0..1 (default 0)\n"
      "  --hours H                     simulated duration (default 2)\n"
      "  --seed N                      RNG seed (default 1)\n"
      "  --tables                      dump final routing tables");
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--topology") {
      o.topology = value();
    } else if (arg == "--nodes") {
      o.nodes = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--spacing") {
      o.spacing_m = std::strtod(value(), nullptr);
    } else if (arg == "--sf") {
      o.sf = std::atoi(value());
    } else if (arg == "--hello") {
      o.hello_s = std::atoi(value());
    } else if (arg == "--interval") {
      o.traffic_interval_s = std::atoi(value());
    } else if (arg == "--loss") {
      o.extra_loss = std::strtod(value(), nullptr);
    } else if (arg == "--hours") {
      o.hours = std::strtod(value(), nullptr);
    } else if (arg == "--seed") {
      o.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--tables") {
      o.dump_tables = true;
    } else {
      usage();
    }
  }
  if (o.nodes < 2 || o.sf < 7 || o.sf > 12 || o.hello_s < 1 ||
      o.traffic_interval_s < 1 || o.extra_loss < 0 || o.extra_loss > 1) {
    usage();
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  testbed::ScenarioConfig config;
  config.seed = o.seed;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  config.radio.modulation.sf = static_cast<phy::SpreadingFactor>(o.sf);
  config.mesh.hello_interval = Duration::seconds(o.hello_s);
  testbed::MeshScenario mesh(config);

  if (o.topology == "chain") {
    mesh.add_nodes(testbed::chain(o.nodes, o.spacing_m));
  } else if (o.topology == "grid") {
    const auto side = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(o.nodes))));
    auto p = testbed::grid(side, side, o.spacing_m);
    p.resize(o.nodes);
    mesh.add_nodes(p);
  } else if (o.topology == "field") {
    Rng layout(o.seed);
    const double side =
        o.spacing_m * 1.25 * std::sqrt(static_cast<double>(o.nodes));
    mesh.add_nodes(testbed::connected_random_field(
        o.nodes, side, side, o.spacing_m * 1.4, layout));
  } else {
    usage();
  }

  if (o.extra_loss > 0.0) {
    for (std::size_t a = 0; a < o.nodes; ++a) {
      for (std::size_t b = a + 1; b < o.nodes; ++b) {
        mesh.channel().set_link_extra_loss(static_cast<radio::RadioId>(a + 1),
                                           static_cast<radio::RadioId>(b + 1),
                                           o.extra_loss);
      }
    }
  }

  std::printf("meshsim: %zu nodes (%s), SF%d, hello %ds, traffic 1/%ds, "
              "loss %.0f %%, %.1f h, seed %llu\n",
              o.nodes, o.topology.c_str(), o.sf, o.hello_s,
              o.traffic_interval_s, 100 * o.extra_loss, o.hours,
              static_cast<unsigned long long>(o.seed));

  metrics::PacketTracker tracker;
  testbed::attach_tracker(mesh, tracker);
  mesh.start_all();

  const auto converged = mesh.run_until_converged(
      Duration::from_seconds(o.hours * 3600.0 / 2.0), Duration::seconds(10),
      0.9, /*exact_metric=*/false);
  std::printf("convergence: %s\n",
              converged ? converged->to_string().c_str()
                        : "not reached (strict oracle: every pair routed "
                          "over >=90%-quality links — shadowed fields may "
                          "legitimately never satisfy it)");

  // Traffic: every node streams to the node "across" the network.
  std::vector<std::unique_ptr<testbed::DatagramTraffic>> flows;
  for (std::size_t i = 0; i < o.nodes / 2; ++i) {
    flows.push_back(std::make_unique<testbed::DatagramTraffic>(
        mesh, tracker, i, o.nodes - 1 - i,
        testbed::TrafficConfig{Duration::seconds(o.traffic_interval_s), 16, true},
        o.seed + 100 + i));
    flows.back()->start();
  }
  mesh.run_for(Duration::from_seconds(o.hours * 3600.0));
  for (auto& f : flows) f->stop();
  mesh.run_for(Duration::minutes(1));

  const auto total = mesh.total_stats();
  const auto& cs = mesh.channel().stats();
  std::printf("\n--- delivery -------------------------------------------\n");
  std::printf("datagrams:   %llu sent, %llu delivered (PDR %.1f %%)\n",
              static_cast<unsigned long long>(tracker.attempted()),
              static_cast<unsigned long long>(tracker.delivered()),
              100.0 * tracker.pdr());
  if (!tracker.latency().empty()) {
    std::printf("latency:     p50 %.0f ms, p95 %.0f ms\n",
                1e3 * tracker.latency().median(),
                1e3 * tracker.latency().percentile(95));
    std::printf("hops:        median %.0f, max %.0f\n",
                tracker.hops().median(), tracker.hops().max());
  }
  std::printf("\n--- protocol -------------------------------------------\n");
  std::printf("beacons:     %llu sent, %llu received, %llu table changes\n",
              static_cast<unsigned long long>(total.beacons_sent),
              static_cast<unsigned long long>(total.beacons_received),
              static_cast<unsigned long long>(total.routing_changes));
  std::printf("forwarded:   %llu; drops: %llu no-route, %llu ttl, %llu queue\n",
              static_cast<unsigned long long>(total.packets_forwarded),
              static_cast<unsigned long long>(total.dropped_no_route),
              static_cast<unsigned long long>(total.dropped_ttl),
              static_cast<unsigned long long>(total.dropped_queue_full));
  std::printf("channel:     %llu frames, %llu collisions, %llu CSMA busy, "
              "%llu duty deferrals\n",
              static_cast<unsigned long long>(cs.frames_transmitted),
              static_cast<unsigned long long>(cs.dropped_collision),
              static_cast<unsigned long long>(total.cad_busy_events),
              static_cast<unsigned long long>(total.duty_cycle_delays));
  std::printf("airtime:     control %.1f s, data %.1f s (network total)\n",
              total.control_airtime.seconds_d(), total.data_airtime.seconds_d());

  std::printf("\n--- per node -------------------------------------------\n");
  std::printf("%-8s %-10s %-10s %-12s %-10s\n", "node", "tx frames",
              "duty used", "avg current", "battery*");
  for (std::size_t i = 0; i < mesh.size(); ++i) {
    const double ma = radio::average_current_ma(mesh.radio(i));
    std::printf("%-8s %-10llu %-10s %-12s %-10s\n",
                net::to_string(mesh.address_of(i)).c_str(),
                static_cast<unsigned long long>(mesh.radio(i).stats().tx_frames),
                (std::to_string(mesh.node(i).duty_cycle().utilization(
                                    mesh.simulator().now()) * 100.0)
                     .substr(0, 4) + " %").c_str(),
                (std::to_string(ma).substr(0, 5) + " mA").c_str(),
                (std::to_string(radio::battery_life_days(ma, 2500.0))
                     .substr(0, 4) + " d").c_str());
  }
  std::printf("* projected 2500 mAh battery life\n");

  if (o.dump_tables) {
    std::printf("\n--- routing tables -------------------------------------\n%s",
                mesh.dump_routing_tables().c_str());
  }
  return 0;
}
