// Gateway discovery: LoRaMesher nodes advertise a role byte with their
// routing entries, so any sensor can ask "who is my nearest gateway?"
// without knowing the deployment. Two gateways sit at opposite corners of
// a sensor field; each sensor discovers the closer one and ships its
// readings there. A promiscuous sniffer prints a slice of live traffic.
//
//   ./build/examples/gateway_discovery
#include <cstdio>

#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/sniffer.h"
#include "testbed/topology.h"

using namespace lm;

int main() {
  testbed::ScenarioConfig config;
  config.seed = 21;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  // Deterministic links keep the demo's gateway-choice table readable;
  // sensor_field shows the same machinery under shadowing/fading.
  config.propagation.shadowing_sigma_db = 0.0;
  config.propagation.fading_sigma_db = 0.0;
  config.mesh.hello_interval = Duration::seconds(45);

  testbed::MeshScenario mesh(config);
  // Two gateways in opposite corners of a 1.6 km field.
  const std::size_t gw_a = mesh.add_node({0, 0}, net::roles::kGateway);
  const std::size_t gw_b = mesh.add_node({1600, 1600}, net::roles::kGateway);
  // A lattice of sensors between them (grid keeps the demo readable).
  const auto sensor_spots = testbed::grid(4, 4, 400.0);
  std::vector<std::size_t> sensors;
  for (const auto& p : sensor_spots) {
    if (phy::distance_m(p, {0, 0}) < 1.0 ||
        phy::distance_m(p, {1600, 1600}) < 1.0) {
      continue;  // corners are the gateways themselves
    }
    sensors.push_back(mesh.add_node(p));
  }

  // Gateways count what reaches them.
  std::uint64_t at_a = 0, at_b = 0;
  mesh.node(gw_a).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t) { ++at_a; });
  mesh.node(gw_b).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t) { ++at_b; });

  mesh.start_all();
  std::printf("letting role advertisements spread...\n");
  mesh.run_for(Duration::minutes(15));

  std::printf("\nper-sensor gateway choice:\n");
  std::printf("%-8s %-12s %-18s %s\n", "sensor", "position", "nearest gateway",
              "hops");
  for (std::size_t i : sensors) {
    const auto gw = mesh.node(i).nearest_with_role(net::roles::kGateway);
    const auto pos = mesh.radio(i).position();
    std::printf("%-8s (%4.0f,%4.0f)  %-18s %s\n",
                net::to_string(mesh.address_of(i)).c_str(), pos.x, pos.y,
                gw ? net::to_string(gw->destination).c_str() : "none found",
                gw ? std::to_string(gw->metric).c_str() : "-");
  }

  // Every sensor sends 10 readings to its chosen gateway, staggered as a
  // periodic sensor population would be (synchronized bursts would just
  // collide).
  std::printf("\nshipping 10 readings per sensor to its nearest gateway...\n");
  std::uint64_t attempted = 0;
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i : sensors) {
      const auto gw = mesh.node(i).nearest_with_role(net::roles::kGateway);
      if (gw && mesh.node(i).send_datagram(
                    gw->destination, {0x10, static_cast<std::uint8_t>(round)})) {
        ++attempted;
      }
      mesh.run_for(Duration::seconds(5));
    }
  }
  mesh.run_for(Duration::minutes(1));

  std::printf("gateway A collected %llu and gateway B %llu of %llu readings "
              "(%.0f %% delivered; load split follows geography)\n",
              static_cast<unsigned long long>(at_a),
              static_cast<unsigned long long>(at_b),
              static_cast<unsigned long long>(attempted),
              attempted ? 100.0 * static_cast<double>(at_a + at_b) /
                              static_cast<double>(attempted)
                        : 0.0);
  return 0;
}
