// Remote control: a control station operates valves/relays on far-away
// nodes over the mesh. Two services share each node via PortMux (port 1:
// telemetry, unreliable; port 2: commands). Commands ride acked datagrams
// (NEED_ACK), so the operator knows whether each one arrived — over links
// with 15 % loss.
//
//   ./build/examples/remote_control
#include <cstdio>

#include "net/port_mux.h"
#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

using namespace lm;

namespace {
constexpr std::uint8_t kTelemetryPort = 1;
constexpr std::uint8_t kCommandPort = 2;
}  // namespace

int main() {
  testbed::ScenarioConfig config;
  config.seed = 12;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  config.propagation.shadowing_sigma_db = 0.0;
  config.propagation.fading_sigma_db = 0.0;
  config.mesh.hello_interval = Duration::seconds(30);
  config.mesh.acked_retry_timeout = Duration::seconds(8);

  testbed::MeshScenario mesh(config);
  mesh.add_nodes(testbed::chain(4, 400.0));  // station .. 2 relays .. actuator
  const std::size_t station = 0;
  const std::size_t actuator = 3;

  // The actuator runs two services on one node.
  net::PortMux actuator_mux(mesh.node(actuator));
  bool valve_open = false;
  actuator_mux.open(kCommandPort, [&](net::Address, const std::vector<std::uint8_t>& cmd,
                                      std::uint8_t) {
    if (!cmd.empty()) {
      valve_open = cmd[0] != 0;
      std::printf("  [actuator] valve -> %s\n", valve_open ? "OPEN" : "CLOSED");
    }
  });

  net::PortMux station_mux(mesh.node(station));
  int telemetry_received = 0;
  station_mux.open(kTelemetryPort,
                   [&](net::Address, const std::vector<std::uint8_t>&,
                       std::uint8_t) { ++telemetry_received; });

  mesh.start_all();
  std::printf("waiting for routes to the actuator (3 hops)...\n");
  if (!mesh.run_until_converged(Duration::minutes(10))) return 1;
  for (radio::RadioId id = 1; id <= 3; ++id) {
    mesh.channel().set_link_extra_loss(id, id + 1, 0.15);
  }

  // Telemetry trickles back (unreliable, fine to lose some)...
  std::function<void(int)> telemetry = [&](int remaining) {
    if (remaining == 0) return;
    actuator_mux.send(mesh.address_of(station), kTelemetryPort, {0x11, 0x22});
    mesh.simulator().schedule_after(Duration::seconds(30),
                                    [&, remaining] { telemetry(remaining - 1); });
  };
  telemetry(20);

  // ...while the operator toggles the valve with confirmed commands.
  int confirmed = 0, failed = 0;
  for (int round = 0; round < 6; ++round) {
    const std::uint8_t command = round % 2 == 0 ? 1 : 0;
    std::printf("[station] sending valve %s command...\n",
                command ? "OPEN" : "CLOSE");
    // Commands are port-framed by hand so they can use the acked path.
    std::vector<std::uint8_t> framed{kCommandPort, command};
    mesh.node(station).send_acked(
        mesh.address_of(actuator), std::move(framed), [&](bool ok) {
          ok ? ++confirmed : ++failed;
          std::printf("[station] command %s\n", ok ? "CONFIRMED" : "FAILED");
        });
    mesh.run_for(Duration::minutes(2));
  }
  mesh.run_for(Duration::minutes(2));

  std::printf("\nsummary: %d/%d commands confirmed end-to-end "
              "(%llu retransmissions), %d telemetry readings received, "
              "valve is %s\n",
              confirmed, confirmed + failed,
              static_cast<unsigned long long>(
                  mesh.node(station).stats().acked_retransmissions),
              telemetry_received, valve_open ? "OPEN" : "CLOSED");
  if (failed > 0) {
    std::printf("(a FAILED command is the mechanism working: the station "
                "knows it must retry — contrast with fire-and-forget)\n");
  }
  return 0;
}
