// Firmware update: push a multi-kilobyte binary to a node three radio hops
// away, over lossy links, using the library's reliable large-payload
// transfer (the paper's "XL packets": SYNC / FRAGMENT / LOST / DONE).
//
//   ./build/examples/firmware_update [payload_bytes] [loss_percent]
#include <cstdio>
#include <cstdlib>

#include "phy/path_loss.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

using namespace lm;

int main(int argc, char** argv) {
  const std::size_t payload_bytes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8192;
  const double loss = argc > 2 ? std::strtod(argv[2], nullptr) / 100.0 : 0.10;

  testbed::ScenarioConfig config;
  config.seed = 5;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  config.mesh.hello_interval = Duration::seconds(120);
  config.mesh.duty_cycle_limit = 1.0;  // lab setting; see bench_large_payload
  config.mesh.sync_max_retries = 10;

  testbed::MeshScenario mesh(config);
  mesh.add_nodes(testbed::chain(4, 400.0));
  mesh.start_all();
  std::printf("waiting for routes to the target (3 hops away)...\n");
  if (!mesh.run_until_converged(Duration::minutes(20))) {
    std::printf("mesh failed to converge\n");
    return 1;
  }
  for (radio::RadioId id = 1; id <= 3; ++id) {
    mesh.channel().set_link_extra_loss(id, id + 1, loss);
  }

  // A fake firmware image with a checksum-able pattern.
  std::vector<std::uint8_t> image(payload_bytes);
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<std::uint8_t>((i * 131) ^ (i >> 8));
  }

  bool verified = false;
  mesh.node(3).set_reliable_handler(
      [&](net::Address origin, std::vector<std::uint8_t> data) {
        verified = data == image;
        std::printf("target received %zu bytes from %s — image %s\n",
                    data.size(), net::to_string(origin).c_str(),
                    verified ? "verified" : "CORRUPT");
      });

  std::printf("pushing %zu bytes over 3 hops with %.0f %% per-link loss...\n",
              image.size(), 100 * loss);
  const TimePoint start = mesh.simulator().now();
  int outcome = -1;
  if (!mesh.node(0).send_reliable(mesh.address_of(3), image,
                                  [&](bool ok) { outcome = ok ? 1 : 0; })) {
    std::printf("transfer refused (no route)\n");
    return 1;
  }
  while (outcome == -1 &&
         mesh.simulator().now() - start < Duration::hours(2)) {
    mesh.run_for(Duration::seconds(30));
    const auto& st = mesh.node(0).stats();
    std::printf("  t+%4.0f s: %llu fragments on the air (%llu retransmitted)\n",
                (mesh.simulator().now() - start).seconds_d(),
                static_cast<unsigned long long>(st.fragments_sent),
                static_cast<unsigned long long>(st.fragments_retransmitted));
  }

  const double secs = (mesh.simulator().now() - start).seconds_d();
  if (outcome == 1 && verified) {
    std::printf("\nupdate complete in %.0f s (%.0f bit/s goodput)\n", secs,
                8.0 * static_cast<double>(payload_bytes) / secs);
    return 0;
  }
  std::printf("\nupdate FAILED after %.0f s\n", secs);
  return 1;
}
