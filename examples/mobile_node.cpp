// Mobile node: a tracker moves through a corridor of fixed relay nodes.
// The distance-vector protocol re-learns its position as beacons age out
// and fresh ones arrive, so a monitoring station keeps (eventually
// consistent) connectivity to the tracker the whole way.
//
//   ./build/examples/mobile_node
#include <cstdio>

#include "phy/path_loss.h"
#include "testbed/mobility.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

using namespace lm;

int main() {
  testbed::ScenarioConfig config;
  config.seed = 9;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  // Mobility needs fresh state: fast beacons and short route timeouts.
  config.mesh.hello_interval = Duration::seconds(15);
  config.mesh.route_timeout_intervals = 4;

  testbed::MeshScenario mesh(config);
  // Relay corridor: station (index 0) plus relays every 400 m.
  mesh.add_nodes(testbed::chain(5, 400.0));
  // The tracker starts next to the station.
  const std::size_t tracker = mesh.add_node({50.0, 100.0});
  const std::size_t station = 0;

  std::uint64_t received = 0;
  mesh.node(station).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>&, std::uint8_t) {
        received++;
      });

  mesh.start_all();
  mesh.run_for(Duration::minutes(5));  // initial convergence

  std::printf("tracker walks 2 km along the relay corridor, reporting "
              "position every 10 s\n\n");
  std::printf("%-8s %-12s %-22s %-10s %s\n", "time", "tracker x", "station's "
              "route to it", "delivered", "tracker neighbors");
  std::uint64_t sent = 0;
  testbed::WaypointMover walker(mesh.simulator(), mesh.radio(tracker),
                                {{2150.0, 100.0}}, /*speed_mps=*/1.5);
  walker.start();
  for (int tick = 0; tick < 140; ++tick) {
    // Report position while the mover advances underneath us.
    if (mesh.node(tracker).send_datagram(mesh.address_of(station),
                                         {0x42, 0x42, 0x42, 0x42})) {
      sent++;
    }
    mesh.run_for(Duration::seconds(10));
    const auto pos = mesh.radio(tracker).position();

    if (tick % 14 == 13) {
      const auto route =
          mesh.node(station).routing_table().route_to(mesh.address_of(tracker));
      std::size_t neighbors = 0;
      for (const auto& e : mesh.node(tracker).routing_table().entries()) {
        if (e.metric == 1) neighbors++;
      }
      char route_desc[40];
      if (route) {
        std::snprintf(route_desc, sizeof route_desc, "%u hops via %s",
                      route->metric, net::to_string(route->via).c_str());
      } else {
        std::snprintf(route_desc, sizeof route_desc, "none");
      }
      std::printf("%-8.0fs %-12.0f %-22s %-10llu %zu\n",
                  mesh.simulator().now().seconds_d(), pos.x, route_desc,
                  static_cast<unsigned long long>(received), neighbors);
    }
  }

  std::printf("\nend-to-end: %llu/%llu position reports delivered (%.0f %%)\n",
              static_cast<unsigned long long>(received),
              static_cast<unsigned long long>(sent),
              sent ? 100.0 * static_cast<double>(received) /
                         static_cast<double>(sent)
                   : 0.0);
  return 0;
}
