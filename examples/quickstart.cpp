// Quickstart: the smallest useful LoRaMesher program.
//
// Three simulated LoRa nodes form a chain (C can only be reached from A
// through B). The mesh self-organizes via routing beacons; A then sends a
// text message to C, which B forwards. Run it:
//
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "phy/path_loss.h"
#include "support/log.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

using namespace lm;

int main() {
  // Show the protocol at work: timestamps are simulated time.
  Logger::instance().set_level(LogLevel::Info);

  // A campus-like radio environment where 400 m links decode cleanly and
  // 800 m does not — so the only path A -> C is through B.
  testbed::ScenarioConfig config;
  config.seed = 1;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  config.mesh.hello_interval = Duration::seconds(30);

  testbed::MeshScenario mesh(config);
  mesh.simulator().attach_logger_time_source();
  const std::size_t a = mesh.add_node({0, 0});
  const std::size_t b = mesh.add_node({400, 0});
  const std::size_t c = mesh.add_node({800, 0});

  // Receive handler on C.
  mesh.node(c).set_datagram_handler(
      [&](net::Address origin, const std::vector<std::uint8_t>& payload,
          std::uint8_t hops) {
        const std::string text(payload.begin(), payload.end());
        std::printf(">>> %s received \"%s\" from %s over %u hops\n",
                    net::to_string(mesh.node(c).address()).c_str(), text.c_str(),
                    net::to_string(origin).c_str(), hops);
      });

  // Boot all three nodes and let the distance-vector protocol converge.
  mesh.start_all();
  std::printf("waiting for the mesh to form...\n");
  const auto elapsed = mesh.run_until_converged(Duration::minutes(10));
  std::printf("mesh converged after %s of simulated time\n\n%s\n",
              elapsed ? elapsed->to_string().c_str() : "(timeout)",
              mesh.dump_routing_tables().c_str());

  // Send a message end to end.
  const std::string text = "hello mesh";
  if (!mesh.node(a).send_datagram(mesh.address_of(c),
                                  {text.begin(), text.end()})) {
    std::printf("send failed: no route to C yet\n");
    return 1;
  }
  mesh.run_for(Duration::seconds(10));

  std::printf("\nB forwarded %llu packet(s); A spent %.1f ms of airtime on "
              "data this session\n",
              static_cast<unsigned long long>(mesh.node(b).stats().packets_forwarded),
              mesh.node(a).stats().data_airtime.seconds_d() * 1e3);
  return 0;
}
