// Sensor field: the workload the paper's introduction motivates — a field
// of tiny sensor nodes, no gateway, no Internet. Every node periodically
// reports a reading to a sink node at the edge of the field; distant nodes
// reach it over multiple hops through their peers.
//
//   ./build/examples/sensor_field [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "metrics/packet_tracker.h"
#include "phy/path_loss.h"
#include "support/byte_codec.h"
#include "testbed/scenario.h"
#include "testbed/topology.h"

using namespace lm;

namespace {

struct Reading {
  net::Address sensor;
  std::uint32_t sample_no;
  double temperature_c;
};

std::vector<std::uint8_t> encode_reading(const Reading& r) {
  ByteWriter w;
  w.u16(r.sensor);
  w.u32(r.sample_no);
  w.i16(static_cast<std::int16_t>(r.temperature_c * 100));
  return w.take();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  testbed::ScenarioConfig config;
  config.seed = seed;
  config.propagation.path_loss = phy::make_log_distance(3.5, 40.0);
  config.propagation.shadowing_sigma_db = 2.0;  // a bit of realism
  config.mesh.hello_interval = Duration::seconds(60);

  testbed::MeshScenario mesh(config);

  // 12 sensors scattered over a 1.5 x 1.5 km field, sink in the corner.
  Rng layout(seed);
  const std::size_t sink = mesh.add_node({0, 0});
  auto spots = testbed::connected_random_field(11, 1500, 1500, 500, layout);
  for (auto& p : spots) mesh.add_node(p);

  // The sink collects readings.
  std::map<net::Address, std::uint32_t> received_per_sensor;
  Histogram hop_hist;
  mesh.node(sink).set_datagram_handler(
      [&](net::Address, const std::vector<std::uint8_t>& payload,
          std::uint8_t hops) {
        ByteReader r(payload);
        const net::Address sensor = r.u16();
        if (!r.ok()) return;
        received_per_sensor[sensor]++;
        hop_hist.add(hops);
      });

  mesh.start_all();
  std::printf("booting 12 nodes; waiting for route discovery...\n");
  mesh.run_for(Duration::minutes(10));

  // Every sensor reports once per 2 minutes (jittered) for 2 hours.
  std::map<net::Address, std::uint32_t> sent_per_sensor;
  Rng traffic(seed + 1);
  std::function<void(std::size_t)> schedule_report = [&](std::size_t i) {
    const Duration gap =
        Duration::from_seconds(traffic.uniform(90.0, 150.0));
    mesh.simulator().schedule_after(gap, [&, i] {
      Reading reading{mesh.address_of(i), sent_per_sensor[mesh.address_of(i)],
                      traffic.uniform(12.0, 28.0)};
      if (mesh.node(i).send_datagram(mesh.address_of(sink),
                                     encode_reading(reading))) {
        sent_per_sensor[mesh.address_of(i)]++;
      }
      schedule_report(i);
    });
  };
  for (std::size_t i = 1; i < mesh.size(); ++i) schedule_report(i);
  mesh.run_for(Duration::hours(2));

  std::printf("\nper-sensor delivery to the sink over 2 h:\n");
  std::printf("%-8s %-6s %-9s %-5s %s\n", "sensor", "sent", "received", "PDR",
              "route (hops via)");
  for (std::size_t i = 1; i < mesh.size(); ++i) {
    const net::Address addr = mesh.address_of(i);
    const auto sent = sent_per_sensor[addr];
    const auto got = received_per_sensor[addr];
    const auto route = mesh.node(sink).routing_table().route_to(addr);
    std::printf("%-8s %-6u %-9u %3.0f%%  %u via %s\n",
                net::to_string(addr).c_str(), sent, got,
                sent ? 100.0 * got / sent : 0.0,
                route ? route->metric : 0,
                route ? net::to_string(route->via).c_str() : "-");
  }
  std::printf("\nhop distribution of delivered readings: %s\n",
              hop_hist.summary().c_str());
  std::printf("sink airtime spent on control: %.2f s, on data: %.2f s\n",
              mesh.node(sink).stats().control_airtime.seconds_d(),
              mesh.node(sink).stats().data_airtime.seconds_d());
  return 0;
}
