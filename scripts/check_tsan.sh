#!/usr/bin/env bash
# ThreadSanitizer gate for the concurrency layer.
#
# Configures a dedicated build tree with -DLM_SANITIZE=thread, builds only
# the test binary that exercises ThreadPool and ParallelRunner, and runs it.
# Any data race TSan finds fails the script (non-zero exit), so this is
# suitable as a CI step:
#
#   scripts/check_tsan.sh [--build-dir=DIR]
set -euo pipefail

BUILD_DIR=build-tsan
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -S . -DLM_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target test_parallel -j "$(nproc)"

# halt_on_error makes the first race fail the run instead of only logging it.
TSAN_OPTIONS="halt_on_error=1" "$BUILD_DIR/tests/test_parallel"
echo "TSan: thread_pool + parallel_runner tests clean"
