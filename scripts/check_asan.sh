#!/usr/bin/env bash
# AddressSanitizer + UndefinedBehaviorSanitizer gate for the whole library.
#
# Configures a dedicated build tree with -DLM_SANITIZE=address,undefined,
# builds the full test suite, and runs it under ctest. Any heap error,
# leak, or UB trap fails the script (non-zero exit), so this is suitable
# as a CI step alongside scripts/check_tsan.sh:
#
#   scripts/check_asan.sh [--build-dir=DIR]
set -euo pipefail

BUILD_DIR=build-asan
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

cmake -B "$BUILD_DIR" -S . -DLM_SANITIZE=address,undefined \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error turns the first UB report into a failure instead of a log
# line; detect_leaks catches forgotten unregister paths in the testbed.
ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure
echo "ASan+UBSan: full test suite clean"
