#!/usr/bin/env bash
# Include-direction lint for the layered protocol stack.
#
# The stack is strictly layered:
#
#   support -> phy -> radio -> link -> network -> transport -> node
#
# with sim/trace as leaf utilities next to support. Lower layers must not
# include upward: the link layer knows nothing about routing, the network
# layer nothing about transport sessions, and only the node facades
# (mesh_node, port_mux, src/baseline) may see the whole stack. This script
# greps every #include in src/ and fails on any edge that points up.
# Suitable as a CI step alongside scripts/check_traces.sh; it needs no
# build and runs in milliseconds.
#
#   scripts/check_layering.sh
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
violation() {
  echo "layering violation: $1" >&2
  fail=1
}

# --- Cross-module direction ---------------------------------------------------
# allowed_modules <dir> <regex of permitted module prefixes>
allowed_modules() {
  local dir="$1" allowed="$2" hits
  hits=$(grep -Hn '#include "' "src/$dir"/*.h "src/$dir"/*.cpp 2>/dev/null |
         grep -Ev "#include \"($allowed)/" || true)
  if [ -n "$hits" ]; then
    violation "src/$dir may only include from: $allowed"
    echo "$hits" >&2
  fi
}

allowed_modules support  'support'
allowed_modules sim      'support|sim'
allowed_modules trace    'support|trace'
allowed_modules phy      'support|phy'
allowed_modules radio    'support|sim|trace|phy|radio'
allowed_modules net      'support|sim|trace|phy|radio|net'
allowed_modules baseline 'support|sim|trace|phy|radio|net|baseline'
allowed_modules metrics  'support|sim|trace|phy|radio|net|metrics'

# --- Intra-net tiers ----------------------------------------------------------
# Tier of every net/ header. A file at tier N may include net/ headers of
# tier <= N only; baseline/ facades sit at the node tier.
tier_of() {
  case "$1" in
    address.h|address_util.h|role.h|config.h|packet.h|packet_sink.h|layer_context.h)
      echo 0 ;;  # common vocabulary
    duty_cycle.h|link_layer.h)
      echo 1 ;;  # link layer
    routing_table.h|routing_strategy.h|distance_vector_strategy.h|flooding_strategy.h|network_layer.h)
      echo 2 ;;  # network layer
    reliable_sender.h|reliable_receiver.h|transport_layer.h)
      echo 3 ;;  # transport layer
    mesh_node.h|port_mux.h)
      echo 4 ;;  # node facade
    *)
      echo "" ;;
  esac
}

# check_tier <file> <tier>
check_tier() {
  local file="$1" tier="$2" header header_tier
  while read -r header; do
    header_tier=$(tier_of "$header")
    if [ -z "$header_tier" ]; then
      violation "$file includes net/$header, which has no assigned tier (update scripts/check_layering.sh)"
      continue
    fi
    if [ "$header_tier" -gt "$tier" ]; then
      violation "$file (tier $tier) includes net/$header (tier $header_tier) — upward include"
    fi
  done < <(grep -h '#include "net/' "$file" | sed 's|.*#include "net/\([^"]*\)".*|\1|')
}

for file in src/net/*.h src/net/*.cpp; do
  base=$(basename "$file" .cpp)
  base=$(basename "$base" .h).h
  tier=$(tier_of "$base")
  if [ -z "$tier" ]; then
    violation "src/net/$(basename "$file") is not assigned a tier in scripts/check_layering.sh"
    continue
  fi
  check_tier "$file" "$tier"
done

for file in src/baseline/*.h src/baseline/*.cpp; do
  check_tier "$file" 4
done

if [ "$fail" -ne 0 ]; then
  echo "layering: FAILED" >&2
  exit 1
fi
echo "layering: all include edges point downward"
