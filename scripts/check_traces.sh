#!/usr/bin/env bash
# Flight-recorder verification gate.
#
# Builds the trace test binary and runs the whole trace suite: analyzer
# units, the golden-trace diff, cross-layer invariants over randomized
# topologies, thread-count determinism and chaos lifecycle accounting.
# Suitable as a CI step alongside scripts/check_asan.sh (which also runs
# these tests, under ASan+UBSan, via ctest).
#
#   scripts/check_traces.sh [--build-dir=DIR] [--update-golden]
#
# --update-golden regenerates tests/trace/golden/*.trace from the current
# binary instead of diffing against it. Only do this after an intentional
# behavior change, and commit the regenerated golden together with the
# change that explains it.
set -euo pipefail

BUILD_DIR=build
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#--build-dir=}" ;;
    --update-golden) UPDATE=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."

if [ ! -d "$BUILD_DIR" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
fi
cmake --build "$BUILD_DIR" -j "$(nproc)" --target test_trace

if [ "$UPDATE" -eq 1 ]; then
  LM_UPDATE_GOLDEN=1 "$BUILD_DIR/tests/test_trace" \
    --gtest_filter='GoldenTrace.MatchesCheckedInGolden'
  git -C . diff --stat -- tests/trace/golden || true
  echo "golden regenerated; review the diff above before committing"
fi

"$BUILD_DIR/tests/test_trace"
echo "trace layer: golden, invariants and determinism all clean"
